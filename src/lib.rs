//! # sampsim — a statistical-sampling simulation laboratory
//!
//! `sampsim` reproduces, as a self-contained Rust system, the IISWC 2019
//! paper *"Efficacy of Statistical Sampling on Contemporary Workloads: The
//! Case of SPEC CPU2017"* (Singh & Awasthi). It implements the complete
//! PinPoints flow — phase-structured workloads, dynamic instrumentation,
//! pinball checkpoints, SimPoint clustering, functional cache simulation and
//! an interval timing model — and a benchmark harness that regenerates every
//! table and figure of the paper's evaluation.
//!
//! This umbrella crate re-exports each subsystem under a short module name;
//! see DESIGN.md for the inventory and EXPERIMENTS.md for reproduced
//! results.
//!
//! # Quickstart
//!
//! ```
//! use sampsim::core::{PinPointsConfig, Pipeline};
//! use sampsim::spec2017::{self, BenchmarkId};
//! use sampsim::util::scale::Scale;
//!
//! // Build a (test-scaled) synthetic stand-in for 505.mcf_r and find its
//! // simulation points.
//! let spec = spec2017::benchmark(BenchmarkId::McfR).scaled(Scale::TEST);
//! let program = spec.build();
//! let mut config = PinPointsConfig::default();
//! config.slice_size = 1_000; // coarser slices keep the doctest quick
//! config.simpoint.max_k = 8;
//! let result = Pipeline::new(config).run(&program).unwrap();
//! assert!(!result.simpoints.points.is_empty());
//! ```

pub use sampsim_analyze as analyze;
pub use sampsim_cache as cache;
pub use sampsim_core as core;
pub use sampsim_exec as exec;
pub use sampsim_perf as perf;
pub use sampsim_pin as pin;
pub use sampsim_pinball as pinball;
pub use sampsim_serve as serve;
pub use sampsim_simpoint as simpoint;
pub use sampsim_spec2017 as spec2017;
pub use sampsim_uarch as uarch;
pub use sampsim_util as util;
pub use sampsim_workload as workload;

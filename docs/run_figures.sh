#!/bin/sh
# Regenerates every paper exhibit and ablation, saving outputs to
# docs/results/. Run from the repository root after `cargo build --release`.
set -e
BIN=./target/release
OUT=docs/results
mkdir -p "$OUT"
for fig in table2 fig3a fig3b fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig12 \
           cpi_stacks suite_overview; do
    echo "== $fig =="
    "$BIN/$fig" --quiet "$@" | tee "$OUT/$fig.txt"
done
for abl in baseline_sampling smarts_compare ablation_warmup \
           ablation_clustering ablation_hierarchy ablation_vli \
           ablation_core_models methodology_costs; do
    echo "== $abl =="
    "$BIN/$abl" --quiet "$@" | tee "$OUT/$abl.txt"
done

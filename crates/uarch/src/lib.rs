//! Microarchitectural timing models.
//!
//! The stand-in for Sniper (Carlson, Heirman & Eeckhout, SC 2011) and for
//! the paper's "native hardware + `perf`" reference (§IV-E, Fig. 12):
//!
//! * [`bpred`] — a gshare branch predictor with 2-bit counters.
//! * [`core`] — an interval-style out-of-order core model parameterized by
//!   the paper's Table III (Intel i7-3770: 4-wide dispatch, 168-entry ROB,
//!   8-cycle branch-miss penalty, 3.4 GHz).
//! * [`sniper`] — the composed simulator: core model + branch predictor +
//!   cache hierarchy, driven as a Pintool over the retired-instruction
//!   stream; produces cycles, CPI and a CPI stack.
//! * [`native`] — "real hardware": the same machine executed on the whole
//!   program with measurement perturbations (OS-noise stalls, counter
//!   jitter), exposing `perf`-style counters. The CPI difference between
//!   native whole runs and Sniper-on-simulation-points is the Fig. 12
//!   experiment.
//!
//! The interval model is deliberately simple (this is a sampling-accuracy
//! study, not a microarchitecture study): every instruction costs
//! `1/dispatch_width` base cycles; branch mispredictions add the pipeline
//! penalty; loads/stores that miss L1 add the miss latency, divided by the
//! configured memory-level parallelism unless the access is a serialized
//! pointer-chase.
//!
//! # Example
//!
//! ```
//! use sampsim_cache::configs;
//! use sampsim_pin::engine;
//! use sampsim_uarch::{core::CoreConfig, sniper::Sniper};
//! use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
//!
//! let p = WorkloadSpec::builder("timing", 1)
//!     .total_insts(20_000)
//!     .phase(PhaseSpec::balanced(1.0))
//!     .build()
//!     .build();
//! let mut exec = sampsim_workload::Executor::new(&p);
//! let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
//! engine::run_one(&mut exec, u64::MAX, &mut sim);
//! let stats = sim.stats();
//! assert!(stats.cpi() > 0.25); // can't beat the 4-wide dispatch bound
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod bpred_zoo;
pub mod core;
pub mod native;
pub mod sniper;

pub use crate::core::{CoreConfig, CpiStack};
pub use bpred::{BranchPredictor, BranchStats};
pub use native::{perturb, run_native, NativeConfig, PerfCounters};
pub use sniper::{Sniper, TimingStats};

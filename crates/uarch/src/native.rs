//! "Native hardware" reference execution.
//!
//! The paper's Fig. 12 compares CPI from `perf` on a real i7-3770 against
//! Sniper running simulation points. We have no real hardware, so the
//! native side is the *same machine model executed on the whole program*
//! plus the perturbations that distinguish bare metal from a simulator:
//!
//! * OS noise — timer interrupts and scheduler preemptions steal cycles at
//!   a configurable rate;
//! * run-to-run nondeterminism — a small multiplicative jitter on the
//!   final cycle count (frequency governors, memory layout, SMT
//!   interference);
//! * counter quantization — `perf` reads counters at a granularity, not
//!   exactly.
//!
//! The sampling error measured by the experiment (whole execution vs
//! weighted simulation points) is preserved, which is the behaviour the
//! substitution must keep (DESIGN.md §2).

use crate::core::CoreConfig;
use crate::sniper::Sniper;
use sampsim_cache::HierarchyConfig;
use sampsim_pin::engine;
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_workload::{Executor, Program};

/// Perturbation parameters of the native machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeConfig {
    /// Core model (the machine being measured).
    pub core: CoreConfig,
    /// Cycles stolen by the OS per interrupt.
    pub interrupt_cycles: f64,
    /// Mean instructions between interrupts.
    pub interrupt_period: u64,
    /// Standard deviation of the multiplicative run-to-run jitter
    /// (e.g. 0.005 = 0.5%).
    pub jitter_sigma: f64,
}

impl Default for NativeConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::table3(),
            interrupt_cycles: 6_000.0,
            interrupt_period: 400_000,
            jitter_sigma: 0.005,
        }
    }
}

/// `perf`-style counters from a native execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfCounters {
    /// `instructions` event.
    pub instructions: u64,
    /// `cpu-cycles` event.
    pub cpu_cycles: u64,
}

impl PerfCounters {
    /// Cycles per instruction — the paper's comparison metric (it notes
    /// CPI, unlike IPC, is safe to average across regions).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cpu_cycles as f64 / self.instructions as f64
        }
    }
}

/// Runs `program` start-to-finish on the native machine and reports perf
/// counters. `run_seed` captures run-to-run nondeterminism: different
/// seeds model different native runs of the same binary.
pub fn run_native(
    program: &Program,
    hierarchy: HierarchyConfig,
    config: &NativeConfig,
    run_seed: u64,
) -> PerfCounters {
    let mut exec = Executor::new(program);
    let mut sim = Sniper::new(config.core, hierarchy);
    engine::run_one(&mut exec, u64::MAX, &mut sim);
    perturb(&sim.stats(), config, run_seed, program.digest())
}

/// Applies the native-machine perturbations to an existing whole-run
/// timing result — lets callers that already simulated the whole program
/// derive the `perf` view without a second timing pass.
pub fn perturb(
    stats: &crate::sniper::TimingStats,
    config: &NativeConfig,
    run_seed: u64,
    program_digest: u64,
) -> PerfCounters {
    let mut rng = Xoshiro256StarStar::seed_from_u64(run_seed ^ program_digest);
    // OS noise: expected number of interrupts, each stealing cycles.
    let interrupts = if config.interrupt_period == 0 {
        0.0
    } else {
        stats.instructions as f64 / config.interrupt_period as f64
    };
    let stolen = interrupts * config.interrupt_cycles;
    // Multiplicative jitter: sum of 12 uniforms ≈ Gaussian (Irwin–Hall).
    let gauss: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
    let jitter = 1.0 + gauss * config.jitter_sigma;
    let cycles = ((stats.cycles + stolen) * jitter).max(0.0);
    PerfCounters {
        instructions: stats.instructions,
        cpu_cycles: cycles.round() as u64,
    }
}

impl sampsim_util::codec::Encode for PerfCounters {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        enc.put_u64(self.instructions);
        enc.put_u64(self.cpu_cycles);
    }
}

impl sampsim_util::codec::Decode for PerfCounters {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            instructions: dec.take_u64()?,
            cpu_cycles: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_cache::configs;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("native-test", 4)
            .total_insts(40_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(0.5))
            .build()
            .build()
    }

    #[test]
    fn native_close_to_pure_simulation() {
        let p = program();
        let perf = run_native(&p, configs::i7_table3(), &NativeConfig::default(), 1);
        let mut exec = Executor::new(&p);
        let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
        engine::run_one(&mut exec, u64::MAX, &mut sim);
        let pure = sim.stats().cpi();
        let native = perf.cpi();
        let rel = (native - pure).abs() / pure;
        assert!(rel < 0.1, "native {native} vs pure {pure}");
        assert!(
            native > pure * 0.99,
            "noise should not speed the machine up much"
        );
    }

    #[test]
    fn different_runs_differ_slightly() {
        let p = program();
        let a = run_native(&p, configs::i7_table3(), &NativeConfig::default(), 1);
        let b = run_native(&p, configs::i7_table3(), &NativeConfig::default(), 2);
        assert_eq!(a.instructions, b.instructions);
        assert_ne!(a.cpu_cycles, b.cpu_cycles);
        let rel = (a.cpi() - b.cpi()).abs() / a.cpi();
        assert!(rel < 0.05, "run-to-run spread too large: {rel}");
    }

    #[test]
    fn same_seed_reproduces() {
        let p = program();
        let a = run_native(&p, configs::i7_table3(), &NativeConfig::default(), 9);
        let b = run_native(&p, configs::i7_table3(), &NativeConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_period_means_no_interrupt_noise() {
        let p = program();
        let cfg = NativeConfig {
            interrupt_period: 0,
            jitter_sigma: 0.0,
            ..Default::default()
        };
        let perf = run_native(&p, configs::i7_table3(), &cfg, 1);
        let mut exec = Executor::new(&p);
        let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
        engine::run_one(&mut exec, u64::MAX, &mut sim);
        assert_eq!(perf.cpu_cycles, sim.stats().cycles.round() as u64);
    }
}

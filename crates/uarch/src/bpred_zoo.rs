//! A small zoo of alternative branch predictors.
//!
//! The main timing model uses the gshare in [`crate::bpred`]; these
//! variants support the predictor ablation (`ablation_bpred`) and give the
//! sampling study a second axis of microarchitectural sensitivity: does
//! SimPoint sampling preserve *relative* predictor rankings?

use crate::bpred::BranchStats;

/// Common interface of the predictor zoo (the gshare in [`crate::bpred`]
/// predates this trait and keeps its inherent API; [`Gshare`] adapts it).
pub trait Predictor {
    /// Predicts and updates for one conditional branch; returns `true` if
    /// the prediction was correct.
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool;

    /// Counter snapshot.
    fn stats(&self) -> BranchStats;

    /// Short display name.
    fn name(&self) -> &'static str;
}

/// Static taken/not-taken prediction.
#[derive(Debug, Clone)]
pub struct StaticTaken {
    stats: BranchStats,
}

impl StaticTaken {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self {
            stats: BranchStats::default(),
        }
    }
}

impl Default for StaticTaken {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for StaticTaken {
    fn predict_and_update(&mut self, _pc: u64, taken: bool) -> bool {
        self.stats.lookups += 1;
        if !taken {
            self.stats.mispredicts += 1;
        }
        taken
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "static-taken"
    }
}

/// Per-PC 2-bit saturating counters (no history).
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u64,
    stats: BranchStats,
}

impl Bimodal {
    /// Creates a predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index_bits must be 1..=24");
        Self {
            table: vec![1; 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
            stats: BranchStats::default(),
        }
    }
}

impl Predictor for Bimodal {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc >> 2) & self.mask) as usize;
        let counter = self.table[idx];
        let predicted = counter >= 2;
        self.stats.lookups += 1;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredicts += 1;
        }
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// Two-level local-history predictor (per-PC history indexes a pattern
/// table of 2-bit counters).
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u16>,
    pattern: Vec<u8>,
    hist_mask: u16,
    pc_mask: u64,
    stats: BranchStats,
}

impl TwoLevelLocal {
    /// Creates a predictor with `2^pc_bits` history registers of
    /// `hist_bits` bits each and a `2^hist_bits` pattern table.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ pc_bits ≤ 20` and `1 ≤ hist_bits ≤ 16`.
    pub fn new(pc_bits: u32, hist_bits: u32) -> Self {
        assert!((1..=20).contains(&pc_bits), "pc_bits must be 1..=20");
        assert!((1..=16).contains(&hist_bits), "hist_bits must be 1..=16");
        Self {
            histories: vec![0; 1 << pc_bits],
            pattern: vec![1; 1 << hist_bits],
            hist_mask: ((1u32 << hist_bits) - 1) as u16,
            pc_mask: (1u64 << pc_bits) - 1,
            stats: BranchStats::default(),
        }
    }
}

impl Predictor for TwoLevelLocal {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let h_idx = ((pc >> 2) & self.pc_mask) as usize;
        let hist = self.histories[h_idx];
        let p_idx = hist as usize;
        let counter = self.pattern[p_idx];
        let predicted = counter >= 2;
        self.stats.lookups += 1;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredicts += 1;
        }
        self.pattern[p_idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.histories[h_idx] = ((hist << 1) | u16::from(taken)) & self.hist_mask;
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "two-level-local"
    }
}

/// Alpha 21264-style tournament: a chooser of 2-bit counters selects
/// between a bimodal and a local predictor per branch.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    local: TwoLevelLocal,
    chooser: Vec<u8>,
    mask: u64,
    stats: BranchStats,
}

impl Tournament {
    /// Creates a tournament over default-sized components.
    pub fn new() -> Self {
        Self {
            bimodal: Bimodal::new(12),
            local: TwoLevelLocal::new(10, 10),
            chooser: vec![2; 1 << 12],
            mask: (1u64 << 12) - 1,
            stats: BranchStats::default(),
        }
    }
}

impl Default for Tournament {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for Tournament {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc >> 2) & self.mask) as usize;
        // Components predict and update independently; the chooser learns
        // which one is right more often for this slot.
        let b_correct = self.bimodal.predict_and_update(pc, taken);
        let l_correct = self.local.predict_and_update(pc, taken);
        let use_local = self.chooser[idx] >= 2;
        let correct = if use_local { l_correct } else { b_correct };
        self.stats.lookups += 1;
        if !correct {
            self.stats.mispredicts += 1;
        }
        if l_correct != b_correct {
            self.chooser[idx] = if l_correct {
                (self.chooser[idx] + 1).min(3)
            } else {
                self.chooser[idx].saturating_sub(1)
            };
        }
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

/// Adapter exposing the main gshare through the zoo trait.
#[derive(Debug, Clone)]
pub struct Gshare {
    inner: crate::bpred::BranchPredictor,
}

impl Gshare {
    /// Wraps the default gshare.
    pub fn typical() -> Self {
        Self {
            inner: crate::bpred::BranchPredictor::typical(),
        }
    }
}

impl Predictor for Gshare {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.inner.predict_and_update(pc, taken)
    }

    fn stats(&self) -> BranchStats {
        self.inner.stats()
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_util::rng::Xoshiro256StarStar;

    fn drive(p: &mut dyn Predictor, outcomes: &[(u64, bool)]) -> f64 {
        for &(pc, taken) in outcomes {
            p.predict_and_update(pc, taken);
        }
        p.stats().mispredict_rate_pct()
    }

    fn biased_stream(p_taken: f64, n: usize, seed: u64) -> Vec<(u64, bool)> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n)
            .map(|i| ((0x400 + (i % 8) * 64) as u64, rng.chance(p_taken)))
            .collect()
    }

    #[test]
    fn all_predictors_learn_bias() {
        let stream = biased_stream(0.95, 20_000, 1);
        for p in [
            &mut Bimodal::new(12) as &mut dyn Predictor,
            &mut TwoLevelLocal::new(10, 10),
            &mut Tournament::new(),
            &mut Gshare::typical(),
        ] {
            let rate = drive(p, &stream);
            assert!(rate < 12.0, "{} rate {rate}", p.name());
        }
    }

    #[test]
    fn static_taken_matches_taken_rate() {
        let stream = biased_stream(0.7, 10_000, 2);
        let mut p = StaticTaken::new();
        let rate = drive(&mut p, &stream);
        assert!((rate - 30.0).abs() < 3.0, "rate {rate}");
    }

    #[test]
    fn local_history_beats_bimodal_on_periodic_pattern() {
        // Period-4 pattern T T T N — local history nails it, bimodal can't.
        let outcomes: Vec<(u64, bool)> = (0..20_000).map(|i| (0x800u64, i % 4 != 3)).collect();
        let mut local = TwoLevelLocal::new(10, 10);
        let mut bimodal = Bimodal::new(12);
        let local_rate = drive(&mut local, &outcomes);
        let bimodal_rate = drive(&mut bimodal, &outcomes);
        assert!(
            local_rate < 2.0 && bimodal_rate > 15.0,
            "local {local_rate}, bimodal {bimodal_rate}"
        );
    }

    #[test]
    fn tournament_tracks_best_component() {
        let outcomes: Vec<(u64, bool)> = (0..30_000).map(|i| (0x800u64, i % 4 != 3)).collect();
        let mut t = Tournament::new();
        let rate = drive(&mut t, &outcomes);
        assert!(
            rate < 5.0,
            "tournament should adopt the local predictor: {rate}"
        );
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            StaticTaken::new().name(),
            Bimodal::new(4).name(),
            TwoLevelLocal::new(4, 4).name(),
            Tournament::new().name(),
            Gshare::typical().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}

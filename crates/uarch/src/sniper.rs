//! The composed timing simulator ("Sniper" stand-in).
//!
//! [`Sniper`] implements [`Pintool`], so it is driven over a retired
//! instruction stream exactly like the functional tools — including over
//! regional pinball replays, which is how the paper runs simulation points
//! inside Sniper (§IV-E).

use crate::bpred::{BranchPredictor, BranchStats};
use crate::core::{CoreConfig, CpiStack};
use sampsim_cache::{Hierarchy, HierarchyConfig, HierarchyStats, Level};
use sampsim_pin::Pintool;
use sampsim_workload::Retired;

/// Cycle/instruction counters produced by a timing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingStats {
    /// Instructions simulated.
    pub instructions: u64,
    /// Cycles accumulated.
    pub cycles: f64,
    /// Cycle breakdown.
    pub stack: CpiStack,
    /// Branch predictor counters.
    pub branches: BranchStats,
}

impl TimingStats {
    /// Cycles per instruction (0 when empty).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles / self.instructions as f64
        }
    }

    /// Simulated wall-clock seconds at `frequency_ghz`.
    pub fn seconds_at(&self, frequency_ghz: f64) -> f64 {
        self.cycles / (frequency_ghz * 1e9)
    }
}

/// Interval-model timing simulator over a cache hierarchy and branch
/// predictor.
#[derive(Debug, Clone)]
pub struct Sniper {
    config: CoreConfig,
    hierarchy: Hierarchy,
    bpred: BranchPredictor,
    stats: TimingStats,
    /// Warmup mode: advance microarchitectural state without accounting.
    warming: bool,
}

impl Sniper {
    /// Creates a cold simulator.
    pub fn new(config: CoreConfig, hierarchy_config: HierarchyConfig) -> Self {
        Self {
            config,
            hierarchy: Hierarchy::new(hierarchy_config),
            bpred: BranchPredictor::typical(),
            stats: TimingStats::default(),
            warming: false,
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Timing counters so far.
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// Cache-hierarchy counters so far.
    pub fn cache_stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }

    /// Enables/disables warmup: while warming, caches and the branch
    /// predictor are updated but no cycles or counters accrue.
    pub fn set_warming(&mut self, warming: bool) {
        self.warming = warming;
        self.hierarchy.set_warmup(warming);
    }

    /// Resets timing and cache counters, preserving all microarchitectural
    /// state (for measure-after-warmup flows).
    pub fn reset_stats(&mut self) {
        self.stats = TimingStats::default();
        self.hierarchy.reset_stats();
        self.bpred.reset_stats();
    }

    #[inline]
    fn account_data(&mut self, level: Level, dependent: bool) {
        let l1_lat = f64::from(self.hierarchy.latency_of(Level::L1D));
        let lat = f64::from(self.hierarchy.latency_of(level));
        // L1 hits are fully pipelined; misses expose latency beyond L1,
        // divided by the attainable memory-level parallelism unless the
        // access is a serialized pointer chase.
        let exposed = match level {
            Level::L1D | Level::L1I => 0.0,
            _ => {
                let extra = lat - l1_lat;
                if dependent {
                    extra
                } else {
                    extra / self.config.mlp
                }
            }
        };
        match level {
            Level::L2 => self.stats.stack.l2 += exposed,
            Level::L3 => self.stats.stack.l3 += exposed,
            Level::Mem => self.stats.stack.mem += exposed,
            Level::L1D | Level::L1I => {}
        }
        self.stats.cycles += exposed;
    }
}

impl Pintool for Sniper {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        if self.warming {
            // State-only pass.
            self.hierarchy.fetch(inst.pc);
            if inst.mem.reads() {
                self.hierarchy.access_data(inst.addr, false);
            }
            if inst.mem.writes() {
                self.hierarchy.access_data(inst.addr, true);
            }
            if inst.is_branch {
                self.bpred.predict_and_update(inst.pc, inst.taken);
            }
            return;
        }
        self.stats.instructions += 1;
        let base = self.config.base_cpi();
        self.stats.cycles += base;
        self.stats.stack.base += base;

        // Front end.
        let flevel = self.hierarchy.fetch(inst.pc);
        if !matches!(flevel, Level::L1I) {
            let stall = f64::from(self.hierarchy.latency_of(flevel))
                - f64::from(self.hierarchy.latency_of(Level::L1I));
            self.stats.cycles += stall;
            self.stats.stack.ifetch += stall;
        }

        // Memory.
        if inst.mem.reads() {
            let level = self.hierarchy.access_data(inst.addr, false);
            self.account_data(level, inst.dependent);
        }
        if inst.mem.writes() {
            let level = self.hierarchy.access_data(inst.addr, true);
            // Stores retire from the store buffer; expose a fraction of the
            // read path cost.
            let before = self.stats.cycles;
            self.account_data(level, false);
            let spent = self.stats.cycles - before;
            let rebate = spent * 0.5;
            self.stats.cycles -= rebate;
            match level {
                Level::L2 => self.stats.stack.l2 -= rebate,
                Level::L3 => self.stats.stack.l3 -= rebate,
                Level::Mem => self.stats.stack.mem -= rebate,
                _ => {}
            }
        }

        // Control.
        if inst.is_branch && !self.bpred.predict_and_update(inst.pc, inst.taken) {
            let penalty = f64::from(self.config.branch_penalty);
            self.stats.cycles += penalty;
            self.stats.stack.branch += penalty;
        }
        self.stats.branches = self.bpred.stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_cache::configs;
    use sampsim_pin::engine;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
    use sampsim_workload::{Executor, MemClass};

    fn run_workload(phase: PhaseSpec, insts: u64) -> TimingStats {
        let p = WorkloadSpec::builder("t", 3)
            .total_insts(insts)
            .phase(phase)
            .build()
            .build();
        let mut exec = Executor::new(&p);
        let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
        engine::run_one(&mut exec, u64::MAX, &mut sim);
        sim.stats()
    }

    #[test]
    fn cpi_at_least_dispatch_bound() {
        let s = run_workload(PhaseSpec::compute_bound(1.0), 30_000);
        assert!(s.cpi() >= 0.25);
        assert_eq!(s.instructions, 30_000);
        assert!(s.stack.total() > 0.0);
        assert!((s.stack.total() - s.cycles).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_has_higher_cpi_than_compute_bound() {
        let compute = run_workload(PhaseSpec::compute_bound(1.0), 50_000);
        let memory = run_workload(PhaseSpec::memory_bound(1.0), 50_000);
        assert!(
            memory.cpi() > compute.cpi() * 1.3,
            "memory {} vs compute {}",
            memory.cpi(),
            compute.cpi()
        );
        assert!(memory.stack.mem > compute.stack.mem);
    }

    #[test]
    fn pointer_chase_pays_full_latency() {
        let chase = run_workload(PhaseSpec::pointer_chasing(1.0), 50_000);
        let streaming = run_workload(PhaseSpec::memory_bound(1.0), 50_000);
        assert!(chase.cpi() > streaming.cpi());
    }

    #[test]
    fn warming_accrues_no_cycles() {
        let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
        sim.set_warming(true);
        let inst = Retired {
            block: 0,
            pc: 0x400000,
            mem: MemClass::Read,
            addr: 0x1000,
            is_branch: false,
            taken: false,
            dependent: false,
        };
        sim.on_inst(&inst);
        assert_eq!(sim.stats().instructions, 0);
        assert_eq!(sim.stats().cycles, 0.0);
        sim.set_warming(false);
        sim.on_inst(&inst);
        assert_eq!(sim.stats().instructions, 1);
        // The warmed line hits L1: only base cycles.
        assert!((sim.stats().cycles - 0.25).abs() < 1e-12);
    }

    #[test]
    fn seconds_at_frequency() {
        let s = TimingStats {
            instructions: 100,
            cycles: 3.4e9,
            ..Default::default()
        };
        assert!((s.seconds_at(3.4) - 1.0).abs() < 1e-12);
    }
}

impl sampsim_util::codec::Encode for TimingStats {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        enc.put_u64(self.instructions);
        enc.put_f64(self.cycles);
        self.stack.encode(enc);
        self.branches.encode(enc);
    }
}

impl sampsim_util::codec::Decode for TimingStats {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            instructions: dec.take_u64()?,
            cycles: dec.take_f64()?,
            stack: crate::core::CpiStack::decode(dec)?,
            branches: crate::bpred::BranchStats::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod stack_consistency_tests {
    use super::*;
    use sampsim_cache::configs;
    use sampsim_pin::engine;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
    use sampsim_workload::Executor;

    #[test]
    fn cpi_stack_always_sums_to_cycles() {
        for (seed, phase) in [
            (1u64, PhaseSpec::balanced(1.0)),
            (2, PhaseSpec::memory_bound(1.0)),
            (3, PhaseSpec::pointer_chasing(1.0)),
        ] {
            let p = WorkloadSpec::builder("stack", seed)
                .total_insts(20_000)
                .phase(phase)
                .build()
                .build();
            let mut exec = Executor::new(&p);
            let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
            engine::run_one(&mut exec, u64::MAX, &mut sim);
            let s = sim.stats();
            assert!(
                (s.stack.total() - s.cycles).abs() < 1e-6,
                "seed {seed}: stack {} vs cycles {}",
                s.stack.total(),
                s.cycles
            );
            // No component may be negative (the store rebate must never
            // overdraw a bucket).
            for v in [
                s.stack.base,
                s.stack.branch,
                s.stack.ifetch,
                s.stack.l2,
                s.stack.l3,
                s.stack.mem,
            ] {
                assert!(v >= -1e-9, "negative stack component {v}");
            }
        }
    }

    #[test]
    fn reset_stats_preserves_state() {
        let p = WorkloadSpec::builder("reset", 4)
            .total_insts(30_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build();
        let mut exec = Executor::new(&p);
        let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
        engine::run_one(&mut exec, 20_000, &mut sim);
        sim.reset_stats();
        assert_eq!(sim.stats().instructions, 0);
        // Continue measuring with warm state: CPI should be lower than a
        // cold restart of the same window.
        engine::run_one(&mut exec, 10_000, &mut sim);
        let warm_cpi = sim.stats().cpi();
        let mut cold_exec = Executor::new(&p);
        cold_exec.skip(20_000);
        let mut cold_sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
        engine::run_one(&mut cold_exec, 10_000, &mut cold_sim);
        assert!(warm_cpi < cold_sim.stats().cpi());
    }
}

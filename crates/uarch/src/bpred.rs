//! Gshare branch prediction.

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub lookups: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl BranchStats {
    /// Misprediction rate in percent (0 when no lookups).
    pub fn mispredict_rate_pct(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            100.0 * self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &BranchStats) {
        self.lookups += other.lookups;
        self.mispredicts += other.mispredicts;
    }
}

/// A gshare predictor: global history XOR-indexed table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
    mask: u64,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with `2^index_bits` counters and `history_bits`
    /// of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24"
        );
        Self {
            table: vec![1; 1 << index_bits], // weakly not-taken
            history: 0,
            history_bits: history_bits.min(index_bits),
            mask: (1u64 << index_bits) - 1,
            stats: BranchStats::default(),
        }
    }

    /// A typical 4K-entry gshare with 2 bits of global history. The
    /// synthetic workloads' branch outcomes are independently biased (no
    /// long-range correlation to exploit), so longer histories only spread
    /// each branch over more table entries and alias destructively;
    /// 2 bits keeps the predictor trainable at realistic accuracy.
    pub fn typical() -> Self {
        Self::new(12, 2)
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts and updates for one conditional branch; returns `true` if
    /// the prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted = counter >= 2;
        self.stats.lookups += 1;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredicts += 1;
        }
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        let hist_mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u64::from(taken)) & hist_mask;
        correct
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Resets counters (predictor state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

impl sampsim_util::codec::Encode for BranchStats {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        enc.put_u64(self.lookups);
        enc.put_u64(self.mispredicts);
    }
}

impl sampsim_util::codec::Decode for BranchStats {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            lookups: dec.take_u64()?,
            mispredicts: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_util::rng::Xoshiro256StarStar;

    #[test]
    fn learns_biased_branch() {
        let mut bp = BranchPredictor::typical();
        for _ in 0..1000 {
            bp.predict_and_update(0x400, true);
        }
        // After warmup, an always-taken branch is essentially perfect.
        assert!(bp.stats().mispredict_rate_pct() < 2.0);
    }

    #[test]
    fn random_branch_is_hard() {
        let mut bp = BranchPredictor::typical();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..20_000 {
            bp.predict_and_update(0x400, rng.chance(0.5));
        }
        let rate = bp.stats().mispredict_rate_pct();
        assert!(rate > 35.0, "mispredict rate {rate} suspiciously low");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = BranchPredictor::typical();
        let mut taken = false;
        for _ in 0..4_000 {
            taken = !taken;
            bp.predict_and_update(0x800, taken);
        }
        bp.reset_stats();
        for _ in 0..4_000 {
            taken = !taken;
            bp.predict_and_update(0x800, taken);
        }
        let rate = bp.stats().mispredict_rate_pct();
        assert!(rate < 5.0, "history should capture T/N/T/N: {rate}");
    }

    #[test]
    fn stats_merge() {
        let mut a = BranchStats {
            lookups: 10,
            mispredicts: 2,
        };
        a.merge(&BranchStats {
            lookups: 10,
            mispredicts: 4,
        });
        assert_eq!(a.lookups, 20);
        assert_eq!(a.mispredict_rate_pct(), 30.0);
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn zero_bits_panics() {
        BranchPredictor::new(0, 0);
    }
}

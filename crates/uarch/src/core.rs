//! Interval-style out-of-order core model.

/// Core parameters (defaults mirror Table III of the paper — an Intel
/// i7-3770 as modelled in Sniper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Sustainable dispatch width (µops/cycle) — sets the base CPI floor.
    pub dispatch_width: u32,
    /// Reorder-buffer entries (bounds how much miss latency can overlap).
    pub rob_entries: u32,
    /// Branch misprediction penalty in cycles.
    pub branch_penalty: u32,
    /// Memory-level parallelism: average outstanding independent misses the
    /// core can sustain; independent miss latency is divided by this.
    pub mlp: f64,
    /// Core frequency in GHz (converts cycles to time).
    pub frequency_ghz: f64,
}

impl CoreConfig {
    /// Table III: 8-core Intel i7-3770 at 3.4 GHz, 19-stage out-of-order
    /// pipeline, 4-wide rename/commit, 168-entry ROB, 8-cycle branch
    /// misprediction penalty.
    pub fn table3() -> Self {
        Self {
            dispatch_width: 4,
            rob_entries: 168,
            branch_penalty: 8,
            mlp: 4.0,
            frequency_ghz: 3.4,
        }
    }

    /// Base cycles contributed by one instruction.
    #[inline]
    pub fn base_cpi(&self) -> f64 {
        1.0 / f64::from(self.dispatch_width)
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table3()
    }
}

/// Cycle accounting broken down by cause — a CPI stack.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpiStack {
    /// Issue-bound base cycles.
    pub base: f64,
    /// Branch misprediction penalty cycles.
    pub branch: f64,
    /// Instruction-fetch stall cycles (L1I misses).
    pub ifetch: f64,
    /// Data cycles satisfied by L2.
    pub l2: f64,
    /// Data cycles satisfied by L3.
    pub l3: f64,
    /// Data cycles that went to main memory.
    pub mem: f64,
}

impl CpiStack {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.base + self.branch + self.ifetch + self.l2 + self.l3 + self.mem
    }

    /// Adds another stack (used by weighted aggregation).
    pub fn merge_scaled(&mut self, other: &CpiStack, scale: f64) {
        self.base += other.base * scale;
        self.branch += other.branch * scale;
        self.ifetch += other.ifetch * scale;
        self.l2 += other.l2 * scale;
        self.l3 += other.l3 * scale;
        self.mem += other.mem * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = CoreConfig::table3();
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.rob_entries, 168);
        assert_eq!(c.branch_penalty, 8);
        assert_eq!(c.base_cpi(), 0.25);
        assert_eq!(c.frequency_ghz, 3.4);
    }

    #[test]
    fn stack_total_and_merge() {
        let mut a = CpiStack {
            base: 1.0,
            branch: 0.5,
            ..Default::default()
        };
        let b = CpiStack {
            mem: 2.0,
            ..Default::default()
        };
        a.merge_scaled(&b, 0.5);
        assert!((a.total() - 2.5).abs() < 1e-12);
    }
}

impl sampsim_util::codec::Encode for CpiStack {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        for v in [
            self.base,
            self.branch,
            self.ifetch,
            self.l2,
            self.l3,
            self.mem,
        ] {
            enc.put_f64(v);
        }
    }
}

impl sampsim_util::codec::Decode for CpiStack {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            base: dec.take_f64()?,
            branch: dec.take_f64()?,
            ifetch: dec.take_f64()?,
            l2: dec.take_f64()?,
            l3: dec.take_f64()?,
            mem: dec.take_f64()?,
        })
    }
}

impl CoreConfig {
    /// A scalar in-order core (dispatch width 1, no memory-level
    /// parallelism): the "simple core" end of the design space, used by
    /// the core-model sensitivity checks.
    pub fn in_order() -> Self {
        Self {
            dispatch_width: 1,
            rob_entries: 1,
            branch_penalty: 5,
            mlp: 1.0,
            frequency_ghz: 2.0,
        }
    }

    /// An aggressive 8-wide core with deep speculation.
    pub fn wide() -> Self {
        Self {
            dispatch_width: 8,
            rob_entries: 512,
            branch_penalty: 14,
            mlp: 8.0,
            frequency_ghz: 3.8,
        }
    }
}

#[cfg(test)]
mod preset_tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_aggressiveness() {
        assert!(CoreConfig::in_order().base_cpi() > CoreConfig::table3().base_cpi());
        assert!(CoreConfig::table3().base_cpi() > CoreConfig::wide().base_cpi());
        assert!(CoreConfig::in_order().mlp < CoreConfig::wide().mlp);
    }
}

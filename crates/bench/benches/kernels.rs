//! Criterion microbenchmarks of the simulation kernels: the executor, the
//! cache hierarchy, k-means clustering, and the end-to-end pipeline at a
//! reduced scale.

use criterion::{
    criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion, Throughput,
};
use sampsim_cache::{configs, Hierarchy};
use sampsim_core::{PinPointsConfig, Pipeline};
use sampsim_pin::engine;
use sampsim_pin::tools::CacheSim;
use sampsim_simpoint::kmeans::kmeans;
use sampsim_simpoint::SimPointOptions;
use sampsim_uarch::{CoreConfig, Sniper};
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
use sampsim_workload::{Executor, Program};

fn workload(insts: u64) -> Program {
    WorkloadSpec::builder("bench", 1)
        .total_insts(insts)
        .phase(PhaseSpec::balanced(1.0))
        .phase(PhaseSpec::memory_bound(1.0))
        .build()
        .build()
}

fn bench_executor(c: &mut Criterion) {
    let p = workload(200_000);
    let mut g = c.benchmark_group("executor");
    g.throughput(Throughput::Elements(p.total_insts()));
    g.bench_function("retire_stream", |b| {
        b.iter(|| {
            let mut exec = Executor::new(&p);
            let mut sum = 0u64;
            while let Some(i) = exec.next_inst() {
                sum ^= i.addr;
            }
            sum
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let p = workload(100_000);
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(p.total_insts()));
    for (label, cfg) in [
        ("allcache_table1", configs::allcache_table1()),
        ("i7_table3", configs::i7_table3()),
    ] {
        g.bench_with_input(CriterionId::new("hierarchy", label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut exec = Executor::new(&p);
                let mut cs = CacheSim::new(*cfg);
                engine::run_one(&mut exec, u64::MAX, &mut cs);
                cs.stats().l3.misses
            })
        });
    }
    g.bench_function("raw_accesses", |b| {
        let mut h = Hierarchy::new(configs::allcache_table1());
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        b.iter(|| {
            let mut last = sampsim_cache::Level::Mem;
            for _ in 0..10_000 {
                last = h.access_data(rng.next_below(1 << 24), false);
            }
            last
        })
    });
    g.finish();
}

fn bench_timing(c: &mut Criterion) {
    let p = workload(100_000);
    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(p.total_insts()));
    g.bench_function("sniper_interval_model", |b| {
        b.iter(|| {
            let mut exec = Executor::new(&p);
            let mut sim = Sniper::new(CoreConfig::table3(), configs::i7_table3());
            engine::run_one(&mut exec, u64::MAX, &mut sim);
            sim.stats().cycles
        })
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(9);
    let n = 2_000;
    let dim = 15;
    let data: Vec<f64> = (0..n * dim)
        .map(|i| rng.next_f64() + f64::from((i % 7 == 0) as u8))
        .collect();
    let mut g = c.benchmark_group("kmeans");
    for k in [5usize, 20] {
        g.bench_with_input(CriterionId::new("lloyd", k), &k, |b, &k| {
            b.iter(|| kmeans(&data, n, dim, k, 30, 1).unwrap().inertia)
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let p = workload(300_000);
    let config = PinPointsConfig {
        slice_size: 1_000,
        simpoint: SimPointOptions {
            max_k: 10,
            ..Default::default()
        },
        warmup_slices: 5,
        profile_cache: None,
    };
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("end_to_end_300k", |b| {
        b.iter(|| {
            Pipeline::new(config.clone())
                .run(&p)
                .unwrap()
                .regional
                .len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_cache,
    bench_timing,
    bench_kmeans,
    bench_pipeline
);

// Additional kernels appended after the initial release: predictors, the
// projection front end, and the checkpoint codec.

fn bench_bpred(c: &mut Criterion) {
    use sampsim_uarch::bpred_zoo::{Bimodal, Gshare, Predictor, Tournament, TwoLevelLocal};
    let mut rng = Xoshiro256StarStar::seed_from_u64(11);
    let outcomes: Vec<(u64, bool)> = (0..50_000)
        .map(|i| ((0x400 + (i % 64) * 64) as u64, rng.chance(0.8)))
        .collect();
    let mut g = c.benchmark_group("bpred");
    g.throughput(Throughput::Elements(outcomes.len() as u64));
    g.bench_function("gshare", |b| {
        b.iter(|| {
            let mut p = Gshare::typical();
            for &(pc, t) in &outcomes {
                p.predict_and_update(pc, t);
            }
            p.stats().mispredicts
        })
    });
    g.bench_function("bimodal", |b| {
        b.iter(|| {
            let mut p = Bimodal::new(12);
            for &(pc, t) in &outcomes {
                p.predict_and_update(pc, t);
            }
            p.stats().mispredicts
        })
    });
    g.bench_function("two_level_local", |b| {
        b.iter(|| {
            let mut p = TwoLevelLocal::new(10, 10);
            for &(pc, t) in &outcomes {
                p.predict_and_update(pc, t);
            }
            p.stats().mispredicts
        })
    });
    g.bench_function("tournament", |b| {
        b.iter(|| {
            let mut p = Tournament::new();
            for &(pc, t) in &outcomes {
                p.predict_and_update(pc, t);
            }
            p.stats().mispredicts
        })
    });
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    use sampsim_simpoint::bbv::Bbv;
    use sampsim_simpoint::project::RandomProjection;
    let mut rng = Xoshiro256StarStar::seed_from_u64(13);
    let bbvs: Vec<Bbv> = (0..500)
        .map(|_| {
            let mut counts: Vec<(u32, u32)> = (0..12)
                .map(|_| (rng.next_below(400) as u32, 1 + rng.next_below(900) as u32))
                .collect();
            counts.sort_by_key(|&(b, _)| b);
            counts.dedup_by_key(|&mut (b, _)| b);
            Bbv::from_counts(counts).normalized()
        })
        .collect();
    let projection = RandomProjection::new(15, 7);
    let mut g = c.benchmark_group("projection");
    g.throughput(Throughput::Elements(bbvs.len() as u64));
    g.bench_function("project_500_bbvs", |b| {
        b.iter(|| projection.project_all(&bbvs).len())
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    use sampsim_util::codec;
    use sampsim_workload::Cursor;
    let p = workload(10_000);
    let mut exec = Executor::new(&p);
    exec.skip(5_000);
    let cursor = exec.cursor();
    let bytes = codec::to_bytes(&cursor);
    let mut g = c.benchmark_group("codec");
    g.bench_function("cursor_encode", |b| {
        b.iter(|| codec::to_bytes(&cursor).len())
    });
    g.bench_function("cursor_decode", |b| {
        b.iter(|| codec::from_bytes::<Cursor>(&bytes).unwrap().retired)
    });
    g.finish();
}

criterion_group!(extra, bench_bpred, bench_projection, bench_codec);

criterion_main!(benches, extra);

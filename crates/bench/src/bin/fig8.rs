//! Fig. 8 — cache miss rates of Whole, Regional, Reduced Regional and
//! Warmup Regional runs (Table I hierarchy).
//!
//! The paper's key memory-hierarchy finding: cold-started regions inflate
//! the L3 miss rate by ~25 percentage points on average; checkpointed
//! warmup drops that error to ~9.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    for (level, pick) in [("L1D", 0usize), ("L2", 1), ("L3", 2)] {
        let mut table = Table::new(vec![
            "Benchmark".into(),
            "Whole".into(),
            "Regional".into(),
            "Reduced".into(),
            "Warmup".into(),
        ]);
        table.title(format!("Fig 8: {level} miss rate (%), per run kind"));
        let mut err = [0.0f64; 3]; // regional, reduced, warmup
        for r in &results {
            let get = |agg: &sampsim_core::AggregatedMetrics| -> f64 {
                let mr = agg.miss_rates.expect("cache stats");
                match pick {
                    0 => mr.l1d,
                    1 => mr.l2,
                    _ => mr.l3,
                }
            };
            let whole = get(&r.whole_aggregate());
            let reg = get(&r.regional_aggregate());
            let red = get(&r.reduced_aggregate(0.9));
            let warm = get(&r.warmup_aggregate());
            err[0] += (reg - whole).abs();
            err[1] += (red - whole).abs();
            err[2] += (warm - whole).abs();
            table.row(vec![
                r.name.clone(),
                fmt_f(whole, 3),
                fmt_f(reg, 3),
                fmt_f(red, 3),
                fmt_f(warm, 3),
            ]);
        }
        table.print();
        let n = results.len() as f64;
        println!(
            "Average |error| vs Whole ({level}): Regional {:.2} pp, Reduced {:.2} pp, Warmup {:.2} pp\n",
            err[0] / n,
            err[1] / n,
            err[2] / n,
        );
    }
    println!("(paper: avg error vs whole — L1D +0.18, L2 +0.10, L3 +25.16 pp for Regional;");
    println!(
        " L1D +2.23, L2 +0.33, L3 +25.53 pp for Reduced; warmup cuts L3 error 25.16 -> 9.08 pp)"
    );
}

//! Baseline comparison: SimPoint selection vs periodic (SMARTS-style) and
//! uniform-random slice sampling at the same point budget.
//!
//! Not a paper exhibit — an ablation supporting the paper's premise that
//! *clustered* selection is what makes few points representative.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::experiments::baseline_aggregate;
use sampsim_core::metrics::AggregatedMetrics;
use sampsim_core::{PinPointsConfig, Pipeline};
use sampsim_simpoint::baselines;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::table::{fmt_f, Table};

fn mix_err(a: &AggregatedMetrics, b: &AggregatedMetrics) -> f64 {
    a.mix_pct
        .iter()
        .zip(&b.mix_pct)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let cli = Cli::parse();
    let ids = [
        BenchmarkId::McfR,
        BenchmarkId::XalancbmkS,
        BenchmarkId::DeepsjengS,
        BenchmarkId::BwavesR,
        BenchmarkId::XzS,
    ];
    let config = StudyConfig::default();
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Points".into(),
        "SimPoint mix err".into(),
        "Periodic mix err".into(),
        "Random mix err".into(),
        "SimPoint L3 err".into(),
        "Periodic L3 err".into(),
        "Random L3 err".into(),
    ]);
    table.title("Ablation: SimPoint vs baseline samplers (equal point budget; errors in pp)");
    for id in ids {
        // Find the SimPoint budget and points first.
        let scaled = config.scaled(cli.scale);
        let program = benchmark(id).scaled(cli.scale).build();
        let mut pp: PinPointsConfig = scaled.pinpoints.clone();
        pp.profile_cache = None;
        let pipeline = Pipeline::new(pp);
        let result = unwrap_or_die(pipeline.run(&program));
        let budget = result.regional.len();
        let num_slices = result.num_slices;

        let (simpoint, whole) = unwrap_or_die(baseline_aggregate(
            id,
            cli.scale,
            &config,
            &result.simpoints.points,
        ));
        let (periodic, _) = unwrap_or_die(baseline_aggregate(
            id,
            cli.scale,
            &config,
            &baselines::periodic(num_slices, budget),
        ));
        let (random, _) = unwrap_or_die(baseline_aggregate(
            id,
            cli.scale,
            &config,
            &baselines::uniform_random(num_slices, budget, 0xBA5E),
        ));
        let l3 = |agg: &AggregatedMetrics| agg.miss_rates.expect("cache stats").l3;
        let whole_l3 = l3(&whole);
        table.row(vec![
            id.name().to_string(),
            budget.to_string(),
            fmt_f(mix_err(&simpoint, &whole), 3),
            fmt_f(mix_err(&periodic, &whole), 3),
            fmt_f(mix_err(&random, &whole), 3),
            fmt_f((l3(&simpoint) - whole_l3).abs(), 2),
            fmt_f((l3(&periodic) - whole_l3).abs(), 2),
            fmt_f((l3(&random) - whole_l3).abs(), 2),
        ]);
    }
    table.print();
    println!(
        "\n(periodic/random points get uniform weights; SimPoint weights come from clustering)"
    );
}

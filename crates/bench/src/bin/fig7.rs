//! Fig. 7 — instruction-distribution comparison of Whole, Regional and
//! Reduced Regional runs.
//!
//! The paper reports <1% error in the distribution for both sampled run
//! kinds, with a suite average of 49.1% compute-only, 36.7% reads and
//! 12.9% writes.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "W NO_MEM".into(),
        "W MEM_R".into(),
        "W MEM_W".into(),
        "R NO_MEM".into(),
        "R MEM_R".into(),
        "R MEM_W".into(),
        "90 NO_MEM".into(),
        "90 MEM_R".into(),
        "90 MEM_W".into(),
        "max err pp".into(),
    ]);
    table.title("Fig 7: instruction distribution (W=Whole, R=Regional, 90=Reduced Regional), %");
    let mut avg_whole = [0.0f64; 4];
    let mut max_reg_err: f64 = 0.0;
    let mut max_red_err: f64 = 0.0;
    let mut sum_reg_err = 0.0;
    let mut sum_red_err = 0.0;
    for r in &results {
        let whole = r.whole_aggregate();
        let reg = r.regional_aggregate();
        let red = r.reduced_aggregate(0.9);
        for (acc, v) in avg_whole.iter_mut().zip(&whole.mix_pct) {
            *acc += v;
        }
        let err = |a: &[f64; 4], b: &[f64; 4]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        };
        let reg_err = err(&reg.mix_pct, &whole.mix_pct);
        let red_err = err(&red.mix_pct, &whole.mix_pct);
        max_reg_err = max_reg_err.max(reg_err);
        max_red_err = max_red_err.max(red_err);
        sum_reg_err += reg_err;
        sum_red_err += red_err;
        table.row(vec![
            r.name.clone(),
            fmt_f(whole.mix_pct[0], 1),
            fmt_f(whole.mix_pct[1], 1),
            fmt_f(whole.mix_pct[2], 1),
            fmt_f(reg.mix_pct[0], 1),
            fmt_f(reg.mix_pct[1], 1),
            fmt_f(reg.mix_pct[2], 1),
            fmt_f(red.mix_pct[0], 1),
            fmt_f(red.mix_pct[1], 1),
            fmt_f(red.mix_pct[2], 1),
            fmt_f(reg_err.max(red_err), 3),
        ]);
    }
    table.print();
    let n = results.len() as f64;
    println!(
        "\nSuite-average whole-run mix: {:.1}% NO_MEM, {:.1}% MEM_R, {:.1}% MEM_W, {:.1}% MEM_RW",
        avg_whole[0] / n,
        avg_whole[1] / n,
        avg_whole[2] / n,
        avg_whole[3] / n,
    );
    println!(
        "Distribution error vs Whole: Regional avg {:.3} pp (max {:.3}), Reduced avg {:.3} pp (max {:.3})",
        sum_reg_err / n,
        max_reg_err,
        sum_red_err / n,
        max_red_err,
    );
    println!("\n(paper: whole-run average 49.1% / 36.7% / 12.9%; sampled errors < 1%)");
}

//! Ablation: variable-length intervals (SimPoint 3.0, Hamerly et al.).
//!
//! Coalesces consecutive same-cluster slices into intervals and reports,
//! per benchmark, how much longer the representative regions become — the
//! trade-off against fixed-size slices that the paper's related-work
//! section cites.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::Pipeline;
use sampsim_simpoint::vli::{coalesce, representative_intervals};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let ids = [
        BenchmarkId::OmnetppS,
        BenchmarkId::McfR,
        BenchmarkId::DeepsjengS,
        BenchmarkId::BwavesR,
    ];
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Slices".into(),
        "Intervals".into(),
        "Mean interval (slices)".into(),
        "Fixed points".into(),
        "VLI insts (x fixed)".into(),
    ]);
    table.title("Ablation: variable-length intervals vs fixed-size slices");
    for id in ids {
        let config = sampsim_core::bench_result::StudyConfig::default().scaled(cli.scale);
        let program = benchmark(id).scaled(cli.scale).build();
        let mut pp = config.pinpoints.clone();
        pp.profile_cache = None;
        let result = unwrap_or_die(Pipeline::new(pp).run(&program));
        let assignments = &result.simpoints.assignments;
        let intervals = coalesce(assignments);
        let reps = representative_intervals(assignments, &result.simpoints.points);
        let fixed_insts = result.regional.len() as u64 * result.regional[0].length;
        let vli_insts: u64 = reps
            .iter()
            .map(|(iv, _)| iv.len * result.regional[0].length)
            .sum();
        table.row(vec![
            id.name().to_string(),
            assignments.len().to_string(),
            intervals.len().to_string(),
            fmt_f(assignments.len() as f64 / intervals.len() as f64, 1),
            result.regional.len().to_string(),
            fmt_f(vli_insts as f64 / fixed_insts as f64, 1),
        ]);
    }
    table.print();
    println!("\n(replaying whole intervals amortizes per-region start-up and captures");
    println!(" behaviour straddling slice boundaries, at the cost of more instructions)");
}

//! Table II — simulation points per benchmark.
//!
//! Prints, for every benchmark: the number of simulation points the
//! pipeline found and how many of them cover the 90th weight percentile,
//! alongside the counts the paper reports. Usage: see `sampsim-bench`
//! crate docs for common flags.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_spec2017::benchmark;
use sampsim_spec2017::BenchmarkId;
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "SimPoints".into(),
        "90pct SimPoints".into(),
        "Paper SP".into(),
        "Paper 90pct".into(),
    ]);
    table.title("Table II: SPEC CPU2017 simulation points (measured vs paper)");
    let (mut sp_sum, mut p90_sum) = (0usize, 0usize);
    let (mut paper_sp_sum, mut paper_p90_sum) = (0usize, 0usize);
    for r in &results {
        let spec =
            benchmark(BenchmarkId::from_name(&r.name).expect("result name is a suite benchmark"));
        let points = r.num_points();
        let p90 = r.num_points_at(0.9);
        sp_sum += points;
        p90_sum += p90;
        paper_sp_sum += spec.table2_points();
        paper_p90_sum += spec.table2_points_90();
        table.row(vec![
            r.name.clone(),
            points.to_string(),
            p90.to_string(),
            spec.table2_points().to_string(),
            spec.table2_points_90().to_string(),
        ]);
    }
    let n = results.len() as f64;
    table.row(vec![
        "Average".into(),
        fmt_f(sp_sum as f64 / n, 2),
        fmt_f(p90_sum as f64 / n, 2),
        fmt_f(paper_sp_sum as f64 / n, 2),
        fmt_f(paper_p90_sum as f64 / n, 2),
    ]);
    table.print();
    println!("\n(paper averages: 19.75 simulation points, 11.31 at the 90th percentile)");
}

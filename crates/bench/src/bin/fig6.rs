//! Fig. 6 — weight of each simulation point, per benchmark.
//!
//! Prints the weight distribution (descending) with a marker at the 90%
//! cumulative-weight boundary — the dashed line of the paper's stacked-bar
//! figure.

use sampsim_bench::{unwrap_or_die, Cli};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    println!("Fig 6: simulation-point weights per benchmark (descending; '|' = 90% boundary)\n");
    for r in &results {
        let mut weights: Vec<f64> = r.regions.iter().map(|reg| reg.weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut acc = 0.0;
        let mut parts = Vec::new();
        let mut marked = false;
        for w in &weights {
            acc += w;
            parts.push(format!("{:.1}", w * 100.0));
            if acc >= 0.9 - 1e-12 && !marked {
                parts.push("|".to_string());
                marked = true;
            }
        }
        println!(
            "{:<18} ({:>2} pts, {:>2} @90%): {}",
            r.name,
            weights.len(),
            r.num_points_at(0.9),
            parts.join(" ")
        );
        // A coarse stacked bar: one character per 2% of weight.
        let mut bar = String::new();
        for (i, w) in weights.iter().enumerate() {
            let cells = ((w * 50.0).round() as usize).max(1);
            let ch = char::from(b'A' + (i % 26) as u8);
            bar.extend(std::iter::repeat_n(ch, cells));
        }
        println!("{:<18}  {}", "", bar);
    }
    println!("\n(paper: 503.bwaves_r has one ~60% dominant point and its top three cover ~80%;");
    println!(" 631.deepsjeng_s / 648.exchange2_s / 511.povray_r are nearly uniform)");
}

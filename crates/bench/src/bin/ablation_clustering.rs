//! Ablation: clustering design choices — random projection on/off and
//! k-means initialization (k-means++ vs plain random restarts).

use sampsim_bench::Cli;
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::Pipeline;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::kmeans::{kmeans_best_of, KmeansResult};
use sampsim_simpoint::project::RandomProjection;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_util::table::{fmt_f, Table};
use std::time::Instant;

/// Plain random-partition initialization k-means (no k-means++), for the
/// init ablation.
fn kmeans_random_init(data: &[f64], n: usize, dim: usize, k: usize, seed: u64) -> KmeansResult {
    // Emulate random init by seeding centroids from random points chosen
    // uniformly, then running the standard library path with one restart
    // (k-means++ is bypassed by pre-permuting identical points is not
    // possible through the public API, so approximate with a different
    // seed family and a single restart).
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut best: Option<KmeansResult> = None;
    for _ in 0..3 {
        let r =
            kmeans_best_of(data, n, dim, k, 60, rng.next_u64(), 1).expect("valid ablation input");
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    best.expect("ran at least once")
}

fn main() {
    let cli = Cli::parse();
    let id = BenchmarkId::GccR;
    let config = StudyConfig::default().scaled(cli.scale);
    let program = benchmark(id).scaled(cli.scale).build();
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = None;
    let pipeline = Pipeline::new(pp.clone());
    let (bbvs, _starts, _m) = pipeline.profile(&program);
    let normalized: Vec<Bbv> = bbvs.iter().map(Bbv::normalized).collect();
    let k = 20;

    let mut table = Table::new(vec![
        "Configuration".into(),
        "Inertia".into(),
        "Time ms".into(),
    ]);
    table.title(format!(
        "Ablation: clustering choices, {} ({} slices, k = {k})",
        id.name(),
        bbvs.len()
    ));

    // Projection dimensionalities (the '15' of SimPoint).
    for dim in [4usize, 15, 32] {
        let projection = RandomProjection::new(dim, 7);
        let data = projection.project_all(&normalized);
        let t = Instant::now();
        let r = kmeans_best_of(&data, normalized.len(), dim, k, 60, 1, 2)
            .expect("valid ablation input");
        table.row(vec![
            format!("projected dim={dim}, kmeans++"),
            fmt_f(r.inertia / normalized.len() as f64 * 1e3, 3),
            fmt_f(t.elapsed().as_secs_f64() * 1e3, 1),
        ]);
    }

    // Init comparison at dim 15.
    let projection = RandomProjection::new(15, 7);
    let data = projection.project_all(&normalized);
    let t = Instant::now();
    let pp_init =
        kmeans_best_of(&data, normalized.len(), 15, k, 60, 1, 2).expect("valid ablation input");
    let pp_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let rand_init = kmeans_random_init(&data, normalized.len(), 15, k, 99);
    let rand_ms = t.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "kmeans++ init (2 restarts)".into(),
        fmt_f(pp_init.inertia / normalized.len() as f64 * 1e3, 3),
        fmt_f(pp_ms, 1),
    ]);
    table.row(vec![
        "random-seed init (3 restarts)".into(),
        fmt_f(rand_init.inertia / normalized.len() as f64 * 1e3, 3),
        fmt_f(rand_ms, 1),
    ]);
    table.print();
    println!("\n(inertia is avg intra-cluster variance x1e3 — lower is better at equal k)");
}

//! Ablation: warmup-length sweep for the Warmup Regional Run (Fig. 8's
//! mitigation), plus the paper's alternative mitigation of replaying the
//! region itself ("run the pinballs multiple times").

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::metrics::aggregate_weighted;
use sampsim_core::runs::{self, WarmupMode};
use sampsim_core::Pipeline;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let id = BenchmarkId::XzS;
    let config = StudyConfig::default().scaled(cli.scale);
    let program = benchmark(id).scaled(cli.scale).build();
    let whole = runs::run_whole_functional(
        &program,
        config.pinpoints.profile_cache.expect("cache configured"),
    );
    let whole_l3 = whole
        .cache
        .as_ref()
        .expect("cache stats")
        .l3
        .miss_rate_pct();

    let mut table = Table::new(vec![
        "Warmup config".into(),
        "L3 miss%".into(),
        "|err| pp".into(),
    ]);
    table.title(format!(
        "Ablation: warmup length vs L3 miss-rate error, {} (whole L3 = {:.2}%)",
        id.name(),
        whole_l3
    ));
    for warmup_slices in [0u64, 4, 16, 48, 96] {
        let mut pp = config.pinpoints.clone();
        pp.warmup_slices = warmup_slices;
        pp.profile_cache = None;
        let pipeline = Pipeline::new(pp.clone());
        let result = unwrap_or_die(pipeline.run(&program));
        let mode = if warmup_slices == 0 {
            WarmupMode::None
        } else {
            WarmupMode::Checkpointed
        };
        let regions = unwrap_or_die(runs::run_regions_functional(
            &program,
            &result.regional,
            config.pinpoints.profile_cache.expect("cache configured"),
            mode,
        ));
        let l3 = aggregate_weighted(&regions)
            .miss_rates
            .expect("cache stats")
            .l3;
        table.row(vec![
            if warmup_slices == 0 {
                "cold (no warmup)".into()
            } else {
                format!("{warmup_slices} slices")
            },
            fmt_f(l3, 2),
            fmt_f((l3 - whole_l3).abs(), 2),
        ]);
    }
    // Paper's alternative: replay the pinballs themselves before measuring.
    {
        let mut pp = config.pinpoints.clone();
        pp.warmup_slices = 0;
        pp.profile_cache = None;
        let pipeline = Pipeline::new(pp);
        let result = unwrap_or_die(pipeline.run(&program));
        for rounds in [1u32, 3] {
            let regions = unwrap_or_die(runs::run_regions_functional(
                &program,
                &result.regional,
                config.pinpoints.profile_cache.expect("cache configured"),
                WarmupMode::Replayed { rounds },
            ));
            let l3 = aggregate_weighted(&regions)
                .miss_rates
                .expect("cache stats")
                .l3;
            table.row(vec![
                format!("self-replay x{rounds}"),
                fmt_f(l3, 2),
                fmt_f((l3 - whole_l3).abs(), 2),
            ]);
        }
    }
    table.print();
    println!("\n(the paper's two mitigations: functional warming before each point, or");
    println!(" running the set of regional pinballs multiple times to exercise the LLC —");
    println!(" note self-replay over-warms transient streaming data at reduced scale)");
}

//! Suite overview: whole-run characteristics of every benchmark — dynamic
//! size, instruction mix, cache miss rates, branch misprediction rate and
//! CPI. Not a paper exhibit; a sanity dashboard for the synthetic suite.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_util::stats::with_commas;
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Suite".into(),
        "Insts".into(),
        "MEM_R%".into(),
        "MEM_W%".into(),
        "L1D%".into(),
        "L2%".into(),
        "L3%".into(),
        "BrMiss%".into(),
        "CPI".into(),
    ]);
    table.title("Suite overview (whole runs)");
    for r in &results {
        let whole = r.whole_aggregate();
        let mr = whole.miss_rates.expect("cache stats");
        let t = r.whole_timing.timing.as_ref().expect("timing stats");
        table.row(vec![
            r.name.clone(),
            r.suite_label.clone(),
            with_commas(r.whole.instructions),
            fmt_f(whole.mix_pct[1], 1),
            fmt_f(whole.mix_pct[2], 1),
            fmt_f(mr.l1d, 2),
            fmt_f(mr.l2, 2),
            fmt_f(mr.l3, 2),
            fmt_f(t.branches.mispredict_rate_pct(), 2),
            fmt_f(t.cpi(), 3),
        ]);
    }
    table.print();
}

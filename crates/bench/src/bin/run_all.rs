//! Convenience driver: computes the suite artifacts, then regenerates
//! every table and figure in order by invoking the sibling binaries'
//! logic... actually, simpler and more robust: prints the commands to run.
//!
//! The heavy lifting (per-benchmark simulation) happens once on the first
//! figure target and is cached in `--artifacts`; this binary forces that
//! computation and then tells you what to run.

use sampsim_bench::{unwrap_or_die, Cli};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    println!(
        "computed/loaded {} benchmark artifacts at scale {}\n",
        results.len(),
        cli.scale.factor()
    );
    println!("regenerate the paper's exhibits with:");
    for bin in [
        "table2", "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig12",
    ] {
        println!("  cargo run --release -p sampsim-bench --bin {bin}");
    }
    println!("\nablations:");
    for bin in [
        "baseline_sampling",
        "smarts_compare",
        "ablation_warmup",
        "ablation_clustering",
        "ablation_hierarchy",
        "ablation_core_models",
        "ablation_vli",
        "cpi_stacks",
        "methodology_costs",
        "suite_overview",
    ] {
        println!("  cargo run --release -p sampsim-bench --bin {bin}");
    }
}

//! Fig. 3(a) — MaxK sensitivity for `623.xalancbmk_s`.
//!
//! Sweeps the maximum cluster count {15, 20, 25, 30, 35} at the default
//! slice size and compares the sampled instruction distribution and cache
//! miss rates (Table I hierarchy) against the full run.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::experiments::maxk_sweep;
use sampsim_spec2017::BenchmarkId;
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let maxks = [15usize, 20, 25, 30, 35];
    let result = unwrap_or_die(maxk_sweep(
        BenchmarkId::XalancbmkS,
        &maxks,
        cli.scale,
        &StudyConfig::default(),
    ));
    let mut table = Table::new(vec![
        "Config".into(),
        "Points".into(),
        "NO_MEM%".into(),
        "MEM_R%".into(),
        "MEM_W%".into(),
        "MEM_RW%".into(),
        "L1D mr%".into(),
        "L2 mr%".into(),
        "L3 mr%".into(),
    ]);
    table.title(format!(
        "Fig 3(a): MaxK sensitivity, {} (slice = default, Table I caches)",
        result.name
    ));
    let whole_mr = result.whole.miss_rates.expect("whole cache stats");
    table.row(vec![
        "Full Run".into(),
        "-".into(),
        fmt_f(result.whole.mix_pct[0], 2),
        fmt_f(result.whole.mix_pct[1], 2),
        fmt_f(result.whole.mix_pct[2], 2),
        fmt_f(result.whole.mix_pct[3], 2),
        fmt_f(whole_mr.l1d, 3),
        fmt_f(whole_mr.l2, 3),
        fmt_f(whole_mr.l3, 3),
    ]);
    for row in &result.rows {
        table.row(vec![
            format!("MaxK={}", row.param),
            row.num_points.to_string(),
            fmt_f(row.mix_pct[0], 2),
            fmt_f(row.mix_pct[1], 2),
            fmt_f(row.mix_pct[2], 2),
            fmt_f(row.mix_pct[3], 2),
            fmt_f(row.miss_rates.l1d, 3),
            fmt_f(row.miss_rates.l2, 3),
            fmt_f(row.miss_rates.l3, 3),
        ]);
    }
    table.print();
    println!(
        "\n(paper: small MaxK shows significant instruction-distribution variation; \
         >=35 clusters capture all phases)"
    );
}

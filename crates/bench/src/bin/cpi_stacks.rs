//! Extension exhibit: CPI stacks per benchmark (Sniper's signature view),
//! comparing the whole-run stack against the weighted simulation-point
//! stack — shows *where* sampled time goes, not just how much.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::metrics::aggregate_weighted;
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Run".into(),
        "Base".into(),
        "Branch".into(),
        "IFetch".into(),
        "L2".into(),
        "L3".into(),
        "Mem".into(),
        "CPI".into(),
    ]);
    table.title("CPI stacks: whole run vs weighted simulation points (Table III machine)");
    for r in &results {
        let t = r.whole_timing.timing.as_ref().expect("timing stats");
        let n = t.instructions.max(1) as f64;
        table.row(vec![
            r.name.clone(),
            "whole".into(),
            fmt_f(t.stack.base / n, 3),
            fmt_f(t.stack.branch / n, 3),
            fmt_f(t.stack.ifetch / n, 3),
            fmt_f(t.stack.l2 / n, 3),
            fmt_f(t.stack.l3 / n, 3),
            fmt_f(t.stack.mem / n, 3),
            fmt_f(t.cpi(), 3),
        ]);
        let pairs: Vec<_> = r
            .regions
            .iter()
            .map(|reg| (reg.timing.clone(), reg.weight))
            .collect();
        let agg = aggregate_weighted(&pairs);
        let s = agg.cpi_stack.expect("timing stacks");
        table.row(vec![
            String::new(),
            "sampled".into(),
            fmt_f(s.base, 3),
            fmt_f(s.branch, 3),
            fmt_f(s.ifetch, 3),
            fmt_f(s.l2, 3),
            fmt_f(s.l3, 3),
            fmt_f(s.mem, 3),
            fmt_f(agg.cpi.expect("cpi"), 3),
        ]);
    }
    table.print();
    println!("\n(each pair of rows: the whole-run CPI breakdown and the weighted");
    println!(" simulation-point breakdown; close stacks mean sampling preserves the");
    println!(" *attribution* of cycles, not just the total)");
}

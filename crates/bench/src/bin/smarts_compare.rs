//! SimPoint vs SMARTS-style systematic sampling under matched instruction
//! budgets.
//!
//! SMARTS measures many tiny units spread systematically across the run
//! and reports a CLT confidence interval; SimPoint replays few clustered
//! representatives. This ablation compares their instruction-mix and CPI
//! estimates against the whole run on one benchmark.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::metrics::aggregate_weighted;
use sampsim_core::runs::{self, WarmupMode};
use sampsim_core::Pipeline;
use sampsim_pin::engine;
use sampsim_pin::tools::LdStMix;
use sampsim_simpoint::smarts;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_uarch::Sniper;
use sampsim_util::table::{fmt_f, Table};
use sampsim_workload::Executor;

fn main() {
    let cli = Cli::parse();
    let id = BenchmarkId::X264R;
    let config = StudyConfig::default().scaled(cli.scale);
    let program = benchmark(id).scaled(cli.scale).build();

    // Whole-run references.
    let whole_func = runs::run_whole_functional(
        &program,
        config.pinpoints.profile_cache.expect("cache configured"),
    );
    let whole_timing = runs::run_whole_timing(&program, config.core, config.timing_hierarchy);
    let whole_read_pct = whole_func.mix.distribution_pct()[1];
    let whole_cpi = whole_timing.timing.as_ref().expect("timing stats").cpi();

    // SimPoint side.
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = None;
    let pipeline_result = unwrap_or_die(Pipeline::new(pp.clone()).run(&program));
    let sp_regions = unwrap_or_die(runs::run_regions_timing(
        &program,
        &pipeline_result.regional,
        config.core,
        config.timing_hierarchy,
        WarmupMode::Checkpointed,
    ));
    let sp_agg = aggregate_weighted(&sp_regions);
    let sp_budget: u64 = pipeline_result.regional.len() as u64 * pp.slice_size;

    // SMARTS side: the same measured-instruction budget split into units
    // of 1/10 slice, systematically spread, with SMARTS' defining
    // ingredient — continuous functional warming of caches and predictors
    // between the detailed units (the expensive part the SimFlex/CoolSim
    // line of work tries to cheapen).
    let unit = (pp.slice_size / 10).max(100);
    let n_units = (sp_budget / unit) as usize;
    let total_units = program.total_insts() / unit;
    let picks = smarts::systematic_indices(total_units, n_units);
    let mut read_samples = Vec::with_capacity(picks.len());
    let mut cpi_samples = Vec::with_capacity(picks.len());
    let mut exec = Executor::new(&program);
    let mut sim = Sniper::new(config.core, config.timing_hierarchy);
    for &u in &picks {
        let target = u * unit;
        if exec.retired() > target {
            continue; // overlapping strata at tiny scales
        }
        // Functional warming up to the unit.
        sim.set_warming(true);
        let to_warm = target - exec.retired();
        engine::run_one(&mut exec, to_warm, &mut sim);
        sim.set_warming(false);
        // Detailed measurement of the unit.
        sim.reset_stats();
        let mut mix = LdStMix::new();
        engine::run(&mut exec, unit, &mut [&mut mix, &mut sim]);
        let stats = sim.stats();
        if stats.instructions > 0 {
            cpi_samples.push(stats.cpi());
            read_samples.push(mix.counts().distribution_pct()[1]);
        }
    }
    let read_est = smarts::estimate(&read_samples, 0.95);
    let cpi_est = smarts::estimate(&cpi_samples, 0.95);

    let mut table = Table::new(vec![
        "Method".into(),
        "Budget (insts)".into(),
        "MEM_R %".into(),
        "CPI".into(),
        "CPI err%".into(),
    ]);
    table.title(format!(
        "SimPoint vs SMARTS-style systematic sampling, {} (whole MEM_R {:.2}%, CPI {:.3})",
        id.name(),
        whole_read_pct,
        whole_cpi
    ));
    table.row(vec![
        format!("SimPoint ({} pts)", pipeline_result.regional.len()),
        sp_budget.to_string(),
        fmt_f(sp_agg.mix_pct[1], 2),
        fmt_f(sp_agg.cpi.expect("timing stats"), 3),
        fmt_f(
            100.0 * (sp_agg.cpi.unwrap() - whole_cpi).abs() / whole_cpi,
            2,
        ),
    ]);
    table.row(vec![
        format!("SMARTS ({} units)", cpi_samples.len()),
        (cpi_samples.len() as u64 * unit).to_string(),
        format!("{:.2}±{:.2}", read_est.mean, read_est.half_width),
        format!("{:.3}±{:.3}", cpi_est.mean, cpi_est.half_width),
        fmt_f(100.0 * (cpi_est.mean - whole_cpi).abs() / whole_cpi, 2),
    ]);
    table.print();
    println!(
        "\nSMARTS 95% CI covers the whole-run CPI: {}",
        if cpi_est.covers(whole_cpi) {
            "yes"
        } else {
            "no"
        }
    );
    println!(
        "units for 5% relative error at 95% (from measured CoV {:.2}): {}",
        cpi_est.stddev / cpi_est.mean,
        smarts::required_units(cpi_est.stddev / cpi_est.mean, 0.95, 0.05)
    );
    println!("\n(note: SMARTS' accuracy rides on continuous functional warming between units,");
    println!(" which costs a full functional pass — the constraint SimFlex/CoolSim attack)");
}

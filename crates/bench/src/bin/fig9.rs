//! Fig. 9 — error vs execution time as the simulation-point percentile
//! shrinks.
//!
//! Sweeps the fraction of total weight retained (50–100%); errors against
//! the whole run rise as points are dropped while execution time falls.
//! 100 and 90 correspond to the Regional and Reduced Regional runs.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::experiments::percentile_sweep;
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let rows = percentile_sweep(&results, &[50, 60, 70, 80, 90, 95, 100]);
    let mut table = Table::new(vec![
        "Percentile".into(),
        "Avg points".into(),
        "Mix err pp".into(),
        "L1D err pp".into(),
        "L2 err pp".into(),
        "L3 err pp".into(),
        "Exec time s".into(),
    ]);
    table.title("Fig 9: suite-average error vs whole run (y1) and execution time (y2)");
    for row in &rows {
        table.row(vec![
            format!("{}%", row.percentile),
            fmt_f(row.avg_points, 1),
            fmt_f(row.mix_err_pp, 3),
            fmt_f(row.l1d_err_pp, 3),
            fmt_f(row.l2_err_pp, 3),
            fmt_f(row.l3_err_pp, 3),
            fmt_f(row.exec_seconds, 3),
        ]);
    }
    table.print();
    let mix: Vec<f64> = rows.iter().map(|r| r.mix_err_pp).collect();
    let time: Vec<f64> = rows.iter().map(|r| r.exec_seconds).collect();
    println!("\nmix error (pp) and execution time (s) vs percentile (50% ... 100%):\n");
    print!(
        "{}",
        sampsim_util::plot::line_chart(&[("mix err pp", &mix), ("exec s", &time)], 9)
    );
    println!("\n(paper: error rates rise as the number of simulation points is reduced,");
    println!(" letting users trade accuracy for runtime budget)");
}

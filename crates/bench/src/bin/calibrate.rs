//! Calibration helper: reports the simulation-point counts the pipeline
//! finds for a set of representative benchmarks under varying BIC
//! thresholds, against the Table II targets. Not a paper exhibit; used
//! when tuning the synthetic suite.
//!
//! Usage: `calibrate [scale]` (default scale 1.0; counts are invariant to
//! scale because slice counts are preserved).

use sampsim_core::pipeline::{PinPointsConfig, Pipeline};
use sampsim_simpoint::{SimPointAnalysis, SimPointOptions};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::scale::Scale;

fn main() {
    let scale = Scale::new(
        std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0),
    );
    let thresholds = [0.9f64, 0.85, 0.8, 0.7];
    let ids = [
        BenchmarkId::OmnetppS,
        BenchmarkId::McfR,
        BenchmarkId::XalancbmkS,
        BenchmarkId::DeepsjengS,
        BenchmarkId::BwavesR,
    ];
    for id in ids {
        let spec = benchmark(id);
        let program = spec.scaled(scale).build();
        let pp = PinPointsConfig {
            slice_size: scale.apply(10_000),
            ..Default::default()
        };
        let (bbvs, _starts, _m) = Pipeline::new(pp.clone()).profile(&program);
        print!(
            "{:<18} target {:>2}/{:>2} slices {:>6} ->",
            spec.name(),
            spec.table2_points(),
            spec.table2_points_90(),
            bbvs.len()
        );
        for &t in &thresholds {
            let opts = SimPointOptions {
                bic_threshold: t,
                ..pp.simpoint
            };
            let r = SimPointAnalysis::new(opts)
                .run(&bbvs, pp.slice_size)
                .expect("non-empty profile");
            let n90 = sampsim_simpoint::select::count_at_percentile(&r.points, 0.9);
            print!("  t{t}: {}/{}", r.points.len(), n90);
        }
        println!();
    }
}

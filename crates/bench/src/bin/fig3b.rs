//! Fig. 3(b) — slice-size sensitivity for `623.xalancbmk_s`.
//!
//! Sweeps the slice length over the paper's {15, 25, 30, 50, 100} M values
//! (1/3000-scaled) at MaxK = 35 and compares against the full run. Small
//! slices keep the instruction mix but inflate the miss rates of the outer
//! caches (cold-start effects) — the paper's §IV-A observation.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::experiments::slice_sweep;
use sampsim_spec2017::BenchmarkId;
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    // Paper slice sizes 15/25/30/50/100 M instructions, scaled 1/3000.
    let slices: Vec<u64> = [5_000u64, 8_333, 10_000, 16_667, 33_333]
        .iter()
        .map(|&s| cli.scale.apply(s))
        .collect();
    let result = unwrap_or_die(slice_sweep(
        BenchmarkId::XalancbmkS,
        &slices,
        cli.scale,
        &StudyConfig::default(),
    ));
    let mut table = Table::new(vec![
        "Config".into(),
        "Points".into(),
        "NO_MEM%".into(),
        "MEM_R%".into(),
        "MEM_W%".into(),
        "MEM_RW%".into(),
        "L1D mr%".into(),
        "L2 mr%".into(),
        "L3 mr%".into(),
    ]);
    table.title(format!(
        "Fig 3(b): slice-size sensitivity, {} (MaxK=35, Table I caches; paper sizes /3000)",
        result.name
    ));
    let whole_mr = result.whole.miss_rates.expect("whole cache stats");
    table.row(vec![
        "Full Run".into(),
        "-".into(),
        fmt_f(result.whole.mix_pct[0], 2),
        fmt_f(result.whole.mix_pct[1], 2),
        fmt_f(result.whole.mix_pct[2], 2),
        fmt_f(result.whole.mix_pct[3], 2),
        fmt_f(whole_mr.l1d, 3),
        fmt_f(whole_mr.l2, 3),
        fmt_f(whole_mr.l3, 3),
    ]);
    for (row, paper_m) in result.rows.iter().zip(["15M", "25M", "30M", "50M", "100M"]) {
        table.row(vec![
            format!("slice={} ({paper_m})", row.param),
            row.num_points.to_string(),
            fmt_f(row.mix_pct[0], 2),
            fmt_f(row.mix_pct[1], 2),
            fmt_f(row.mix_pct[2], 2),
            fmt_f(row.mix_pct[3], 2),
            fmt_f(row.miss_rates.l1d, 3),
            fmt_f(row.miss_rates.l2, 3),
            fmt_f(row.miss_rates.l3, 3),
        ]);
    }
    table.print();
    println!(
        "\n(paper: small slices barely move the memory-instruction distribution but show \
         large L3 miss-rate deviations; larger slices bring L3 much closer to the full run)"
    );
}

//! Fig. 12 — CPI: native execution (perf) vs Sniper on simulation points.
//!
//! The native side is the whole program on the modelled i7-3770 with
//! measurement perturbations; the Sniper side replays Regional / Reduced
//! Regional pinballs inside the timing model and combines CPI by weight.
//! The paper reports a 2.59% average CPI error for Regional runs and a
//! 13.9% average deviation for Reduced Regional runs.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_util::table::{fmt_f, fmt_pct, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    println!("Table III machine: 4-wide OoO, 168-entry ROB, 8-cycle branch penalty,");
    println!("32kB 8-way L1, 256kB 8-way L2, 8MB 16-way L3, 3.4 GHz\n");
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Native CPI".into(),
        "Sniper Regional".into(),
        "Sniper Reduced".into(),
        "Reg err%".into(),
        "Red err%".into(),
    ]);
    table.title("Fig 12: CPI, native execution vs Sniper with simulation points");
    let (mut reg_err_sum, mut red_err_sum) = (0.0f64, 0.0f64);
    let mut worst: (f64, String) = (0.0, String::new());
    for r in &results {
        let native = r.native.cpi();
        let reg = r.regional_cpi();
        let red = r.reduced_cpi(0.9);
        let reg_err = 100.0 * (reg - native).abs() / native;
        let red_err = 100.0 * (red - native).abs() / native;
        reg_err_sum += reg_err;
        red_err_sum += red_err;
        if red_err > worst.0 {
            worst = (red_err, r.name.clone());
        }
        table.row(vec![
            r.name.clone(),
            fmt_f(native, 3),
            fmt_f(reg, 3),
            fmt_f(red, 3),
            fmt_pct(reg_err),
            fmt_pct(red_err),
        ]);
    }
    table.print();
    let n = results.len() as f64;
    println!(
        "\nAverage CPI error vs native: Regional {:.2}%, Reduced Regional {:.2}%",
        reg_err_sum / n,
        red_err_sum / n,
    );
    println!(
        "Largest Reduced-run deviation: {} ({:.1}%)",
        worst.1, worst.0
    );
    println!("\n(paper: 2.59% average CPI error for Regional; 13.9% average deviation for");
    println!(" Reduced Regional, with outliers like 507.cactuBSSN_r)");
}

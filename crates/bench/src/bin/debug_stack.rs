//! Debug helper: CPI stack of whole vs regional timing runs.
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::metrics::aggregate_weighted;
use sampsim_core::pipeline::Pipeline;
use sampsim_core::runs::{self, WarmupMode};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::scale::Scale;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "631.deepsjeng_s".into());
    let id = BenchmarkId::from_name(&name).expect("benchmark name");
    let scale = Scale::new(
        std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0),
    );
    let warmup: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let mut cfg = StudyConfig::default().scaled(scale);
    cfg.pinpoints.warmup_slices = warmup;
    let program = benchmark(id).scaled(scale).build();
    let pipeline = Pipeline::new(cfg.pinpoints.clone());
    let result = pipeline.run(&program).unwrap();
    let whole = runs::run_whole_timing(&program, cfg.core, cfg.timing_hierarchy);
    let wt = whole.timing.unwrap();
    let wn = wt.instructions as f64;
    println!(
        "whole  CPI {:.3}: base {:.3} br {:.3} if {:.3} l2 {:.3} l3 {:.3} mem {:.3} (bmiss {:.1}%)",
        wt.cpi(),
        wt.stack.base / wn,
        wt.stack.branch / wn,
        wt.stack.ifetch / wn,
        wt.stack.l2 / wn,
        wt.stack.l3 / wn,
        wt.stack.mem / wn,
        wt.branches.mispredict_rate_pct()
    );
    {
        let regions = runs::run_regions_timing(
            &program,
            &result.regional,
            cfg.core,
            cfg.timing_hierarchy,
            WarmupMode::Checkpointed,
        )
        .unwrap();
        for ((m, w), pb) in regions.iter().zip(&result.regional) {
            let t = m.timing.as_ref().unwrap();
            let n = t.instructions as f64;
            println!("  region slice {:>6} w {:>6.3} seg {:>5} segoff {:>8} warm_insts {:>7}: cpi {:>7.3} mem {:>7.3}",
                pb.slice_index, w, pb.start.seg_idx, pb.start.seg_retired,
                pb.warmup_insts(),
                t.cpi(), t.stack.mem / n);
        }
    }
    for (label, mode) in [
        ("cold", WarmupMode::None),
        ("warm", WarmupMode::Checkpointed),
        ("rply", WarmupMode::Replayed { rounds: 2 }),
    ] {
        let regions = runs::run_regions_timing(
            &program,
            &result.regional,
            cfg.core,
            cfg.timing_hierarchy,
            mode,
        )
        .unwrap();
        let agg = aggregate_weighted(&regions);
        let s = agg.cpi_stack.unwrap();
        println!(
            "{label}   CPI {:.3}: base {:.3} br {:.3} if {:.3} l2 {:.3} l3 {:.3} mem {:.3}",
            agg.cpi.unwrap(),
            s.base,
            s.branch,
            s.ifetch,
            s.l2,
            s.l3,
            s.mem
        );
    }
}

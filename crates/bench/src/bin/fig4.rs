//! Fig. 4 — average intra-cluster variance vs number of clusters, per
//! benchmark.
//!
//! Forcing a low cluster count makes distinct phases share clusters at the
//! expense of accuracy; variance falls as the cluster budget grows.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_util::table::{fmt_f, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let ks: Vec<usize> = results
        .first()
        .map(|r| r.cluster_variance.iter().map(|&(k, _)| k).collect())
        .unwrap_or_default();
    let mut headers = vec!["Benchmark".into()];
    headers.extend(ks.iter().map(|k| format!("k={k}")));
    let mut table = Table::new(headers);
    table.title("Fig 4: average intra-cluster variance vs available clusters");
    for r in &results {
        let mut row = vec![r.name.clone()];
        for &k in &ks {
            let v = r
                .cluster_variance
                .iter()
                .find(|&&(kk, _)| kk == k)
                .map(|&(_, v)| v);
            row.push(match v {
                Some(v) => fmt_f(v * 1e3, 3), // scaled for readability
                None => "-".into(),
            });
        }
        table.row(row);
    }
    table.print();
    // Suite-average trend (log-ish shape is the message).
    let avg: Vec<f64> = ks
        .iter()
        .map(|&k| {
            let (sum, n) = results.iter().fold((0.0, 0u32), |(s, n), r| {
                match r.cluster_variance.iter().find(|&&(kk, _)| kk == k) {
                    Some(&(_, v)) => (s + v * 1e3, n + 1),
                    None => (s, n),
                }
            });
            if n == 0 {
                0.0
            } else {
                sum / f64::from(n)
            }
        })
        .collect();
    println!(
        "\nsuite-average variance (x1e3) vs cluster budget ({:?}):\n",
        ks
    );
    print!(
        "{}",
        sampsim_util::plot::line_chart(&[("avg variance", &avg)], 8)
    );
    println!("\n(values are mean squared distance to centroid x1e3 in projected BBV space;");
    println!(" paper: variance grows as the number of available clusters decreases)");
}

//! Fig. 10 — number of L3 accesses: Whole vs Regional vs Reduced Regional.
//!
//! The sampled runs execute far fewer instructions, so they expose the L3
//! to far fewer accesses — the root cause of the Fig. 8 LLC miss-rate
//! discrepancy.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_util::stats::with_commas;
use sampsim_util::table::Table;

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Whole L3 accesses".into(),
        "Regional".into(),
        "Reduced".into(),
    ]);
    table.title("Fig 10: L3 cache accesses per run kind (Table I hierarchy)");
    let (mut w, mut r_sum, mut d_sum) = (0u64, 0u64, 0u64);
    for r in &results {
        let whole = r
            .whole
            .cache
            .as_ref()
            .expect("whole cache stats")
            .l3
            .accesses;
        let reg = r.regional_aggregate().total_l3_accesses;
        let red = r.reduced_aggregate(0.9).total_l3_accesses;
        w += whole;
        r_sum += reg;
        d_sum += red;
        table.row(vec![
            r.name.clone(),
            with_commas(whole),
            with_commas(reg),
            with_commas(red),
        ]);
    }
    table.print();
    println!(
        "\nSuite totals: whole {}, regional {} ({:.0}x fewer), reduced {} ({:.0}x fewer)",
        with_commas(w),
        with_commas(r_sum),
        w as f64 / r_sum as f64,
        with_commas(d_sum),
        w as f64 / d_sum as f64,
    );
    println!("\n(paper: the sharply reduced L3 access counts in sampled runs explain the");
    println!(" inflated LLC miss rates; warmup or longer slices are the mitigations)");
}

//! Methodology cost accounting (paper §II-B / §III).
//!
//! The paper reports that PinPlay logging runs 100–200× slower than native
//! execution (checkpointing bwaves_s took over a month), while replay of
//! regional pinballs is the cheap, repeatable part. This exhibit measures
//! the analogous costs in sampsim: raw execution, the profiling/logging
//! pass (BBVs + slice checkpoints + tools), clustering, and regional
//! replay.

use sampsim_bench::Cli;
use sampsim_cache::configs;
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::pipeline::Pipeline;
use sampsim_core::runs::{self, WarmupMode};
use sampsim_simpoint::SimPointAnalysis;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::table::{fmt_f, fmt_x, Table};
use sampsim_workload::Executor;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let id = BenchmarkId::GccR;
    let config = StudyConfig::default().scaled(cli.scale);
    let program = benchmark(id).scaled(cli.scale).build();
    let insts = program.total_insts() as f64;

    // 1. "Native" execution: the bare executor.
    let t = Instant::now();
    let mut exec = Executor::new(&program);
    let mut checksum = 0u64;
    while let Some(i) = exec.next_inst() {
        checksum ^= i.addr;
    }
    let native = t.elapsed().as_secs_f64();
    std::hint::black_box(checksum);

    // 2. Logging pass: BBVs + slice checkpoints + ldstmix + allcache.
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = Some(configs::allcache_table1());
    let pipeline = Pipeline::new(pp.clone());
    let t = Instant::now();
    let (bbvs, starts, _metrics) = pipeline.profile(&program);
    let logging = t.elapsed().as_secs_f64();

    // 3. Clustering.
    let t = Instant::now();
    let simpoints = SimPointAnalysis::new(pp.simpoint)
        .run(&bbvs, pp.slice_size)
        .expect("non-empty profile");
    let clustering = t.elapsed().as_secs_f64();
    let regional = pipeline.regionals_for(&program, &simpoints, &starts);

    // 4. Regional replay (all points, with warmup).
    let t = Instant::now();
    let metrics = runs::run_regions_functional(
        &program,
        &regional,
        configs::allcache_table1(),
        WarmupMode::Checkpointed,
    )
    .expect("replay");
    let replay = t.elapsed().as_secs_f64();
    let replayed: u64 = metrics.iter().map(|(m, _)| m.instructions).sum();

    let mut table = Table::new(vec![
        "Phase".into(),
        "Seconds".into(),
        "Minst/s".into(),
        "vs native".into(),
    ]);
    table.title(format!(
        "Methodology costs, {} ({} instructions)",
        id.name(),
        program.total_insts()
    ));
    table.row(vec![
        "native execution".into(),
        fmt_f(native, 3),
        fmt_f(insts / native / 1e6, 1),
        "1.0x".into(),
    ]);
    table.row(vec![
        "logging (checkpoint+BBV+tools)".into(),
        fmt_f(logging, 3),
        fmt_f(insts / logging / 1e6, 1),
        fmt_x(logging / native),
    ]);
    table.row(vec![
        "clustering (SimPoint)".into(),
        fmt_f(clustering, 3),
        "-".into(),
        fmt_x(clustering / native),
    ]);
    table.row(vec![
        format!("regional replay ({} pts)", regional.len()),
        fmt_f(replay, 3),
        fmt_f(replayed as f64 / replay / 1e6, 1),
        fmt_x(replay / native),
    ]);
    table.print();
    println!(
        "\none-time cost (logging+clustering) {:.2}s; each subsequent experiment replays",
        logging + clustering,
    );
    println!(
        "1/{:.0} of the instructions in 1/{:.0} of the whole-run-with-tools time",
        insts / replayed as f64,
        logging / replay,
    );
    println!("\n(paper: PinPlay logging is 100-200x slower than native — checkpointing");
    println!(" bwaves_s took over a month — while regional replay is the cheap,");
    println!(" infinitely repeatable artifact)");
}

//! Ablation: does sampling accuracy depend on the core model?
//!
//! Runs one benchmark's whole execution and its (warmed) simulation points
//! through three machines — a scalar in-order core, the paper's Table III
//! i7-3770, and an aggressive 8-wide core — and reports the sampled-CPI
//! error for each. Sampling is microarchitecture-independent by design
//! (BBVs never look at the machine); this checks the claim holds in
//! practice across the design space.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::metrics::aggregate_weighted;
use sampsim_core::runs::{self, WarmupMode};
use sampsim_core::Pipeline;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_uarch::CoreConfig;
use sampsim_util::table::{fmt_f, fmt_pct, Table};

fn main() {
    let cli = Cli::parse();
    let id = BenchmarkId::LeelaR;
    let config = StudyConfig::default().scaled(cli.scale);
    let program = benchmark(id).scaled(cli.scale).build();
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = None;
    let result = unwrap_or_die(Pipeline::new(pp).run(&program));

    let mut table = Table::new(vec![
        "Core model".into(),
        "Whole CPI".into(),
        "Sampled CPI".into(),
        "Error".into(),
    ]);
    table.title(format!(
        "Ablation: one set of simulation points, three machines ({})",
        id.name()
    ));
    for (label, core) in [
        ("in-order scalar", CoreConfig::in_order()),
        ("i7-3770 (Table III)", CoreConfig::table3()),
        ("8-wide aggressive", CoreConfig::wide()),
    ] {
        let whole = runs::run_whole_timing(&program, core, config.timing_hierarchy);
        let whole_cpi = whole.timing.as_ref().expect("timing stats").cpi();
        let regions = unwrap_or_die(runs::run_regions_timing(
            &program,
            &result.regional,
            core,
            config.timing_hierarchy,
            WarmupMode::Checkpointed,
        ));
        let sampled = aggregate_weighted(&regions).cpi.expect("timing stats");
        table.row(vec![
            label.to_string(),
            fmt_f(whole_cpi, 3),
            fmt_f(sampled, 3),
            fmt_pct(100.0 * (sampled - whole_cpi).abs() / whole_cpi),
        ]);
    }
    table.print();
    println!("\n(the same BBV-derived points serve every machine — phase selection is");
    println!(" ISA- and microarchitecture-independent, as the SimPoint papers argue)");
}

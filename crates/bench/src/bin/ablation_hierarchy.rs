//! Ablation: does sampling preserve design *rankings*?
//!
//! The paper's warning (§IV-D) is that injudicious SimPoint configurations
//! can lead memory-hierarchy exploration astray. This ablation evaluates
//! four L2 design alternatives (LRU/FIFO/random replacement and a next-line
//! prefetcher) under the whole run, cold regions, and warmed regions, and
//! checks whether each sampled run ranks the designs the same way the
//! whole run does.

use sampsim_bench::{unwrap_or_die, Cli};
use sampsim_cache::{configs, HierarchyConfig, ReplacementPolicy};
use sampsim_core::bench_result::StudyConfig;
use sampsim_core::metrics::aggregate_weighted;
use sampsim_core::runs::{self, WarmupMode};
use sampsim_core::Pipeline;
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::table::{fmt_f, Table};

fn designs() -> Vec<(&'static str, HierarchyConfig)> {
    let base = configs::i7_table3();
    let with_policy = |p| HierarchyConfig {
        l2: base.l2.with_policy(p),
        ..base
    };
    vec![
        ("L2 LRU", base),
        ("L2 FIFO", with_policy(ReplacementPolicy::Fifo)),
        ("L2 random", with_policy(ReplacementPolicy::Random)),
        (
            "L2 LRU + prefetch",
            HierarchyConfig {
                next_line_prefetch: true,
                ..base
            },
        ),
    ]
}

fn ranking(scores: &[(&'static str, f64)]) -> Vec<&'static str> {
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    sorted.into_iter().map(|(n, _)| n).collect()
}

fn main() {
    let cli = Cli::parse();
    let id = BenchmarkId::XzS;
    let config = StudyConfig::default().scaled(cli.scale);
    let program = benchmark(id).scaled(cli.scale).build();
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = None;
    let result = unwrap_or_die(Pipeline::new(pp).run(&program));

    let mut table = Table::new(vec![
        "Design".into(),
        "Whole L2 miss%".into(),
        "Cold regions".into(),
        "Warm regions".into(),
    ]);
    table.title(format!(
        "Ablation: L2 design ranking under sampling, {}",
        id.name()
    ));
    let mut whole_scores = Vec::new();
    let mut cold_scores = Vec::new();
    let mut warm_scores = Vec::new();
    for (label, cfg) in designs() {
        let whole = runs::run_whole_functional(&program, cfg);
        let whole_l2 = whole
            .cache
            .as_ref()
            .expect("cache stats")
            .l2
            .miss_rate_pct();
        let cold = aggregate_weighted(&unwrap_or_die(runs::run_regions_functional(
            &program,
            &result.regional,
            cfg,
            WarmupMode::None,
        )))
        .miss_rates
        .expect("cache stats")
        .l2;
        let warm = aggregate_weighted(&unwrap_or_die(runs::run_regions_functional(
            &program,
            &result.regional,
            cfg,
            WarmupMode::Checkpointed,
        )))
        .miss_rates
        .expect("cache stats")
        .l2;
        whole_scores.push((label, whole_l2));
        cold_scores.push((label, cold));
        warm_scores.push((label, warm));
        table.row(vec![
            label.to_string(),
            fmt_f(whole_l2, 2),
            fmt_f(cold, 2),
            fmt_f(warm, 2),
        ]);
    }
    table.print();
    let whole_rank = ranking(&whole_scores);
    let cold_rank = ranking(&cold_scores);
    let warm_rank = ranking(&warm_scores);
    println!("\nranking (best L2 miss rate first):");
    println!("  whole run:    {whole_rank:?}");
    println!(
        "  cold regions: {cold_rank:?}  {}",
        if cold_rank == whole_rank {
            "(matches)"
        } else {
            "(DISAGREES!)"
        }
    );
    println!(
        "  warm regions: {warm_rank:?}  {}",
        if warm_rank == whole_rank {
            "(matches)"
        } else {
            "(DISAGREES!)"
        }
    );
    println!("\n(the paper's cautionary point: conclusions drawn from cold simulation");
    println!(" points can invert design rankings; warming restores them)");
}

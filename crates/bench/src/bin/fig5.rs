//! Fig. 5 — dynamic instruction count and execution time of Whole,
//! Regional and Reduced Regional runs.
//!
//! The paper's headline reductions: ~650× fewer instructions / ~750× less
//! time for Regional runs, ~1225× / ~1297× for Reduced Regional runs.

use sampsim_bench::{geo_mean, unwrap_or_die, Cli};
use sampsim_util::stats::with_commas;
use sampsim_util::table::{fmt_f, fmt_x, Table};

fn main() {
    let cli = Cli::parse();
    let results = unwrap_or_die(cli.results());
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Whole insts".into(),
        "Regional insts".into(),
        "Reduced insts".into(),
        "Instr red.".into(),
        "Red. red.".into(),
        "Whole s".into(),
        "Regional s".into(),
        "Reduced s".into(),
    ]);
    table.title("Fig 5: dynamic instruction count and execution time per run kind");
    let (mut w_i, mut r_i, mut d_i) = (0u64, 0u64, 0u64);
    let (mut w_t, mut r_t, mut d_t) = (0.0f64, 0.0f64, 0.0f64);
    let mut instr_factors = Vec::new();
    let mut reduced_factors = Vec::new();
    for r in &results {
        let regional = r.regional_aggregate();
        let reduced = r.reduced_aggregate(0.9);
        let whole_insts = r.whole.instructions;
        let reg_insts = regional.total_instructions;
        let red_insts = reduced.total_instructions;
        w_i += whole_insts;
        r_i += reg_insts;
        d_i += red_insts;
        w_t += r.whole.wall_seconds;
        r_t += regional.total_wall_seconds;
        d_t += reduced.total_wall_seconds;
        let f_reg = whole_insts as f64 / reg_insts as f64;
        let f_red = whole_insts as f64 / red_insts as f64;
        instr_factors.push(f_reg);
        reduced_factors.push(f_red);
        table.row(vec![
            r.name.clone(),
            with_commas(whole_insts),
            with_commas(reg_insts),
            with_commas(red_insts),
            fmt_x(f_reg),
            fmt_x(f_red),
            fmt_f(r.whole.wall_seconds, 2),
            fmt_f(regional.total_wall_seconds, 3),
            fmt_f(reduced.total_wall_seconds, 3),
        ]);
    }
    table.print();
    println!();
    println!(
        "Suite totals: whole {} -> regional {} insts ({}), reduced {} ({})",
        with_commas(w_i),
        with_commas(r_i),
        fmt_x(w_i as f64 / r_i as f64),
        with_commas(d_i),
        fmt_x(w_i as f64 / d_i as f64),
    );
    println!(
        "Execution time: whole {:.1}s -> regional {:.2}s ({}), reduced {:.2}s ({})",
        w_t,
        r_t,
        fmt_x(w_t / r_t),
        d_t,
        fmt_x(w_t / d_t),
    );
    println!(
        "Per-benchmark geomean instruction reduction: regional {}, reduced {}",
        fmt_x(geo_mean(instr_factors)),
        fmt_x(geo_mean(reduced_factors)),
    );
    println!("\n(paper: ~650x fewer instructions / ~750x less time for Regional;");
    println!(" ~1225x / ~1297x for Reduced Regional)");
}

//! Shared plumbing for the benchmark harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) and accepts the same flags:
//!
//! ```text
//! --scale <f>        workload scale factor (default: $SAMPSIM_SCALE or 1.0)
//! --artifacts <dir>  artifact cache directory (default: ./artifacts)
//! --no-cache         recompute instead of using the artifact cache
//! --bench <name>     restrict suite figures to one benchmark (substring)
//! --jobs <n|auto>    worker threads for uncached benchmarks (default: auto)
//! --strategy <name>  region-selection strategy (simpoint | stratified2p |
//!                    rss; default: simpoint)
//! --quiet            suppress progress lines
//! ```
//!
//! Artifacts are shared: the first figure binary to run pays the
//! simulation cost for the suite, later binaries reload in milliseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sampsim_core::artifacts::ArtifactStore;
use sampsim_core::bench_result::{BenchResult, StudyConfig};
use sampsim_core::experiments::Study;
use sampsim_core::CoreError;
use sampsim_exec::Jobs;
use sampsim_simpoint::{StrategySpec, STRATEGY_NAMES};
use sampsim_spec2017::BenchmarkId;
use sampsim_util::scale::Scale;

/// Parsed common command-line options.
#[derive(Debug)]
pub struct Cli {
    /// Workload scale.
    pub scale: Scale,
    /// Artifact directory (`None` with `--no-cache`).
    pub artifacts: Option<String>,
    /// Benchmark-name substring filter.
    pub filter: Option<String>,
    /// Worker threads for the benchmark fan-out.
    pub jobs: Jobs,
    /// Region-selection strategy (`StrategySpec::SimPoint` by default).
    pub strategy: StrategySpec,
    /// Progress printing.
    pub verbose: bool,
}

impl Cli {
    /// Parses `std::env::args`, exiting with usage on an unknown flag.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of [`Cli::parse`]).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = Scale::from_env();
        let mut artifacts = Some("artifacts".to_string());
        let mut filter = None;
        let mut jobs = Jobs::Auto;
        let mut strategy = StrategySpec::default();
        let mut verbose = true;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    match v.parse::<f64>() {
                        Ok(f) if f.is_finite() && f > 0.0 => scale = Scale::new(f),
                        _ => die(&format!("invalid --scale value: {v}")),
                    }
                }
                "--artifacts" => {
                    artifacts = Some(args.next().unwrap_or_else(|| {
                        die("--artifacts needs a directory");
                    }));
                }
                "--no-cache" => artifacts = None,
                "--bench" => {
                    filter = Some(args.next().unwrap_or_else(|| {
                        die("--bench needs a name");
                    }));
                }
                "--jobs" => {
                    let v = args.next().unwrap_or_default();
                    match v.parse::<Jobs>() {
                        Ok(j) => jobs = j,
                        Err(e) => die(&e),
                    }
                }
                "--strategy" => {
                    let v = args.next().unwrap_or_default();
                    match StrategySpec::parse(&v) {
                        Some(spec) => strategy = spec,
                        None => die(&format!(
                            "unknown --strategy '{v}' (known: {})",
                            STRATEGY_NAMES.join(", ")
                        )),
                    }
                }
                "--quiet" => verbose = false,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <f> --artifacts <dir> --no-cache --bench <name> \
                         --jobs <n|auto> --strategy <name> --quiet"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag: {other}")),
            }
        }
        Self {
            scale,
            artifacts,
            filter,
            jobs,
            strategy,
            verbose,
        }
    }

    /// Builds the study described by the flags. A non-default
    /// `--strategy` flows into the pipeline configuration (and therefore
    /// into artifact cache keys, which hash the full configuration).
    pub fn study(&self) -> Study {
        let mut study = Study::new(self.scale);
        if self.strategy != StrategySpec::default() {
            let mut config = StudyConfig::default();
            config.pinpoints.strategy = self.strategy.clone();
            study = study.with_config(config);
        }
        study.verbose = self.verbose;
        if let Some(dir) = &self.artifacts {
            match ArtifactStore::open(dir) {
                Ok(store) => study = study.with_store(store),
                Err(e) => die(&format!("cannot open artifact store {dir}: {e}")),
            }
        }
        study
    }

    /// The benchmarks selected by `--bench` (all when unset).
    pub fn benchmarks(&self) -> Vec<BenchmarkId> {
        BenchmarkId::ALL
            .iter()
            .copied()
            .filter(|id| match &self.filter {
                Some(f) => id.name().contains(f.as_str()),
                None => true,
            })
            .collect()
    }

    /// Computes (or loads) results for the selected benchmarks, fanning
    /// uncached benchmarks out over `--jobs` workers. Results come back
    /// in Table II order and each benchmark's simulation is internally
    /// deterministic, so the output is identical for every job count.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed simulation/store failure (the one a
    /// serial loop would hit first).
    pub fn results(&self) -> Result<Vec<BenchResult>, CoreError> {
        let study = self.study();
        let benchmarks = self.benchmarks();
        sampsim_exec::try_parallel_map(self.jobs, &benchmarks, |_, &id| study.bench_result(id))
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Exits with a readable message on experiment failure.
pub fn unwrap_or_die<T>(r: Result<T, CoreError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => die(&format!("experiment failed: {e}")),
    }
}

/// Geometric-mean helper for suite-level factors.
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Cli {
        Cli::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let cli = parse("");
        assert!(cli.artifacts.as_deref() == Some("artifacts"));
        assert!(cli.filter.is_none());
        assert!(cli.verbose);
        assert_eq!(cli.benchmarks().len(), 29);
    }

    #[test]
    fn flags_parse() {
        let cli = parse("--scale 0.5 --no-cache --bench mcf_r --jobs 3 --quiet");
        assert_eq!(cli.scale.factor(), 0.5);
        assert!(cli.artifacts.is_none());
        assert!(!cli.verbose);
        assert_eq!(cli.jobs, Jobs::new(3).unwrap());
        let benches = cli.benchmarks();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].name(), "505.mcf_r");
    }

    #[test]
    fn strategy_flag_flows_into_the_study_config() {
        let cli = parse("");
        assert_eq!(cli.strategy, StrategySpec::SimPoint);
        assert_eq!(
            cli.study().config().pinpoints.strategy,
            StrategySpec::SimPoint
        );
        let cli = parse("--strategy rss --no-cache");
        assert_eq!(cli.strategy.name(), "rss");
        assert_eq!(cli.study().config().pinpoints.strategy.name(), "rss");
    }

    #[test]
    fn jobs_defaults_to_auto() {
        assert_eq!(parse("").jobs, Jobs::Auto);
        assert_eq!(parse("--jobs auto").jobs, Jobs::Auto);
    }

    #[test]
    fn substring_filter_matches_many() {
        let cli = parse("--bench xz");
        assert_eq!(cli.benchmarks().len(), 2); // 557.xz_r and 657.xz_s
    }

    #[test]
    fn geo_mean_basic() {
        assert!((geo_mean([4.0, 16.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geo_mean(std::iter::empty::<f64>()), 0.0);
        assert!(
            (geo_mean([2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12,
            "zeros skipped"
        );
    }
}

//! `sampsim audit` — the static-vs-dynamic oracle.
//!
//! Derives per-slice block-frequency bounds from each benchmark's
//! schedule *without executing it*, then differentially checks either
//!
//! * a freshly profiled dynamic run (BBVs + slice-start cursors) against
//!   those bounds (`SA120`–`SA125`), or
//! * shipped `.art` audit summaries (and any `.pb` pinballs) in
//!   `--artifacts DIR` against a fresh derivation (`SA047`, `SA124`),
//!   with `--update` rewriting the summaries.
//!
//! A clean execution can never fire the dynamic checks, so any finding
//! is an executor bug or artifact corruption — not a style complaint.

use crate::args::{LintFormat, Options};
use sampsim_analyze::{
    audit_bbvs_static, audit_cursors, diagnose_unreadable_artifact, render_human,
    render_json_lines, AuditSummary, Diagnostic, Location, Report, Rule, StaticBbvBounds,
};
use sampsim_core::pipeline::Pipeline;
use sampsim_spec2017::BenchmarkSpec;
use sampsim_util::stats::with_commas;
use std::path::Path;

/// Runs the audit and returns the process exit code (same convention as
/// `sampsim lint`: 0 clean, 1 findings, 2 usage errors).
pub fn audit(
    bench: Option<&str>,
    format: LintFormat,
    deny_warnings: bool,
    artifacts: Option<&str>,
    update: bool,
    options: &Options,
) -> Result<u8, Box<dyn std::error::Error>> {
    let specs: Vec<BenchmarkSpec> = match bench {
        Some(pattern) => vec![super::find_benchmark(pattern)?],
        None => sampsim_spec2017::suite(),
    };
    let config = super::pipeline_config(options)?;
    if config.slice_size == 0 {
        return Err(Box::new(super::UsageError(
            "audit needs a positive --slice".into(),
        )));
    }

    if update {
        let dir = artifacts.expect("parser enforces --artifacts with --update");
        return write_summaries(Path::new(dir), &specs, config.slice_size, options);
    }

    let report = match artifacts {
        Some(dir) => check_artifact_dir(Path::new(dir), &specs, config.slice_size, options)?,
        None => dynamic_differential(&specs, &config, options)?,
    };

    match format {
        LintFormat::Human => {
            print!("{}", render_human(&report));
            if report.is_empty() {
                println!("no findings");
            }
        }
        LintFormat::Json => print!("{}", render_json_lines(&report)),
    }
    Ok(report.exit_code(deny_warnings))
}

/// Profiles each benchmark and checks the dynamic BBVs and slice-start
/// cursors against the statically derived bounds.
fn dynamic_differential(
    specs: &[BenchmarkSpec],
    config: &sampsim_core::pipeline::PinPointsConfig,
    options: &Options,
) -> Result<Report, Box<dyn std::error::Error>> {
    let mut report = Report::new();
    for spec in specs {
        let program = spec.scaled(options.scale).build();
        let bounds = StaticBbvBounds::derive(&program, config.slice_size);
        eprintln!(
            "auditing {} ({} instructions, {} slices)...",
            spec.name(),
            with_commas(program.total_insts()),
            bounds.num_slices()
        );
        let (bbvs, cursors, _) = Pipeline::new(config.clone()).profile(&program);
        report.merge(audit_bbvs_static(&program, &bounds, &bbvs));
        report.merge(audit_cursors(&program, config.slice_size, &cursors));
    }
    Ok(report)
}

/// Checks `DIR/<bench>.art` for every selected benchmark against a fresh
/// build + derivation, plus any `.pb` pinballs in the directory.
fn check_artifact_dir(
    dir: &Path,
    specs: &[BenchmarkSpec],
    slice_size: u64,
    options: &Options,
) -> Result<Report, Box<dyn std::error::Error>> {
    let mut report = Report::new();
    for spec in specs {
        let path = dir.join(format!("{}.art", spec.name()));
        let shown = path.display().to_string();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                report.push(Diagnostic::new(
                    Rule::ArtifactUnreadable,
                    Location::artifact(&shown),
                    format!("cannot read audit artifact: {e}"),
                ));
                continue;
            }
        };
        let summary = match AuditSummary::from_bytes(&bytes) {
            Ok(s) => s,
            Err(e) => {
                report.push(diagnose_unreadable_artifact(&shown, &e));
                continue;
            }
        };
        let program = spec.scaled(options.scale).build();
        let bounds = StaticBbvBounds::derive(&program, slice_size);
        report.merge(summary.check(&shown, &program, options.scale.factor(), &bounds));
    }
    report.merge(super::lint::audit_artifact_dir(dir, options)?);
    Ok(report)
}

/// `--update`: (re)writes `DIR/<bench>.art` for every selected benchmark.
fn write_summaries(
    dir: &Path,
    specs: &[BenchmarkSpec],
    slice_size: u64,
    options: &Options,
) -> Result<u8, Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    for spec in specs {
        let program = spec.scaled(options.scale).build();
        let bounds = StaticBbvBounds::derive(&program, slice_size);
        let summary = AuditSummary::capture(&program, options.scale.factor(), &bounds);
        let path = dir.join(format!("{}.art", spec.name()));
        std::fs::write(&path, summary.to_bytes())?;
    }
    println!(
        "wrote {} audit summaries to {} (scale {}, slice {})",
        specs.len(),
        dir.display(),
        options.scale.factor(),
        slice_size
    );
    Ok(0)
}

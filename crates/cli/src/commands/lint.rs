//! `sampsim lint` — static checks over workloads, the pipeline
//! configuration and (optionally) saved pinball artifacts.

use crate::args::{LintFormat, Options};
use sampsim_analyze::{
    audit_regions, lint_memory, lint_phase_graph, lint_program, lint_soundness, render_human,
    render_json_lines, Report, Rule, SoundnessInput,
};
use sampsim_cache::configs;
use sampsim_pinball::store;
use sampsim_spec2017::BenchmarkSpec;
use std::path::Path;

/// Runs the lint pass and returns the process exit code (0 clean, 1 when
/// errors — or, with `--deny-warnings`, warnings — were reported).
pub fn lint(
    bench: Option<&str>,
    format: LintFormat,
    deny_warnings: bool,
    artifacts: Option<&str>,
    options: &Options,
) -> Result<u8, Box<dyn std::error::Error>> {
    let specs: Vec<BenchmarkSpec> = match bench {
        Some(pattern) => vec![super::find_benchmark(pattern)?],
        None => sampsim_spec2017::suite(),
    };
    let config = super::pipeline_config(options)?;
    let mut report = Report::new();

    // The configuration itself, once (run-length independent rules).
    report.merge(config.lint(None));

    for spec in &specs {
        let program = spec.scaled(options.scale).build();
        report.merge(lint_program(&program));
        // The deeper framework passes: phase-transition graph structure
        // and memory abstract interpretation against the paper's
        // `allcache` hierarchy (the geometry every profile runs against).
        report.merge(lint_phase_graph(
            program.name(),
            program.phases().len(),
            program.schedule(),
        ));
        report.merge(lint_memory(&program, &configs::allcache_table1()));
        // Run-length proportionality rules (SA022/SA028) depend on the
        // program; keep only those here so config-wide findings are not
        // repeated once per benchmark.
        if config.slice_size > 0 {
            let expected = program.total_insts().div_ceil(config.slice_size);
            let proportional: Report = config
                .lint(Some(expected))
                .into_diagnostics()
                .into_iter()
                .filter(|d| matches!(d.rule, Rule::MaxKExceedsSlices | Rule::ExcessiveWarmup))
                .map(|mut d| {
                    d.message = format!("{} ({})", d.message, spec.name());
                    d
                })
                .collect();
            report.merge(proportional);
            // Statistical-soundness rules (SA140–SA145) are likewise
            // per-benchmark: they depend on the slice count and the
            // whole-run instruction mass.
            let soundness: Report = lint_soundness(&SoundnessInput {
                strategy: &config.strategy,
                simpoint: &config.simpoint,
                slice_size: config.slice_size,
                warmup_slices: config.warmup_slices,
                num_slices: expected,
                total_insts: program.total_insts(),
                materialized_budget_bytes: sampsim_analyze::DEFAULT_MATERIALIZED_BUDGET_BYTES,
            })
            .into_diagnostics()
            .into_iter()
            .map(|mut d| {
                d.message = format!("{} ({})", d.message, spec.name());
                d
            })
            .collect();
            report.merge(soundness);
        }
    }

    if let Some(dir) = artifacts {
        report.merge(audit_artifact_dir(Path::new(dir), options)?);
    }

    match format {
        LintFormat::Human => {
            print!("{}", render_human(&report));
            if report.is_empty() {
                println!("no findings");
            }
        }
        LintFormat::Json => print!("{}", render_json_lines(&report)),
    }
    Ok(report.exit_code(deny_warnings))
}

/// `sampsim lint --explain <SA-id>` — prints the rule's one-paragraph
/// description from the single source of truth (the `sampsim-analyze`
/// rule registry). An unknown id is a usage-class failure (exit 2).
pub fn explain(id: &str) -> Result<(), super::UsageError> {
    let rule = Rule::from_code(id).ok_or_else(|| {
        super::UsageError(format!(
            "unknown lint rule '{id}' (rules run from SA001; see docs/lint-rules.md)"
        ))
    })?;
    println!("{}", rule.explain());
    Ok(())
}

/// Audits every regional-pinball file (`*.pb`, excluding `*.whole.pb`) in
/// `dir` against the benchmark named inside it. Shared with `sampsim
/// audit --artifacts`.
pub(super) fn audit_artifact_dir(
    dir: &Path,
    options: &Options,
) -> Result<Report, Box<dyn std::error::Error>> {
    let mut report = Report::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "pb") && !p.to_string_lossy().ends_with(".whole.pb")
        })
        .collect();
    paths.sort();
    for path in paths {
        let regions = store::load_regions(&path)?;
        let Some(first) = regions.first() else {
            continue;
        };
        let spec = super::find_benchmark(&first.program_name)?;
        let program = spec.scaled(options.scale).build();
        report.merge(audit_regions(
            &regions,
            &program,
            &path.display().to_string(),
        ));
    }
    Ok(report)
}

//! `sampsim serve` / `sampsim request` — the daemon and its client.

use super::{create_report_file, CmdResult};
use crate::args::{Options, RequestOp};
use sampsim_serve::{client, protocol, ServeConfig, Server, DEFAULT_MEM_ENTRIES};
use std::io::Write;
use std::path::PathBuf;

/// `sampsim serve [--addr A] [--cache-dir DIR] [--queue-depth N]`.
///
/// Prints the bound address on stdout (flushed) before serving, so
/// scripts can pass `--addr 127.0.0.1:0` and read back the ephemeral
/// port. `--jobs` sets the worker-pool size.
pub fn serve(
    addr: &str,
    cache_dir: Option<&str>,
    queue_depth: usize,
    options: &Options,
) -> CmdResult {
    let config = ServeConfig {
        addr: addr.to_string(),
        cache_dir: cache_dir.map(PathBuf::from),
        workers: options.jobs,
        queue_depth,
        mem_entries: DEFAULT_MEM_ENTRIES,
    };
    let server = Server::bind(config)?;
    println!("sampsim-serve listening on {}", server.local_addr());
    std::io::stdout().flush()?;
    let stats = server.serve()?;
    eprintln!(
        "served {} requests: {} executions, {} coalesced, {} memory hits, \
         {} disk hits, {} busy rejects",
        stats.requests,
        stats.executions,
        stats.coalesced,
        stats.mem_hits,
        stats.disk_hits,
        stats.busy_rejects
    );
    Ok(())
}

/// `sampsim request [bench] [--addr A] [--ping|--stats|--shutdown] [-o FILE]`.
///
/// Sends one request line, prints the reply line to stdout (and `-o FILE`
/// when given). Error replies go to stderr and fail the command, so a
/// zero exit always means the stdout line is a successful reply — for run
/// requests, byte-identical to `sampsim run` stdout.
pub fn request(
    bench: Option<&str>,
    addr: &str,
    op: RequestOp,
    out: Option<&str>,
    options: &Options,
) -> CmdResult {
    let line = match op {
        RequestOp::Run => {
            let bench = bench.ok_or("request needs a benchmark")?;
            protocol::run_request_line(
                bench,
                options.scale.factor(),
                options.slice,
                options.maxk,
                options.strategy.as_deref(),
                options.kmeans_mode.as_deref(),
            )
        }
        RequestOp::Ping => "{\"op\":\"ping\"}".to_string(),
        RequestOp::Stats => "{\"op\":\"stats\"}".to_string(),
        RequestOp::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
    };
    let mut sink = out.map(create_report_file).transpose()?;
    let reply = client::request_line(addr, &line)?;
    if protocol::is_error_reply(&reply) {
        eprintln!("{reply}");
        return Err(format!("the server at {addr} rejected the request").into());
    }
    println!("{reply}");
    if let Some(file) = &mut sink {
        writeln!(file, "{reply}")?;
    }
    Ok(())
}

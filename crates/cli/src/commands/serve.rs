//! `sampsim serve` / `sampsim request` — the daemon and its client.

use super::{create_report_file, CmdResult};
use crate::args::{Options, RequestOp};
use sampsim_serve::client::{self, RetryPolicy};
use sampsim_serve::service::RunRequest;
use sampsim_serve::{protocol, ServeConfig, Server, DEFAULT_MEM_ENTRIES};
use std::io::Write;
use std::path::PathBuf;

/// `sampsim serve [--addr A] [--cache-dir DIR] [--queue-depth N]`.
///
/// Prints the bound address on stdout (flushed) before serving, so
/// scripts can pass `--addr 127.0.0.1:0` and read back the ephemeral
/// port. `--jobs` sets the worker-pool size.
pub fn serve(
    addr: &str,
    cache_dir: Option<&str>,
    queue_depth: usize,
    options: &Options,
) -> CmdResult {
    let config = ServeConfig {
        addr: addr.to_string(),
        cache_dir: cache_dir.map(PathBuf::from),
        workers: options.jobs,
        queue_depth,
        mem_entries: DEFAULT_MEM_ENTRIES,
    };
    let server = Server::bind(config)?;
    println!("sampsim-serve listening on {}", server.local_addr());
    std::io::stdout().flush()?;
    let stats = server.serve()?;
    eprintln!(
        "served {} requests: {} executions, {} coalesced, {} memory hits, \
         {} disk hits, {} busy rejects",
        stats.requests,
        stats.executions,
        stats.coalesced,
        stats.mem_hits,
        stats.disk_hits,
        stats.busy_rejects
    );
    Ok(())
}

/// `sampsim request [bench] [--addr A] [--ping|--stats|--shutdown|--suite]
/// [--retries N] [-o FILE]`.
///
/// Sends one request line, prints the reply line(s) to stdout (and `-o
/// FILE` when given). Error replies go to stderr and fail the command, so
/// a zero exit always means the stdout line is a successful reply — for
/// run requests, byte-identical to `sampsim run` stdout.
///
/// Transient failures — connection refused/reset, or a `busy` reply —
/// are retried with exponential backoff and deterministic jitter,
/// honoring the daemon's `retry_after_ms` hint; `--retries N` bounds the
/// attempts (`--retries 1` disables retry). `--suite` sends the batch op
/// (benchmarks from the comma-separated operand, or the whole suite) and
/// streams one envelope line per benchmark as the fleet produces them.
pub fn request(
    bench: Option<&str>,
    addr: &str,
    op: RequestOp,
    retries: Option<u32>,
    out: Option<&str>,
    options: &Options,
) -> CmdResult {
    let mut sink = out.map(create_report_file).transpose()?;
    let template = |bench: &str| RunRequest {
        bench: bench.to_string(),
        scale: options.scale.factor(),
        slice: options.slice,
        maxk: options.maxk,
        strategy: options.strategy.clone(),
        kmeans: options.kmeans_mode.clone(),
    };
    if op == RequestOp::Suite {
        // The batch op streams; print every envelope line as it lands.
        let benches: Vec<&str> = bench
            .map(|list| list.split(',').map(str::trim).collect())
            .unwrap_or_default();
        let line = protocol::suite_request_line(&benches, &template(""));
        let summary = client::request_stream(addr, &line, |item| {
            println!("{item}");
            if let Some(file) = &mut sink {
                let _ = writeln!(file, "{item}");
            }
        })?;
        if protocol::is_error_reply(&summary) {
            eprintln!("{summary}");
            return Err(format!("the server at {addr} rejected the request").into());
        }
        println!("{summary}");
        if let Some(file) = &mut sink {
            writeln!(file, "{summary}")?;
        }
        match protocol::suite_summary_errors(&summary) {
            Some(0) => return Ok(()),
            Some(errors) => {
                return Err(format!("{errors} of the suite's benchmarks failed").into());
            }
            None => return Err(format!("malformed suite summary: {summary}").into()),
        }
    }
    let line = match op {
        RequestOp::Run => {
            let bench = bench.ok_or("request needs a benchmark")?;
            protocol::run_request_line(
                bench,
                options.scale.factor(),
                options.slice,
                options.maxk,
                options.strategy.as_deref(),
                options.kmeans_mode.as_deref(),
            )
        }
        RequestOp::Ping => "{\"op\":\"ping\"}".to_string(),
        RequestOp::Stats => "{\"op\":\"stats\"}".to_string(),
        RequestOp::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        RequestOp::Suite => unreachable!("handled above"),
    };
    let policy = RetryPolicy {
        attempts: retries.unwrap_or(client::DEFAULT_RETRY.attempts),
        ..client::DEFAULT_RETRY
    };
    let got = client::request_line_with_retry(addr, &line, &policy)?;
    if got.attempts > 1 {
        eprintln!("(succeeded after {} attempts)", got.attempts);
    }
    if protocol::is_error_reply(&got.reply) {
        eprintln!("{}", got.reply);
        return Err(format!("the server at {addr} rejected the request").into());
    }
    println!("{}", got.reply);
    if let Some(file) = &mut sink {
        writeln!(file, "{}", got.reply)?;
    }
    Ok(())
}

//! `sampsim perf` — run (or validate) the kernel microbenchmark harness.

use crate::args::Options;

use super::CmdResult;
use sampsim_perf::{compare_reports, run_kernels, validate_report, PerfOptions};
use sampsim_util::scale::Scale;
use std::path::PathBuf;

/// `sampsim perf [--quick] [-o FILE] [--artifacts DIR] [--baseline FILE]`,
/// or `sampsim perf --validate FILE` to only schema-check an existing
/// report.
///
/// The report JSON goes to stdout and, with `-o`, to `FILE`; progress
/// lines go to stderr. Every freshly produced report is validated before
/// it is written, so a green exit also certifies the schema. With
/// `--baseline`, the fresh report is additionally gated against the given
/// report's size-normalized rates (>10% slower on any shared metric
/// fails) — the regression check `scripts/check.sh` runs against the
/// committed `BENCH_kernels.json`.
pub fn perf(
    quick: bool,
    out: Option<&str>,
    artifacts: Option<&str>,
    validate: Option<&str>,
    baseline: Option<&str>,
    options: &Options,
) -> CmdResult {
    if let Some(path) = validate {
        let text = std::fs::read_to_string(path)?;
        validate_report(&text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: valid {} report", sampsim_perf::SCHEMA);
        return Ok(());
    }
    let mut perf_options = PerfOptions {
        quick,
        // BBV regeneration executes `scale * full_insts` instructions but
        // keeps the full-scale slice count, so the clustering input is
        // full-size either way (see docs/performance.md).
        scale: Scale::new(0.01),
        jobs: options.jobs,
        ..PerfOptions::default()
    };
    if let Some(dir) = artifacts {
        perf_options.artifacts_dir = PathBuf::from(dir);
    }
    eprintln!(
        "timing kernels ({} mode, artifacts from {})...",
        if quick { "quick" } else { "full" },
        perf_options.artifacts_dir.display()
    );
    let report = run_kernels(&perf_options, |line| eprintln!("  {line}"))?;
    let text = report.to_json();
    validate_report(&text).map_err(|e| format!("generated report failed validation: {e}"))?;
    if let Some(path) = baseline {
        let base_text = std::fs::read_to_string(path)?;
        let compared = compare_reports(&text, &base_text).map_err(|e| format!("{path}: {e}"))?;
        for line in compared {
            eprintln!("  baseline: {line}");
        }
    }
    print!("{text}");
    if let Some(path) = out {
        std::fs::write(path, &text)?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

//! `sampsim compare` — the cross-strategy efficacy study.

use super::{build, create_report_file, pipeline_config, CmdResult, UsageError};
use crate::args::Options;
use sampsim_core::compare::{self, DEFAULT_REPLICATES, SCHEMA};
use sampsim_serve::service::find_benchmark;
use sampsim_simpoint::STRATEGY_NAMES;
use sampsim_util::stats::with_commas;
use std::io::Write;

/// `sampsim compare <bench> [--reps N] [-o FILE]`, or
/// `sampsim compare --validate FILE`.
///
/// Runs every registered sampling strategy against whole-program truth
/// and prints one deterministic `sampsim-compare/v1` JSON line to stdout
/// (and, with `-o`, to `FILE`) — byte-identical for every `--jobs` value.
/// With `--validate`, checks an existing report against the schema and
/// the strategy registry instead of running anything; schema violations
/// and registry drift are usage-class failures (exit 2).
pub fn compare(
    bench: Option<&str>,
    out: Option<&str>,
    reps: Option<usize>,
    validate: Option<&str>,
    options: &Options,
) -> CmdResult {
    if let Some(path) = validate {
        let text = std::fs::read_to_string(path)
            .map_err(|e| UsageError(format!("cannot read {path}: {e}")))?;
        compare::validate_report(text.trim()).map_err(|e| UsageError(format!("{path}: {e}")))?;
        println!("{path}: valid {SCHEMA} report covering the strategy registry");
        return Ok(());
    }
    let bench = bench.expect("the parser requires a benchmark without --validate");
    let spec = find_benchmark(bench)?;
    let program = build(&spec, options);
    let config = pipeline_config(options)?;
    let reps = reps.unwrap_or(DEFAULT_REPLICATES);
    eprintln!(
        "comparing {} strategies on {} ({} instructions, {} replicates each)...",
        STRATEGY_NAMES.len(),
        spec.name(),
        with_commas(program.total_insts()),
        reps
    );
    let mut sink = out.map(create_report_file).transpose()?;
    let report = compare::compare_strategies(&program, &config, reps, options.jobs)?;
    let document = report.to_json();
    println!("{document}");
    if let Some(file) = &mut sink {
        writeln!(file, "{document}")?;
    }
    Ok(())
}

//! Subcommand implementations.

mod audit;
mod compare;
mod fleet;
mod lint;
mod perf;
mod plan;
mod serve;

pub use audit::audit;
pub use compare::compare;
pub use fleet::{fleet, loadgen};
pub use lint::{explain, lint};
pub use perf::perf;
pub use plan::plan;
pub use serve::{request, serve};

use crate::args::Options;
use sampsim_cache::configs;
use sampsim_core::metrics::{aggregate_weighted, whole_as_aggregate, AggregatedMetrics};
use sampsim_core::pipeline::{PinPointsConfig, Pipeline};
use sampsim_core::runs::{self, WarmupMode};
use sampsim_core::stage_cache::NoCache;
use sampsim_pinball::store;
use sampsim_serve::service::{self, find_benchmark, RunRequest};
use sampsim_simpoint::{KmeansMode, SimPointOptions, StrategySpec};
use sampsim_spec2017::BenchmarkSpec;
use sampsim_util::stats::with_commas;
use sampsim_util::table::{fmt_f, Table};
use sampsim_workload::Program;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Boxed error for command results.
pub type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// A usage-class failure (bad operands rather than a failed run): `main`
/// maps it to exit code 2, like argument-parse errors.
#[derive(Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

/// Opens `path` for writing up front, so a bad report path fails fast
/// (exit 2) instead of after minutes of pipeline work.
fn create_report_file(path: &str) -> Result<std::fs::File, UsageError> {
    std::fs::File::create(path).map_err(|e| UsageError(format!("cannot write {path}: {e}")))
}

/// Resolves `--strategy` against the engine registry. A spec that does
/// not parse — unregistered name or malformed parameters — is a
/// usage-class failure (SA130, exit 2), same class as a bad flag value,
/// caught before any pipeline work starts.
fn validated_strategy(options: &Options) -> Result<Option<StrategySpec>, UsageError> {
    let Some(name) = &options.strategy else {
        return Ok(None);
    };
    let report = sampsim_analyze::lint_strategy_name(name);
    if let Some(d) = report.diagnostics().first() {
        return Err(UsageError(format!("[{}] {}", d.rule.code(), d.message)));
    }
    Ok(Some(
        StrategySpec::parse_spec(name).expect("lint-validated strategy specs always parse"),
    ))
}

fn pipeline_config(options: &Options) -> Result<PinPointsConfig, UsageError> {
    let mut config = PinPointsConfig {
        slice_size: options.slice.unwrap_or_else(|| options.scale.apply(10_000)),
        ..PinPointsConfig::default()
    };
    if let Some(maxk) = options.maxk {
        config.simpoint = SimPointOptions {
            max_k: maxk,
            ..config.simpoint
        };
    }
    if let Some(mode) = &options.kmeans_mode {
        let mode = KmeansMode::parse(mode).ok_or_else(|| {
            UsageError(format!(
                "bad --kmeans-mode value: {mode} (one of: lloyd, minibatch)"
            ))
        })?;
        config.simpoint = SimPointOptions {
            kmeans_mode: mode,
            ..config.simpoint
        };
    }
    if let Some(spec) = validated_strategy(options)? {
        config.strategy = spec;
    }
    Ok(config)
}

fn build(spec: &BenchmarkSpec, options: &Options) -> Program {
    spec.scaled(options.scale).build()
}

/// `sampsim list`.
pub fn list() -> CmdResult {
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Suite".into(),
        "Whole insts (full scale)".into(),
        "Table II pts".into(),
        "Table II 90pct".into(),
    ]);
    for spec in sampsim_spec2017::suite() {
        table.row(vec![
            spec.name().to_string(),
            spec.suite().label().to_string(),
            with_commas(spec.workload().total_insts),
            spec.table2_points().to_string(),
            spec.table2_points_90().to_string(),
        ]);
    }
    table.print();
    Ok(())
}

/// `sampsim run <bench> [-o FILE]` — profile, cluster, replay, aggregate;
/// print one deterministic JSON document to stdout (and, with `-o`, to
/// `FILE`).
///
/// The document is rendered by `sampsim_serve::service` — the same code
/// path the daemon replies through, so served responses are byte-identical
/// to this stdout by construction. It contains only deterministic
/// quantities (no wall-clock, no resolved worker count), and every float
/// is printed with Rust's shortest-round-trip formatting, so the bytes
/// are identical for every `--jobs` value. The CLI integration tests rely
/// on this.
pub fn run(bench: &str, out: Option<&str>, options: &Options) -> CmdResult {
    validated_strategy(options)?;
    let request = RunRequest {
        bench: bench.to_string(),
        scale: options.scale.factor(),
        slice: options.slice,
        maxk: options.maxk,
        strategy: options.strategy.clone(),
        kmeans: options.kmeans_mode.clone(),
    };
    let prepared = service::prepare(&request)?;
    let mut sink = out.map(create_report_file).transpose()?;
    eprintln!(
        "running the sampling study for {} ({} instructions, jobs = {})...",
        prepared.name,
        with_commas(prepared.program.total_insts()),
        options.jobs
    );
    let document = service::execute_prepared(&prepared, options.jobs, &NoCache)?;
    println!("{document}");
    if let Some(file) = &mut sink {
        writeln!(file, "{document}")?;
    }
    Ok(())
}

/// `sampsim profile <bench>`.
pub fn profile(bench: &str, options: &Options) -> CmdResult {
    let spec = find_benchmark(bench)?;
    let program = build(&spec, options);
    eprintln!(
        "profiling {} ({} instructions)...",
        spec.name(),
        with_commas(program.total_insts())
    );
    let metrics = runs::run_whole_functional(&program, configs::allcache_table1());
    print_aggregate(
        &format!("{} whole run", spec.name()),
        &whole_as_aggregate(&metrics),
    );
    println!(
        "\n{} instructions in {:.2}s ({:.1} M inst/s simulated)",
        with_commas(metrics.instructions),
        metrics.wall_seconds,
        metrics.instructions as f64 / metrics.wall_seconds / 1e6
    );
    Ok(())
}

/// `sampsim simpoints <bench> [-o DIR]`.
pub fn simpoints(bench: &str, out: Option<&str>, options: &Options) -> CmdResult {
    let spec = find_benchmark(bench)?;
    let program = build(&spec, options);
    let config = pipeline_config(options)?;
    eprintln!(
        "slicing {} at {} instructions/slice, MaxK = {}...",
        spec.name(),
        config.slice_size,
        config.simpoint.max_k
    );
    let result = Pipeline::new(config).run(&program)?;
    let mut table = Table::new(vec![
        "Slice".into(),
        "Cluster".into(),
        "Weight %".into(),
        "Warmup insts".into(),
    ]);
    table.title(format!(
        "{}: {} slices -> {} simulation points (k = {})",
        spec.name(),
        result.num_slices,
        result.regional.len(),
        result.simpoints.k
    ));
    for pb in &result.regional {
        table.row(vec![
            pb.slice_index.to_string(),
            pb.cluster.to_string(),
            fmt_f(pb.weight * 100.0, 2),
            with_commas(pb.warmup_insts()),
        ]);
    }
    table.print();
    if let Some(dir) = out {
        std::fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{}.pb", spec.name()));
        store::save_regions(&path, &result.regional)?;
        let wpath = Path::new(dir).join(format!("{}.whole.pb", spec.name()));
        store::save_whole(&wpath, &result.whole)?;
        println!(
            "\nsaved {} regional pinballs to {} (replay with `sampsim replay {}`)",
            result.regional.len(),
            path.display(),
            path.display()
        );
    }
    Ok(())
}

/// `sampsim replay <FILE>`.
pub fn replay(path: &str, options: &Options) -> CmdResult {
    let regions = store::load_regions(Path::new(path))?;
    let first = regions.first().ok_or("pinball file contains no regions")?;
    let spec = find_benchmark(&first.program_name)?;
    let program = build(&spec, options);
    eprintln!(
        "replaying {} regions of {} with ldstmix + allcache (warm)...",
        regions.len(),
        first.program_name
    );
    let metrics = runs::run_regions_functional_jobs(
        &program,
        &regions,
        configs::allcache_table1(),
        WarmupMode::Checkpointed,
        options.jobs,
    )?;
    let agg = aggregate_weighted(&metrics);
    print_aggregate(&format!("{} regional run", first.program_name), &agg);
    println!(
        "\nreplayed {} instructions across {} regions",
        with_commas(agg.total_instructions),
        regions.len()
    );
    Ok(())
}

/// `sampsim report <bench>`.
pub fn report(bench: &str, options: &Options) -> CmdResult {
    let spec = find_benchmark(bench)?;
    let program = build(&spec, options);
    let config = pipeline_config(options)?;
    eprintln!(
        "running the full study for {} (whole + regions)...",
        spec.name()
    );
    let mut pp = config;
    pp.profile_cache = Some(configs::allcache_table1());
    let pipeline = Pipeline::new(pp.clone());
    let result = pipeline.run_jobs(&program, options.jobs)?;
    let whole = whole_as_aggregate(&result.whole_metrics);
    let runs_spec: [(&str, WarmupMode); 2] = [
        ("Regional (cold)", WarmupMode::None),
        ("Warmup Regional", WarmupMode::Checkpointed),
    ];
    let mut table = Table::new(vec![
        "Run".into(),
        "Insts".into(),
        "NO_MEM%".into(),
        "MEM_R%".into(),
        "MEM_W%".into(),
        "L1D%".into(),
        "L2%".into(),
        "L3%".into(),
    ]);
    table.title(format!(
        "{}: {} points over {} slices",
        spec.name(),
        result.regional.len(),
        result.num_slices
    ));
    let push = |table: &mut Table, label: &str, agg: &AggregatedMetrics| {
        let mr = agg.miss_rates.expect("cache stats");
        table.row(vec![
            label.to_string(),
            with_commas(agg.total_instructions),
            fmt_f(agg.mix_pct[0], 2),
            fmt_f(agg.mix_pct[1], 2),
            fmt_f(agg.mix_pct[2], 2),
            fmt_f(mr.l1d, 2),
            fmt_f(mr.l2, 2),
            fmt_f(mr.l3, 2),
        ]);
    };
    push(&mut table, "Whole", &whole);
    for (label, mode) in runs_spec {
        let metrics = runs::run_regions_functional_jobs(
            &program,
            &result.regional,
            configs::allcache_table1(),
            mode,
            options.jobs,
        )?;
        push(&mut table, label, &aggregate_weighted(&metrics));
    }
    table.print();
    Ok(())
}

/// `sampsim trace <bench> -o FILE [--limit N]`.
pub fn trace(bench: &str, out: &str, limit: Option<u64>, options: &Options) -> CmdResult {
    use sampsim_pin::engine;
    use sampsim_pin::tools::TraceWriter;
    let spec = find_benchmark(bench)?;
    let program = build(&spec, options);
    let cap = limit.unwrap_or(u64::MAX);
    eprintln!(
        "tracing {} ({} instructions max) to {out}...",
        spec.name(),
        if cap == u64::MAX {
            "all".to_string()
        } else {
            with_commas(cap)
        }
    );
    let mut writer = TraceWriter::create(Path::new(out), program.digest(), program.name())?;
    let mut exec = sampsim_workload::Executor::new(&program);
    engine::run_one(&mut exec, cap, &mut writer);
    let written = writer.finish()?;
    println!(
        "wrote {} records ({} bytes) to {out}",
        with_commas(written),
        with_commas(std::fs::metadata(out)?.len())
    );
    Ok(())
}

fn print_aggregate(title: &str, agg: &AggregatedMetrics) {
    let mut table = Table::new(vec!["Metric".into(), "Value".into()]);
    table.title(title.to_string());
    for (i, label) in ["NO_MEM %", "MEM_R %", "MEM_W %", "MEM_RW %"]
        .iter()
        .enumerate()
    {
        table.row(vec![label.to_string(), fmt_f(agg.mix_pct[i], 2)]);
    }
    if let Some(mr) = agg.miss_rates {
        table.row(vec!["L1I miss %".into(), fmt_f(mr.l1i, 3)]);
        table.row(vec!["L1D miss %".into(), fmt_f(mr.l1d, 3)]);
        table.row(vec!["L2 miss %".into(), fmt_f(mr.l2, 3)]);
        table.row(vec!["L3 miss %".into(), fmt_f(mr.l3, 3)]);
    }
    table.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_benchmark_exact_and_substring() {
        assert_eq!(find_benchmark("505.mcf_r").unwrap().name(), "505.mcf_r");
        assert_eq!(find_benchmark("xalanc").unwrap().name(), "623.xalancbmk_s");
        assert!(find_benchmark("nope").is_err());
        // "mcf" matches both mcf_r and mcf_s.
        let err = find_benchmark("mcf").unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
    }

    #[test]
    fn pipeline_config_respects_flags() {
        let opts = Options {
            scale: sampsim_util::scale::Scale::new(0.5),
            slice: Some(1234),
            maxk: Some(7),
            ..Options::default()
        };
        let c = pipeline_config(&opts).unwrap();
        assert_eq!(c.slice_size, 1234);
        assert_eq!(c.simpoint.max_k, 7);
        let defaults = pipeline_config(&Options {
            scale: sampsim_util::scale::Scale::new(0.5),
            slice: None,
            maxk: None,
            ..Options::default()
        })
        .unwrap();
        assert_eq!(defaults.slice_size, 5_000);
    }

    #[test]
    fn pipeline_config_validates_strategy_names() {
        let named = |name: &str| Options {
            strategy: Some(name.to_string()),
            ..Options::default()
        };
        for name in sampsim_simpoint::STRATEGY_NAMES {
            let config = pipeline_config(&named(name)).unwrap();
            assert_eq!(config.strategy.name(), *name);
        }
        let err = pipeline_config(&named("frobnicate")).unwrap_err();
        assert!(err.0.contains("SA130"), "{}", err.0);
        assert!(err.0.contains("frobnicate"), "{}", err.0);
    }

    #[test]
    fn pipeline_config_validates_kmeans_mode() {
        let named = |name: &str| Options {
            kmeans_mode: Some(name.to_string()),
            ..Options::default()
        };
        let config = pipeline_config(&named("minibatch")).unwrap();
        assert_eq!(config.simpoint.kmeans_mode, KmeansMode::MiniBatch);
        let config = pipeline_config(&named("lloyd")).unwrap();
        assert_eq!(config.simpoint.kmeans_mode, KmeansMode::Lloyd);
        let err = pipeline_config(&named("frobnicate")).unwrap_err();
        assert!(err.0.contains("frobnicate"), "{}", err.0);
        assert!(err.0.contains("minibatch"), "{}", err.0);
    }

    #[test]
    fn pipeline_config_accepts_parameterized_strategy_specs() {
        let named = |name: &str| Options {
            strategy: Some(name.to_string()),
            ..Options::default()
        };
        let config = pipeline_config(&named("rss:set_size=8,replicates=4")).unwrap();
        assert_eq!(config.strategy.name(), "rss");
        let err = pipeline_config(&named("rss:set_size=nope")).unwrap_err();
        assert!(err.0.contains("SA130"), "{}", err.0);
        assert!(err.0.contains("set_size"), "{}", err.0);
    }
}

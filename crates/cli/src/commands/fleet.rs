//! `sampsim fleet` / `sampsim loadgen` — the sharded serving topology
//! and its load-generator harness.

use super::{create_report_file, CmdResult};
use crate::args::Options;
use sampsim_fleet::loadgen::{self, LoadgenConfig, Mix};
use sampsim_fleet::{Fleet, FleetConfig};
use std::io::Write;
use std::path::PathBuf;

/// `sampsim fleet [--shards N] [--addr A] [--cache-dir DIR]
/// [--queue-depth N]`.
///
/// Spawns N shard daemons on ephemeral loopback ports plus the router in
/// front of them, prints the router address on stdout (flushed, so
/// scripts can pass `--addr 127.0.0.1:0` and read back the port), and
/// serves until a `shutdown` request arrives. `--jobs` sets each shard's
/// worker-pool size; with `--cache-dir`, shard `i` keeps its disk tier
/// under `DIR/shard-<i>`.
pub fn fleet(
    shards: usize,
    addr: &str,
    cache_dir: Option<&str>,
    queue_depth: usize,
    options: &Options,
) -> CmdResult {
    let config = FleetConfig {
        addr: addr.to_string(),
        shards,
        shard_workers: options.jobs,
        router_workers: options.jobs,
        queue_depth,
        cache_dir: cache_dir.map(PathBuf::from),
        ..FleetConfig::ephemeral(shards)
    };
    let fleet = Fleet::spawn(&config)?;
    println!(
        "sampsim-fleet ({shards} shards) listening on {}",
        fleet.addr()
    );
    std::io::stdout().flush()?;
    let report = fleet.wait()?;
    let totals = report.totals();
    eprintln!(
        "fleet served {} requests ({} routed, {} degraded): {} executions, \
         {} coalesced, {} memory hits, {} disk hits, {} peer warms",
        report.router.requests,
        report.router.routed,
        report.router.degraded,
        totals.executions,
        totals.coalesced,
        totals.mem_hits,
        totals.disk_hits,
        totals.peer_warms,
    );
    Ok(())
}

/// `sampsim loadgen [--fleet N] [--clients C] [--requests R]
/// [--mix cold:warm] [--seed S] [--quick] [-o FILE]`, or
/// `sampsim loadgen --validate FILE` to only schema-check an existing
/// report.
///
/// Spawns an ephemeral in-process fleet, drives the seed-deterministic
/// cold/warm schedule through `--clients` concurrent TCP clients, and
/// prints the `sampsim-serve-bench/v1` report on stdout (and to `-o
/// FILE`). Every fresh report is validated before it is written, so a
/// green exit also certifies the schema — the same check `--validate`
/// runs against the committed `BENCH_serve.json`.
#[allow(clippy::too_many_arguments)]
pub fn loadgen(
    shards: Option<usize>,
    clients: Option<usize>,
    requests: Option<usize>,
    mix: Option<&str>,
    seed: Option<u64>,
    quick: bool,
    out: Option<&str>,
    validate: Option<&str>,
) -> CmdResult {
    if let Some(path) = validate {
        let text = std::fs::read_to_string(path)?;
        loadgen::validate_report(&text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: valid {} report", loadgen::SCHEMA);
        return Ok(());
    }
    let mut config = if quick {
        LoadgenConfig::quick()
    } else {
        LoadgenConfig::full()
    };
    if let Some(n) = shards {
        config.shards = n;
    }
    if let Some(n) = clients {
        config.clients = n;
    }
    if let Some(n) = requests {
        config.requests = n;
    }
    if let Some(s) = mix {
        config.mix = Mix::parse(s)?;
    }
    if let Some(s) = seed {
        config.seed = s;
    }
    eprintln!(
        "loadgen: {} shards, {} clients, {} requests, mix {}:{}, seed {}...",
        config.shards,
        config.clients,
        config.requests,
        config.mix.cold,
        config.mix.warm,
        config.seed
    );
    let text = loadgen::run(&config)?;
    loadgen::validate_report(&text)
        .map_err(|e| format!("generated report failed validation: {e}"))?;
    println!("{text}");
    if let Some(path) = out {
        let mut file = create_report_file(path)?;
        writeln!(file, "{text}")?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

//! `sampsim plan` — the static cost/precision planner.

use super::{build, create_report_file, pipeline_config, CmdResult, UsageError};
use crate::args::Options;
use sampsim_core::plan::{self, SCHEMA};
use sampsim_serve::service::find_benchmark;
use sampsim_util::stats::with_commas;
use std::io::Write;

/// `sampsim plan <bench> [--strategy S] [-o FILE]`, or
/// `sampsim plan --validate FILE`.
///
/// Derives — without executing, profiling or clustering anything — the
/// slice structure, selection shape, predicted simulated-instruction
/// cost, speedup bound and conservative per-metric CI half-width bounds
/// for one strategy on one benchmark, and prints one deterministic
/// `sampsim-plan/v1` JSON line to stdout (and, with `-o`, to `FILE`).
/// The embedded `soundness` array carries the SA140–SA145 findings for
/// the planned configuration. With `--validate`, checks an existing plan
/// against the schema and the strategy registry instead; schema
/// violations and registry drift are usage-class failures (exit 2).
pub fn plan(
    bench: Option<&str>,
    out: Option<&str>,
    validate: Option<&str>,
    options: &Options,
) -> CmdResult {
    if let Some(path) = validate {
        let text = std::fs::read_to_string(path)
            .map_err(|e| UsageError(format!("cannot read {path}: {e}")))?;
        plan::validate_report(text.trim()).map_err(|e| UsageError(format!("{path}: {e}")))?;
        println!("{path}: valid {SCHEMA} report");
        return Ok(());
    }
    let bench = bench.expect("the parser requires a benchmark without --validate");
    let spec = find_benchmark(bench)?;
    let program = build(&spec, options);
    let config = pipeline_config(options)?;
    eprintln!(
        "planning {} on {} ({} instructions) — static analysis only, nothing runs...",
        config.strategy.name(),
        spec.name(),
        with_commas(program.total_insts())
    );
    let mut sink = out.map(create_report_file).transpose()?;
    let report = plan::plan_strategy(&program, &config, None)?;
    let document = report.to_json();
    println!("{document}");
    if let Some(file) = &mut sink {
        writeln!(file, "{document}")?;
    }
    Ok(())
}

//! `sampsim` — the command-line interface to the statistical-sampling
//! laboratory.
//!
//! ```text
//! sampsim list                          benchmarks in the suite
//! sampsim run      <bench>              full sampling study, JSON output
//! sampsim profile  <bench>              whole-run profile (mix, caches)
//! sampsim simpoints <bench> -o <dir>    find simulation points, save pinballs
//! sampsim replay   <dir>/<bench>.pb     replay saved pinballs with tools
//! sampsim report   <bench>              full paper-style report (all runs)
//! sampsim compare  <bench>              cross-strategy efficacy study, JSON
//! sampsim plan     <bench>              static cost/precision plan, JSON
//! sampsim trace    <bench> -o FILE      write an execution trace to disk
//! sampsim lint     [bench]              static checks (workloads + config)
//! sampsim audit    [bench]              static-vs-dynamic differential oracle
//! sampsim serve                         sampling-as-a-service daemon
//! sampsim request  <bench>              query a daemon (reply == run stdout)
//! sampsim fleet                         sharded serving fleet (router+shards)
//! sampsim loadgen                       drive a fleet, emit BENCH_serve.json
//! ```
//!
//! Global flags: `--scale <f>` (workload scale, default `$SAMPSIM_SCALE`
//! or 1.0), `--slice <n>`, `--maxk <n>`, `--jobs <n|auto>` (worker
//! threads; results are bit-identical for every job count).

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let parsed = match args::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    let result = match parsed.command {
        args::Command::List => commands::list(),
        args::Command::Run { bench, out } => commands::run(&bench, out.as_deref(), &parsed.options),
        args::Command::Profile { bench } => commands::profile(&bench, &parsed.options),
        args::Command::SimPoints { bench, out } => {
            commands::simpoints(&bench, out.as_deref(), &parsed.options)
        }
        args::Command::Replay { path } => commands::replay(&path, &parsed.options),
        args::Command::Report { bench } => commands::report(&bench, &parsed.options),
        args::Command::Compare {
            bench,
            out,
            reps,
            validate,
        } => commands::compare(
            bench.as_deref(),
            out.as_deref(),
            reps,
            validate.as_deref(),
            &parsed.options,
        ),
        args::Command::Plan {
            bench,
            out,
            validate,
        } => commands::plan(
            bench.as_deref(),
            out.as_deref(),
            validate.as_deref(),
            &parsed.options,
        ),
        args::Command::Trace { bench, out, limit } => {
            commands::trace(&bench, &out, limit, &parsed.options)
        }
        args::Command::Lint {
            bench,
            format,
            deny_warnings,
            artifacts,
            explain,
        } => {
            // `--explain` answers from the rule registry alone — no
            // benchmarks are built, no lint pass runs.
            if let Some(id) = explain {
                return match commands::explain(&id) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::from(2)
                    }
                };
            }
            // Lint maps findings straight to the exit code: 0 clean,
            // 1 denied findings, 2 usage errors (handled above).
            return match commands::lint(
                bench.as_deref(),
                format,
                deny_warnings,
                artifacts.as_deref(),
                &parsed.options,
            ) {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("error: {e}");
                    if e.is::<commands::UsageError>() {
                        return ExitCode::from(2);
                    }
                    ExitCode::FAILURE
                }
            };
        }
        args::Command::Audit {
            bench,
            format,
            deny_warnings,
            artifacts,
            update,
        } => {
            // Same exit-code convention as lint.
            return match commands::audit(
                bench.as_deref(),
                format,
                deny_warnings,
                artifacts.as_deref(),
                update,
                &parsed.options,
            ) {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("error: {e}");
                    if e.is::<commands::UsageError>() {
                        return ExitCode::from(2);
                    }
                    ExitCode::FAILURE
                }
            };
        }
        args::Command::Perf {
            quick,
            out,
            artifacts,
            validate,
            baseline,
        } => commands::perf(
            quick,
            out.as_deref(),
            artifacts.as_deref(),
            validate.as_deref(),
            baseline.as_deref(),
            &parsed.options,
        ),
        args::Command::Serve {
            addr,
            cache_dir,
            queue_depth,
        } => commands::serve(&addr, cache_dir.as_deref(), queue_depth, &parsed.options),
        args::Command::Request {
            bench,
            addr,
            op,
            retries,
            out,
        } => commands::request(
            bench.as_deref(),
            &addr,
            op,
            retries,
            out.as_deref(),
            &parsed.options,
        ),
        args::Command::Fleet {
            shards,
            addr,
            cache_dir,
            queue_depth,
        } => commands::fleet(
            shards,
            &addr,
            cache_dir.as_deref(),
            queue_depth,
            &parsed.options,
        ),
        args::Command::Loadgen {
            shards,
            clients,
            requests,
            mix,
            seed,
            quick,
            out,
            validate,
        } => commands::loadgen(
            shards,
            clients,
            requests,
            mix.as_deref(),
            seed,
            quick,
            out.as_deref(),
            validate.as_deref(),
        ),
        args::Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Usage-class failures (e.g. an unwritable -o path) exit 2,
            // matching the parse-error convention above.
            if e.is::<commands::UsageError>() {
                return ExitCode::from(2);
            }
            ExitCode::FAILURE
        }
    }
}

//! `sampsim` — the command-line interface to the statistical-sampling
//! laboratory.
//!
//! ```text
//! sampsim list                          benchmarks in the suite
//! sampsim profile  <bench>              whole-run profile (mix, caches)
//! sampsim simpoints <bench> -o <dir>    find simulation points, save pinballs
//! sampsim replay   <dir>/<bench>.pb     replay saved pinballs with tools
//! sampsim report   <bench>              full paper-style report (all runs)
//! sampsim trace    <bench> -o FILE      write an execution trace to disk
//! ```
//!
//! Global flags: `--scale <f>` (workload scale, default `$SAMPSIM_SCALE`
//! or 1.0), `--slice <n>`, `--maxk <n>`.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let parsed = match args::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    let result = match parsed.command {
        args::Command::List => commands::list(),
        args::Command::Profile { bench } => commands::profile(&bench, &parsed.options),
        args::Command::SimPoints { bench, out } => {
            commands::simpoints(&bench, out.as_deref(), &parsed.options)
        }
        args::Command::Replay { path } => commands::replay(&path, &parsed.options),
        args::Command::Report { bench } => commands::report(&bench, &parsed.options),
        args::Command::Trace { bench, out, limit } => {
            commands::trace(&bench, &out, limit, &parsed.options)
        }
        args::Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Hand-rolled argument parsing (no external dependencies).

use sampsim_exec::Jobs;
use sampsim_util::scale::Scale;

/// Usage text shown by `sampsim help` and on parse errors.
pub const USAGE: &str = "\
usage: sampsim <command> [flags]

commands:
  list                         list the synthetic SPEC CPU2017 suite
  run <bench> [-o FILE]        full sampling study, machine-readable JSON
  profile <bench>              run the whole benchmark under ldstmix+allcache
  simpoints <bench> [-o DIR]   find simulation points; save pinballs to DIR
  replay <FILE>                replay saved regional pinballs with tools
  report <bench>               whole vs regional vs reduced vs warmup report
  compare <bench> [-o FILE]    run every registered sampling strategy and
                               report CPI / miss-rate error vs the whole run
  plan <bench> [-o FILE]       statically predict a strategy's cost, speedup
                               and error bound without running anything
  trace <bench> -o FILE        write an execution trace (--limit N insts)
  lint [bench]                 static checks over workloads and the config
  audit [bench]                differentially check dynamic profiles against
                               static per-slice bounds (executor oracle)
  perf [-o FILE]               time the optimized kernels against their
                               naive references; write a BENCH_kernels.json
  serve                        run the sampling-as-a-service daemon
  request [bench] [-o FILE]    query a running daemon (reply == `run` stdout)
  fleet                        run a sharded serving fleet (router + shards)
  loadgen [-o FILE]            drive a fleet with concurrent mixed traffic;
                               write a BENCH_serve.json throughput report
  help                         show this text

flags:
  --scale <f>    workload scale factor (default: $SAMPSIM_SCALE or 1.0)
  --slice <n>    slice size in instructions (default: 10000, scaled)
  --maxk <n>     maximum cluster count (default: 35)
  --jobs <n>     worker threads ('auto' or >= 1; default: auto). Results
                 are bit-identical for every job count.
  --strategy <name>
                 region-selection strategy for run/request/plan (one of:
                 simpoint, stratified2p, rss; default: simpoint), with
                 optional parameters, e.g. rss:set_size=8,replicates=4
  --kmeans-mode <lloyd|minibatch>
                 SimPoint clustering kernel for run/request (default: lloyd,
                 the exact bit-reproducible kernel; minibatch streams with a
                 documented inertia tolerance)

compare flags:
  --reps <n>              replicate selections per strategy for the error
                          bars (>= 1, default: 5)
  --validate <FILE>       only validate an existing report, run nothing

plan flags:
  --validate <FILE>       only validate an existing plan report, run nothing

lint flags:
  --format <human|json>   output format (default: human)
  --deny-warnings         exit non-zero on warnings too
  --artifacts <DIR>       also audit saved .pb pinball files in DIR
  --explain <SA-id>       print one rule's description (e.g. SA140) and exit

audit flags:
  --format / --deny-warnings   as for lint
  --artifacts <DIR>       check shipped .art audit summaries in DIR instead
                          of running the dynamic differential pass
  --update                (re)write the .art summaries in --artifacts DIR

perf flags:
  --quick                 smoke-test sizes (CI); full sizes otherwise
  --artifacts <DIR>       benchmark artifact directory (default: artifacts)
  --validate <FILE>       only validate an existing report, run nothing
  --baseline <FILE>       gate the fresh report against this baseline:
                          fail if any size-normalized rate (ns/access,
                          ns/BBV, ns/slice) regresses by more than 10%.
                          Rates are comparable across --quick and full
                          runs. --jobs sets the clustering worker count
                          (timings only; results stay bit-identical)

serve flags:
  --addr <host:port>      listen address (default: 127.0.0.1:7411; port 0
                          binds an ephemeral port, printed on stdout)
  --cache-dir <DIR>       on-disk response/stage cache (default: memory only)
  --queue-depth <n>       admission queue depth before Busy replies (>= 1,
                          default: 32); --jobs sets the worker-pool size

request flags:
  --addr <host:port>      daemon (or fleet router) address
                          (default: 127.0.0.1:7411)
  --ping | --stats | --shutdown
                          control op instead of a run request
  --suite                 batch op: stream one result line per benchmark
                          (comma-separated operand, or the whole suite)
  --retries <n>           max attempts on transient connect/busy failures
                          (>= 1; 1 disables retry; default: 4). Backoff is
                          exponential with deterministic jitter and honors
                          the daemon's retry_after_ms hint

fleet flags:
  --shards <n>            backend serve instances (>= 1, default: 2);
                          shards always bind ephemeral loopback ports
  --addr <host:port>      router listen address (default: 127.0.0.1:7411;
                          port 0 binds an ephemeral port, printed on stdout)
  --cache-dir <DIR>       disk-tier root; shard i uses DIR/shard-<i>
  --queue-depth <n>       admission queue depth (router and shards)

loadgen flags:
  --fleet <n>             backend shards for the ephemeral fleet
  --clients <n>           concurrent client threads
  --requests <n>          total requests across all clients
  --mix <cold:warm>       traffic mix, e.g. 1:3 (cold = never-seen config,
                          warm = repeated pool)
  --seed <n>              schedule + retry-jitter seed
  --quick                 small CI preset (2 shards, 4 clients, 24 requests);
                          full preset otherwise (3 shards, 8 clients, 96)
  --validate <FILE>       only validate an existing report, run nothing

<bench> is a SPEC name (e.g. 505.mcf_r) or a unique substring (mcf_r).";

/// Global options shared by all commands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Workload scale.
    pub scale: Scale,
    /// Slice size override (`None` = default 10 000, scaled).
    pub slice: Option<u64>,
    /// MaxK override.
    pub maxk: Option<usize>,
    /// Worker threads for parallel replay/profiling.
    pub jobs: Jobs,
    /// Sampling-strategy name (`None` = the pipeline default, SimPoint).
    /// Validated against the strategy registry by the command, not here.
    pub strategy: Option<String>,
    /// K-means kernel for SimPoint clustering (`None` = exact Lloyd;
    /// `"minibatch"` = streaming mini-batch). Validated by the service
    /// layer, not here.
    pub kmeans_mode: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::from_env(),
            slice: None,
            maxk: None,
            jobs: Jobs::Auto,
            strategy: None,
            kmeans_mode: None,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// The subcommand.
    pub command: Command,
    /// Global options.
    pub options: Options,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `sampsim list`
    List,
    /// `sampsim run <bench> [-o FILE]` — the full sampling study with
    /// deterministic JSON output.
    Run {
        /// Benchmark name or substring.
        bench: String,
        /// Also write the report to this path (stdout always gets it).
        out: Option<String>,
    },
    /// `sampsim profile <bench>`
    Profile {
        /// Benchmark name or substring.
        bench: String,
    },
    /// `sampsim simpoints <bench> [-o DIR]`
    SimPoints {
        /// Benchmark name or substring.
        bench: String,
        /// Output directory for pinball files.
        out: Option<String>,
    },
    /// `sampsim replay <FILE>`
    Replay {
        /// Path to a regional-pinball file.
        path: String,
    },
    /// `sampsim report <bench>`
    Report {
        /// Benchmark name or substring.
        bench: String,
    },
    /// `sampsim compare <bench> [--reps N] [-o FILE]` — run every
    /// registered sampling strategy and report its CPI and cache-miss-rate
    /// error against the whole-program run, with confidence intervals.
    Compare {
        /// Benchmark name or substring (`None` only with `--validate`).
        bench: Option<String>,
        /// Also write the JSON report to this path (stdout always gets it).
        out: Option<String>,
        /// Replicates per strategy (`None` = the driver default).
        reps: Option<usize>,
        /// Validate this existing report instead of running the study.
        validate: Option<String>,
    },
    /// `sampsim plan <bench> [-o FILE]` — statically predict a strategy's
    /// simulation cost, speedup bound and conservative CI half-width
    /// bounds without executing anything.
    Plan {
        /// Benchmark name or substring (`None` only with `--validate`).
        bench: Option<String>,
        /// Also write the JSON plan to this path (stdout always gets it).
        out: Option<String>,
        /// Validate this existing plan report instead of planning.
        validate: Option<String>,
    },
    /// `sampsim trace <bench> -o FILE`
    Trace {
        /// Benchmark name or substring.
        bench: String,
        /// Output trace file.
        out: String,
        /// Instruction cap (`None` = whole run).
        limit: Option<u64>,
    },
    /// `sampsim lint [bench]`
    Lint {
        /// Benchmark name or substring (`None` = whole suite).
        bench: Option<String>,
        /// Output format.
        format: LintFormat,
        /// Treat warnings as errors when computing the exit code.
        deny_warnings: bool,
        /// Directory of saved `.pb` pinball files to audit.
        artifacts: Option<String>,
        /// Print this rule's one-paragraph description and exit instead
        /// of linting (e.g. `SA140`).
        explain: Option<String>,
    },
    /// `sampsim audit [bench]` — the static-vs-dynamic oracle.
    Audit {
        /// Benchmark name or substring (`None` = whole suite).
        bench: Option<String>,
        /// Output format.
        format: LintFormat,
        /// Treat warnings as errors when computing the exit code.
        deny_warnings: bool,
        /// Directory of `.art` audit summaries (and `.pb` pinballs) to
        /// check instead of running the dynamic pass.
        artifacts: Option<String>,
        /// Rewrite the `.art` summaries in `--artifacts`.
        update: bool,
    },
    /// `sampsim perf [--quick] [-o FILE] [--baseline FILE]`
    Perf {
        /// Smoke-test sizes instead of measurement sizes.
        quick: bool,
        /// Report path (`None` = stdout only).
        out: Option<String>,
        /// Benchmark artifact directory override.
        artifacts: Option<String>,
        /// Validate this existing report instead of running kernels.
        validate: Option<String>,
        /// Gate the fresh report against this baseline report: fail on
        /// any size-normalized rate regressing by more than 10%.
        baseline: Option<String>,
    },
    /// `sampsim serve [--addr A] [--cache-dir DIR] [--queue-depth N]`
    Serve {
        /// Listen address.
        addr: String,
        /// On-disk cache directory (`None` = memory tier only).
        cache_dir: Option<String>,
        /// Admission-queue depth.
        queue_depth: usize,
    },
    /// `sampsim request [bench] [--addr A] [--ping|--stats|--shutdown|--suite]`
    Request {
        /// Benchmark name or substring (required for run requests; an
        /// optional comma-separated list for `--suite`).
        bench: Option<String>,
        /// Daemon address.
        addr: String,
        /// Which operation to send.
        op: RequestOp,
        /// Attempt bound for transient-failure retry (`None` = default).
        retries: Option<u32>,
        /// Also write the reply to this path (stdout always gets it).
        out: Option<String>,
    },
    /// `sampsim fleet [--shards N] [--addr A] [--cache-dir DIR]
    /// [--queue-depth N]`
    Fleet {
        /// Backend shard count.
        shards: usize,
        /// Router listen address.
        addr: String,
        /// Disk-tier root (`None` = memory tiers only).
        cache_dir: Option<String>,
        /// Admission-queue depth (router and shards).
        queue_depth: usize,
    },
    /// `sampsim loadgen [--fleet N] [--clients C] [--requests R]
    /// [--mix cold:warm] [--seed S] [--quick] [-o FILE] [--validate FILE]`
    Loadgen {
        /// Shard-count override (`None` = preset).
        shards: Option<usize>,
        /// Client-thread override (`None` = preset).
        clients: Option<usize>,
        /// Request-count override (`None` = preset).
        requests: Option<usize>,
        /// Mix override, `cold:warm` (`None` = preset).
        mix: Option<String>,
        /// Seed override (`None` = preset).
        seed: Option<u64>,
        /// Use the small CI preset as the base.
        quick: bool,
        /// Also write the report to this path (stdout always gets it).
        out: Option<String>,
        /// Validate this existing report instead of running traffic.
        validate: Option<String>,
    },
    /// `sampsim help`
    Help,
}

/// The operation `sampsim request` sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestOp {
    /// A full run request (the default).
    #[default]
    Run,
    /// Liveness check.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Graceful shutdown.
    Shutdown,
    /// Batch suite sweep (streams one line per benchmark).
    Suite,
}

/// Output format of `sampsim lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// `rustc`-style human-readable diagnostics.
    #[default]
    Human,
    /// One JSON object per diagnostic (JSON lines).
    Json,
}

/// Parses an argument iterator.
///
/// # Errors
///
/// Returns a human-readable message on unknown commands/flags or missing
/// operands.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Parsed, String> {
    let mut options = Options::default();
    let mut positionals: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut limit: Option<u64> = None;
    let mut format = LintFormat::default();
    let mut deny_warnings = false;
    let mut artifacts: Option<String> = None;
    let mut quick = false;
    let mut update = false;
    let mut reps: Option<usize> = None;
    let mut validate: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut queue_depth: Option<usize> = None;
    let mut request_op: Option<RequestOp> = None;
    let mut retries: Option<u32> = None;
    let mut shards: Option<usize> = None;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut mix: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let v = iter.next().ok_or("--scale needs a value")?;
                let f: f64 = v.parse().map_err(|_| format!("bad --scale value: {v}"))?;
                if !(f.is_finite() && f > 0.0) {
                    return Err(format!("bad --scale value: {v}"));
                }
                options.scale = Scale::new(f);
            }
            "--slice" => {
                let v = iter.next().ok_or("--slice needs a value")?;
                options.slice = Some(v.parse().map_err(|_| format!("bad --slice value: {v}"))?);
            }
            "--maxk" => {
                let v = iter.next().ok_or("--maxk needs a value")?;
                options.maxk = Some(v.parse().map_err(|_| format!("bad --maxk value: {v}"))?);
            }
            "--jobs" => {
                let v = iter.next().ok_or("--jobs needs a value")?;
                options.jobs = v.parse()?;
            }
            "--strategy" => {
                options.strategy = Some(iter.next().ok_or("--strategy needs a name")?);
            }
            "--kmeans-mode" => {
                options.kmeans_mode = Some(iter.next().ok_or("--kmeans-mode needs a name")?);
            }
            "--reps" => {
                let v = iter.next().ok_or("--reps needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --reps value: {v}"))?;
                if n == 0 {
                    return Err("--reps must be >= 1".into());
                }
                reps = Some(n);
            }
            "-o" | "--out" => {
                out = Some(iter.next().ok_or("-o needs a path")?);
            }
            "--limit" => {
                let v = iter.next().ok_or("--limit needs a value")?;
                limit = Some(v.parse().map_err(|_| format!("bad --limit value: {v}"))?);
            }
            "--format" => {
                let v = iter.next().ok_or("--format needs a value")?;
                format = match v.as_str() {
                    "human" => LintFormat::Human,
                    "json" => LintFormat::Json,
                    other => return Err(format!("bad --format value: {other}")),
                };
            }
            "--deny-warnings" => deny_warnings = true,
            "--quick" => quick = true,
            "--update" => update = true,
            "--addr" => {
                addr = Some(iter.next().ok_or("--addr needs a host:port value")?);
            }
            "--cache-dir" => {
                cache_dir = Some(iter.next().ok_or("--cache-dir needs a path")?);
            }
            "--queue-depth" => {
                let v = iter.next().ok_or("--queue-depth needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --queue-depth value: {v}"))?;
                if n == 0 {
                    return Err("--queue-depth must be >= 1".into());
                }
                queue_depth = Some(n);
            }
            "--ping" | "--stats" | "--shutdown" | "--suite" => {
                let op = match arg.as_str() {
                    "--ping" => RequestOp::Ping,
                    "--stats" => RequestOp::Stats,
                    "--suite" => RequestOp::Suite,
                    _ => RequestOp::Shutdown,
                };
                if request_op.is_some_and(|prev| prev != op) {
                    return Err(
                        "--ping, --stats, --shutdown and --suite are mutually exclusive".into(),
                    );
                }
                request_op = Some(op);
            }
            "--retries" => {
                let v = iter.next().ok_or("--retries needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --retries value: {v}"))?;
                if n == 0 {
                    return Err("--retries must be >= 1".into());
                }
                retries = Some(n);
            }
            "--shards" | "--fleet" => {
                let v = iter.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                if n == 0 {
                    return Err("--shards must be >= 1".into());
                }
                shards = Some(n);
            }
            "--clients" => {
                let v = iter.next().ok_or("--clients needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --clients value: {v}"))?;
                if n == 0 {
                    return Err("--clients must be >= 1".into());
                }
                clients = Some(n);
            }
            "--requests" => {
                let v = iter.next().ok_or("--requests needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --requests value: {v}"))?;
                if n == 0 {
                    return Err("--requests must be >= 1".into());
                }
                requests = Some(n);
            }
            "--mix" => {
                mix = Some(iter.next().ok_or("--mix needs a cold:warm value")?);
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|_| format!("bad --seed value: {v}"))?);
            }
            "--validate" => {
                validate = Some(iter.next().ok_or("--validate needs a path")?);
            }
            "--baseline" => {
                baseline = Some(iter.next().ok_or("--baseline needs a path")?);
            }
            "--explain" => {
                explain = Some(
                    iter.next()
                        .ok_or("--explain needs a rule id (e.g. SA140)")?,
                );
            }
            "--artifacts" => {
                artifacts = Some(iter.next().ok_or("--artifacts needs a path")?);
            }
            "--help" | "-h" => positionals.insert(0, "help".into()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            _ => positionals.push(arg),
        }
    }
    let mut positionals = positionals.into_iter();
    let command = match positionals.next().as_deref() {
        None | Some("help") => Command::Help,
        Some("list") => Command::List,
        Some("run") => Command::Run {
            bench: positionals.next().ok_or("run needs a benchmark")?,
            out,
        },
        Some("profile") => Command::Profile {
            bench: positionals.next().ok_or("profile needs a benchmark")?,
        },
        Some("simpoints") => Command::SimPoints {
            bench: positionals.next().ok_or("simpoints needs a benchmark")?,
            out,
        },
        Some("replay") => Command::Replay {
            path: positionals.next().ok_or("replay needs a pinball file")?,
        },
        Some("report") => Command::Report {
            bench: positionals.next().ok_or("report needs a benchmark")?,
        },
        Some("compare") => {
            let bench = positionals.next();
            if validate.is_none() && bench.is_none() {
                return Err("compare needs a benchmark (or --validate <FILE>)".into());
            }
            if validate.is_some() && bench.is_some() {
                return Err("compare --validate takes no benchmark".into());
            }
            Command::Compare {
                bench,
                out,
                reps,
                validate,
            }
        }
        Some("plan") => {
            let bench = positionals.next();
            if validate.is_none() && bench.is_none() {
                return Err("plan needs a benchmark (or --validate <FILE>)".into());
            }
            if validate.is_some() && bench.is_some() {
                return Err("plan --validate takes no benchmark".into());
            }
            Command::Plan {
                bench,
                out,
                validate,
            }
        }
        Some("trace") => Command::Trace {
            bench: positionals.next().ok_or("trace needs a benchmark")?,
            out: out.take().ok_or("trace needs -o FILE")?,
            limit,
        },
        Some("lint") => Command::Lint {
            bench: positionals.next(),
            format,
            deny_warnings,
            artifacts,
            explain,
        },
        Some("audit") => {
            if update && artifacts.is_none() {
                return Err("audit --update needs --artifacts <DIR>".into());
            }
            Command::Audit {
                bench: positionals.next(),
                format,
                deny_warnings,
                artifacts,
                update,
            }
        }
        Some("perf") => Command::Perf {
            quick,
            out,
            artifacts,
            validate,
            baseline,
        },
        Some("serve") => Command::Serve {
            addr: addr.unwrap_or_else(|| sampsim_serve::DEFAULT_ADDR.to_string()),
            cache_dir,
            queue_depth: queue_depth.unwrap_or(sampsim_serve::DEFAULT_QUEUE_DEPTH),
        },
        Some("request") => {
            let bench = positionals.next();
            let op = request_op.unwrap_or_default();
            if op == RequestOp::Run && bench.is_none() {
                return Err(
                    "request needs a benchmark (or one of --ping/--stats/--shutdown/--suite)"
                        .into(),
                );
            }
            // `--suite` takes an optional comma-separated benchmark list;
            // the pure control ops take none.
            if matches!(op, RequestOp::Ping | RequestOp::Stats | RequestOp::Shutdown)
                && bench.is_some()
            {
                return Err(
                    "control requests (--ping/--stats/--shutdown) take no benchmark".into(),
                );
            }
            Command::Request {
                bench,
                addr: addr.unwrap_or_else(|| sampsim_serve::DEFAULT_ADDR.to_string()),
                op,
                retries,
                out,
            }
        }
        Some("fleet") => Command::Fleet {
            shards: shards.unwrap_or(2),
            addr: addr.unwrap_or_else(|| sampsim_serve::DEFAULT_ADDR.to_string()),
            cache_dir,
            queue_depth: queue_depth.unwrap_or(sampsim_serve::DEFAULT_QUEUE_DEPTH),
        },
        Some("loadgen") => {
            if validate.is_some()
                && (shards.is_some()
                    || clients.is_some()
                    || requests.is_some()
                    || mix.is_some()
                    || seed.is_some())
            {
                return Err("loadgen --validate takes no traffic flags".into());
            }
            Command::Loadgen {
                shards,
                clients,
                requests,
                mix,
                seed,
                quick,
                out,
                validate,
            }
        }
        Some(other) => return Err(format!("unknown command: {other}")),
    };
    if let Some(extra) = positionals.next() {
        return Err(format!("unexpected argument: {extra}"));
    }
    Ok(Parsed { command, options })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Parsed, String> {
        parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_commands() {
        assert_eq!(parse_str("list").unwrap().command, Command::List);
        assert_eq!(
            parse_str("profile mcf_r").unwrap().command,
            Command::Profile {
                bench: "mcf_r".into()
            }
        );
        assert_eq!(
            parse_str("simpoints mcf_r -o out").unwrap().command,
            Command::SimPoints {
                bench: "mcf_r".into(),
                out: Some("out".into())
            }
        );
        assert_eq!(
            parse_str("replay out/x.pb").unwrap().command,
            Command::Replay {
                path: "out/x.pb".into()
            }
        );
        assert_eq!(parse_str("").unwrap().command, Command::Help);
        assert_eq!(parse_str("-h").unwrap().command, Command::Help);
    }

    #[test]
    fn parses_flags() {
        let p = parse_str("report gcc_r --scale 0.5 --slice 2000 --maxk 10 --jobs 4").unwrap();
        assert_eq!(p.options.scale.factor(), 0.5);
        assert_eq!(p.options.slice, Some(2000));
        assert_eq!(p.options.maxk, Some(10));
        assert_eq!(p.options.jobs, Jobs::new(4).unwrap());
    }

    #[test]
    fn parses_run_and_jobs() {
        let p = parse_str("run mcf_r --jobs 2").unwrap();
        assert_eq!(
            p.command,
            Command::Run {
                bench: "mcf_r".into(),
                out: None,
            }
        );
        assert_eq!(
            parse_str("run mcf_r -o report.json").unwrap().command,
            Command::Run {
                bench: "mcf_r".into(),
                out: Some("report.json".into()),
            }
        );
        assert_eq!(p.options.jobs, Jobs::new(2).unwrap());
        assert_eq!(parse_str("run mcf_r").unwrap().options.jobs, Jobs::Auto);
        assert_eq!(
            parse_str("run mcf_r --jobs auto").unwrap().options.jobs,
            Jobs::Auto
        );
        assert!(parse_str("run").is_err(), "missing benchmark");
        assert!(parse_str("run mcf_r --jobs 0").is_err(), "zero jobs");
        assert!(parse_str("run mcf_r --jobs nope").is_err());
        assert!(parse_str("run mcf_r --jobs").is_err(), "missing value");
    }

    #[test]
    fn parses_trace() {
        let p = parse_str("trace mcf_r -o t.trace --limit 5000").unwrap();
        assert_eq!(
            p.command,
            Command::Trace {
                bench: "mcf_r".into(),
                out: "t.trace".into(),
                limit: Some(5000),
            }
        );
        assert!(parse_str("trace mcf_r").is_err(), "missing -o");
    }

    #[test]
    fn parses_compare_and_strategy() {
        assert_eq!(
            parse_str("compare mcf_r").unwrap().command,
            Command::Compare {
                bench: Some("mcf_r".into()),
                out: None,
                reps: None,
                validate: None,
            }
        );
        assert_eq!(
            parse_str("compare mcf_r --reps 3 -o cmp.json")
                .unwrap()
                .command,
            Command::Compare {
                bench: Some("mcf_r".into()),
                out: Some("cmp.json".into()),
                reps: Some(3),
                validate: None,
            }
        );
        assert_eq!(
            parse_str("compare --validate cmp.json").unwrap().command,
            Command::Compare {
                bench: None,
                out: None,
                reps: None,
                validate: Some("cmp.json".into()),
            }
        );
        assert!(parse_str("compare").is_err(), "needs bench or --validate");
        assert!(parse_str("compare mcf_r --validate cmp.json").is_err());
        assert!(parse_str("compare mcf_r --reps 0").is_err());
        assert!(parse_str("compare mcf_r --reps nope").is_err());

        let p = parse_str("run mcf_r --strategy rss").unwrap();
        assert_eq!(p.options.strategy.as_deref(), Some("rss"));
        assert_eq!(parse_str("run mcf_r").unwrap().options.strategy, None);
        assert!(parse_str("run mcf_r --strategy").is_err());

        let p = parse_str("run mcf_r --kmeans-mode minibatch").unwrap();
        assert_eq!(p.options.kmeans_mode.as_deref(), Some("minibatch"));
        assert_eq!(parse_str("run mcf_r").unwrap().options.kmeans_mode, None);
        assert!(parse_str("run mcf_r --kmeans-mode").is_err());
    }

    #[test]
    fn parses_lint() {
        assert_eq!(
            parse_str("lint").unwrap().command,
            Command::Lint {
                bench: None,
                format: LintFormat::Human,
                deny_warnings: false,
                artifacts: None,
                explain: None,
            }
        );
        assert_eq!(
            parse_str("lint mcf_r --format json --deny-warnings --artifacts out")
                .unwrap()
                .command,
            Command::Lint {
                bench: Some("mcf_r".into()),
                format: LintFormat::Json,
                deny_warnings: true,
                artifacts: Some("out".into()),
                explain: None,
            }
        );
        assert_eq!(
            parse_str("lint --explain SA140").unwrap().command,
            Command::Lint {
                bench: None,
                format: LintFormat::Human,
                deny_warnings: false,
                artifacts: None,
                explain: Some("SA140".into()),
            }
        );
        assert!(parse_str("lint --format yaml").is_err());
        assert!(parse_str("lint --artifacts").is_err());
        assert!(parse_str("lint --explain").is_err());
    }

    #[test]
    fn parses_plan() {
        assert_eq!(
            parse_str("plan mcf_r").unwrap().command,
            Command::Plan {
                bench: Some("mcf_r".into()),
                out: None,
                validate: None,
            }
        );
        assert_eq!(
            parse_str("plan mcf_r --strategy rss -o plan.json")
                .unwrap()
                .command,
            Command::Plan {
                bench: Some("mcf_r".into()),
                out: Some("plan.json".into()),
                validate: None,
            }
        );
        assert_eq!(
            parse_str("plan --validate plan.json").unwrap().command,
            Command::Plan {
                bench: None,
                out: None,
                validate: Some("plan.json".into()),
            }
        );
        assert!(parse_str("plan").is_err(), "needs bench or --validate");
        assert!(parse_str("plan mcf_r --validate plan.json").is_err());
    }

    #[test]
    fn parses_audit() {
        assert_eq!(
            parse_str("audit").unwrap().command,
            Command::Audit {
                bench: None,
                format: LintFormat::Human,
                deny_warnings: false,
                artifacts: None,
                update: false,
            }
        );
        assert_eq!(
            parse_str("audit mcf_r --format json --deny-warnings --artifacts arts --update")
                .unwrap()
                .command,
            Command::Audit {
                bench: Some("mcf_r".into()),
                format: LintFormat::Json,
                deny_warnings: true,
                artifacts: Some("arts".into()),
                update: true,
            }
        );
        // --update without a directory to write into is a usage error.
        assert!(parse_str("audit --update").is_err());
    }

    #[test]
    fn parses_perf() {
        assert_eq!(
            parse_str("perf").unwrap().command,
            Command::Perf {
                quick: false,
                out: None,
                artifacts: None,
                validate: None,
                baseline: None,
            }
        );
        assert_eq!(
            parse_str("perf --quick -o BENCH_kernels.json --artifacts arts --baseline old.json")
                .unwrap()
                .command,
            Command::Perf {
                quick: true,
                out: Some("BENCH_kernels.json".into()),
                artifacts: Some("arts".into()),
                validate: None,
                baseline: Some("old.json".into()),
            }
        );
        assert_eq!(
            parse_str("perf --validate BENCH_kernels.json")
                .unwrap()
                .command,
            Command::Perf {
                quick: false,
                out: None,
                artifacts: None,
                validate: Some("BENCH_kernels.json".into()),
                baseline: None,
            }
        );
        assert!(parse_str("perf --validate").is_err());
        assert!(parse_str("perf --baseline").is_err());
        assert!(parse_str("perf extra").is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse_str("serve").unwrap().command,
            Command::Serve {
                addr: sampsim_serve::DEFAULT_ADDR.into(),
                cache_dir: None,
                queue_depth: sampsim_serve::DEFAULT_QUEUE_DEPTH,
            }
        );
        assert_eq!(
            parse_str("serve --addr 127.0.0.1:0 --cache-dir /tmp/c --queue-depth 4 --jobs 2")
                .unwrap()
                .command,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                cache_dir: Some("/tmp/c".into()),
                queue_depth: 4,
            }
        );
        assert!(parse_str("serve --queue-depth 0").is_err());
        assert!(parse_str("serve --queue-depth nope").is_err());
        assert!(parse_str("serve --addr").is_err());
    }

    #[test]
    fn parses_request() {
        assert_eq!(
            parse_str("request mcf_r").unwrap().command,
            Command::Request {
                bench: Some("mcf_r".into()),
                addr: sampsim_serve::DEFAULT_ADDR.into(),
                op: RequestOp::Run,
                retries: None,
                out: None,
            }
        );
        assert_eq!(
            parse_str("request --addr 127.0.0.1:9 --shutdown")
                .unwrap()
                .command,
            Command::Request {
                bench: None,
                addr: "127.0.0.1:9".into(),
                op: RequestOp::Shutdown,
                retries: None,
                out: None,
            }
        );
        assert_eq!(
            parse_str("request --ping").unwrap().command,
            Command::Request {
                bench: None,
                addr: sampsim_serve::DEFAULT_ADDR.into(),
                op: RequestOp::Ping,
                retries: None,
                out: None,
            }
        );
        // --suite takes an optional comma-separated benchmark list.
        assert_eq!(
            parse_str("request --suite").unwrap().command,
            Command::Request {
                bench: None,
                addr: sampsim_serve::DEFAULT_ADDR.into(),
                op: RequestOp::Suite,
                retries: None,
                out: None,
            }
        );
        assert_eq!(
            parse_str("request mcf_r,omnetpp_s --suite --retries 2")
                .unwrap()
                .command,
            Command::Request {
                bench: Some("mcf_r,omnetpp_s".into()),
                addr: sampsim_serve::DEFAULT_ADDR.into(),
                op: RequestOp::Suite,
                retries: Some(2),
                out: None,
            }
        );
        assert!(parse_str("request").is_err(), "run op needs a benchmark");
        assert!(parse_str("request mcf_r --stats").is_err());
        assert!(parse_str("request --ping --shutdown").is_err());
        assert!(parse_str("request mcf_r --retries 0").is_err());
        assert!(parse_str("request mcf_r --retries nope").is_err());
    }

    #[test]
    fn parses_fleet() {
        assert_eq!(
            parse_str("fleet").unwrap().command,
            Command::Fleet {
                shards: 2,
                addr: sampsim_serve::DEFAULT_ADDR.into(),
                cache_dir: None,
                queue_depth: sampsim_serve::DEFAULT_QUEUE_DEPTH,
            }
        );
        assert_eq!(
            parse_str("fleet --shards 3 --addr 127.0.0.1:0 --cache-dir /tmp/f --queue-depth 8")
                .unwrap()
                .command,
            Command::Fleet {
                shards: 3,
                addr: "127.0.0.1:0".into(),
                cache_dir: Some("/tmp/f".into()),
                queue_depth: 8,
            }
        );
        assert!(parse_str("fleet --shards 0").is_err());
        assert!(parse_str("fleet --shards nope").is_err());
    }

    #[test]
    fn parses_loadgen() {
        assert_eq!(
            parse_str("loadgen --quick").unwrap().command,
            Command::Loadgen {
                shards: None,
                clients: None,
                requests: None,
                mix: None,
                seed: None,
                quick: true,
                out: None,
                validate: None,
            }
        );
        assert_eq!(
            parse_str("loadgen --fleet 3 --clients 8 --requests 96 --mix 1:3 --seed 7 -o r.json")
                .unwrap()
                .command,
            Command::Loadgen {
                shards: Some(3),
                clients: Some(8),
                requests: Some(96),
                mix: Some("1:3".into()),
                seed: Some(7),
                quick: false,
                out: Some("r.json".into()),
                validate: None,
            }
        );
        assert_eq!(
            parse_str("loadgen --validate BENCH_serve.json")
                .unwrap()
                .command,
            Command::Loadgen {
                shards: None,
                clients: None,
                requests: None,
                mix: None,
                seed: None,
                quick: false,
                out: None,
                validate: Some("BENCH_serve.json".into()),
            }
        );
        assert!(parse_str("loadgen --clients 0").is_err());
        assert!(parse_str("loadgen --requests 0").is_err());
        assert!(parse_str("loadgen --seed nope").is_err());
        assert!(parse_str("loadgen --validate r.json --clients 2").is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_str("frobnicate").is_err());
        assert!(parse_str("profile").is_err());
        assert!(parse_str("list --wat").is_err());
        assert!(parse_str("list extra").is_err());
        assert!(parse_str("profile x --scale nope").is_err());
        assert!(parse_str("profile x --scale -1").is_err());
    }
}

//! Integration tests driving the `sampsim` binary end to end.

use std::process::Command;

fn sampsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sampsim"))
}

#[test]
fn help_shows_usage() {
    let out = sampsim().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage: sampsim"));
    assert!(text.contains("simpoints"));
}

#[test]
fn list_shows_all_benchmarks() {
    let out = sampsim().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("505.mcf_r"));
    assert!(text.contains("549.fotonik3d_r"));
    // 29 benchmarks + header + separator.
    assert_eq!(text.lines().count(), 31, "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = sampsim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage:"));
}

#[test]
fn ambiguous_benchmark_is_rejected() {
    let out = sampsim().args(["profile", "mcf", "--scale", "0.01"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("ambiguous"), "{err}");
}

#[test]
fn simpoints_save_and_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sampsim-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = sampsim()
        .args([
            "simpoints",
            "omnetpp_s",
            "--scale",
            "0.02",
            "--maxk",
            "8",
            "-o",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let pb = dir.join("620.omnetpp_s.pb");
    assert!(pb.exists());
    assert!(dir.join("620.omnetpp_s.whole.pb").exists());
    let out = sampsim()
        .arg("replay")
        .arg(&pb)
        .args(["--scale", "0.02"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("L3 miss %"), "{text}");
    assert!(text.contains("replayed"));
}

#[test]
fn replay_rejects_wrong_scale() {
    // Pinballs saved at one scale must not attach to a different-scale
    // program (digest mismatch).
    let dir = std::env::temp_dir().join(format!("sampsim-cli-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = sampsim()
        .args(["simpoints", "omnetpp_s", "--scale", "0.02", "--maxk", "8", "-o"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = sampsim()
        .arg("replay")
        .arg(dir.join("620.omnetpp_s.pb"))
        .args(["--scale", "0.03"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("captured from program"), "{err}");
}

//! Integration tests driving the `sampsim` binary end to end.

use std::process::Command;

fn sampsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sampsim"))
}

#[test]
fn help_shows_usage() {
    let out = sampsim().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage: sampsim"));
    assert!(text.contains("simpoints"));
}

#[test]
fn list_shows_all_benchmarks() {
    let out = sampsim().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("505.mcf_r"));
    assert!(text.contains("549.fotonik3d_r"));
    // 29 benchmarks + header + separator.
    assert_eq!(text.lines().count(), 31, "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = sampsim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage:"));
}

#[test]
fn ambiguous_benchmark_is_rejected() {
    let out = sampsim()
        .args(["profile", "mcf", "--scale", "0.01"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("ambiguous"), "{err}");
}

#[test]
fn simpoints_save_and_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sampsim-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = sampsim()
        .args([
            "simpoints",
            "omnetpp_s",
            "--scale",
            "0.02",
            "--maxk",
            "8",
            "-o",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let pb = dir.join("620.omnetpp_s.pb");
    assert!(pb.exists());
    assert!(dir.join("620.omnetpp_s.whole.pb").exists());
    let out = sampsim()
        .arg("replay")
        .arg(&pb)
        .args(["--scale", "0.02"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("L3 miss %"), "{text}");
    assert!(text.contains("replayed"));
}

#[test]
fn lint_suite_is_clean() {
    let out = sampsim()
        .args(["lint", "--scale", "0.01", "--deny-warnings"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // The deeper passes (phase graph, memory abstract interpretation)
    // legitimately note one-shot phases and dead streams on the shipped
    // suite; errors and warnings must never fire.
    assert!(!text.contains("error["), "{text}");
    assert!(!text.contains("warning["), "{text}");
}

#[test]
fn lint_reports_config_errors_with_exit_code_one() {
    let out = sampsim()
        .args(["lint", "mcf_r", "--scale", "0.01", "--maxk", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[SA021]"), "{text}");
    assert!(text.contains("help:"), "{text}");
}

#[test]
fn lint_json_format_emits_one_object_per_line() {
    let out = sampsim()
        .args([
            "lint", "mcf_r", "--scale", "0.01", "--maxk", "0", "--format", "json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    for line in text.lines() {
        assert!(line.starts_with("{\"code\":\"SA"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    assert!(text.contains("\"code\":\"SA021\""), "{text}");
}

#[test]
fn lint_deny_warnings_turns_warnings_into_failure() {
    // A huge slice size produces a 1-slice run: SA022 + SA028 warnings.
    let base = ["lint", "mcf_r", "--scale", "0.01", "--slice", "100000000"];
    let out = sampsim().args(base).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "warnings alone stay exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("warning[SA022]"), "{text}");
    let out = sampsim()
        .args(base)
        .arg("--deny-warnings")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_audits_saved_artifacts() {
    let dir = std::env::temp_dir().join(format!("sampsim-cli-lint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = sampsim()
        .args([
            "simpoints",
            "omnetpp_s",
            "--scale",
            "0.02",
            "--maxk",
            "8",
            "-o",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    // Audited at the matching scale: clean.
    let out = sampsim()
        .args(["lint", "omnetpp_s", "--scale", "0.02", "--artifacts"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    // Audited at a different scale: the digests no longer match (SA047).
    let out = sampsim()
        .args(["lint", "omnetpp_s", "--scale", "0.03", "--artifacts"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SA047"), "{text}");
}

#[test]
fn audit_dynamic_pass_is_clean() {
    // The executor oracle: a real profile can never violate the bounds
    // the schedule proves statically.
    let out = sampsim()
        .args(["audit", "omnetpp_s", "--scale", "0.002"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("no findings"), "{text}");
}

#[test]
fn audit_artifacts_update_check_and_mutation() {
    let dir = std::env::temp_dir().join(format!("sampsim-cli-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let audit = |extra: &[&str]| {
        let mut cmd = sampsim();
        cmd.args(["audit", "mcf_r", "--scale", "0.01", "--artifacts"])
            .arg(&dir)
            .args(extra);
        cmd.output().unwrap()
    };

    // --update writes the summary; a re-check at the same scale is clean.
    assert!(audit(&["--update"]).status.success());
    let path = dir.join("505.mcf_r.art");
    assert!(path.exists());
    let out = audit(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Mutation: flip one payload byte. The summary still decodes, but the
    // stored digests no longer match the fresh derivation (SA047).
    let pristine = std::fs::read(&path).unwrap();
    let mut corrupt = pristine.clone();
    *corrupt.last_mut().unwrap() ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    let out = audit(&[]);
    assert_eq!(out.status.code(), Some(1), "corruption must fail the audit");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SA047"), "{text}");

    // Mutation: corrupt the header. The artifact is unreadable (SA124).
    let mut headerless = pristine.clone();
    headerless[0] ^= 0xFF;
    std::fs::write(&path, &headerless).unwrap();
    let out = audit(&[]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SA124"), "{text}");

    // A missing summary is also a finding, not a silent pass.
    std::fs::remove_file(&path).unwrap();
    let out = audit(&[]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SA124"), "{text}");

    // Restored bytes audit clean again.
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(audit(&[]).status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_detects_scale_drift_against_shipped_artifacts() {
    // A summary captured at one scale must not validate another build.
    let dir = std::env::temp_dir().join(format!("sampsim-cli-audit-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = sampsim()
        .args([
            "audit",
            "mcf_r",
            "--scale",
            "0.01",
            "--update",
            "--artifacts",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = sampsim()
        .args(["audit", "mcf_r", "--scale", "0.02", "--artifacts"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SA047"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_rejects_wrong_scale() {
    // Pinballs saved at one scale must not attach to a different-scale
    // program (digest mismatch).
    let dir = std::env::temp_dir().join(format!("sampsim-cli-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = sampsim()
        .args([
            "simpoints",
            "omnetpp_s",
            "--scale",
            "0.02",
            "--maxk",
            "8",
            "-o",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = sampsim()
        .arg("replay")
        .arg(dir.join("620.omnetpp_s.pb"))
        .args(["--scale", "0.03"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("captured from program"), "{err}");
}

#[test]
fn jobs_zero_is_a_usage_error() {
    let out = sampsim()
        .args(["run", "mcf_r", "--scale", "0.001", "--jobs", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--jobs must be at least 1"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn jobs_garbage_is_a_usage_error() {
    for bad in ["-3", "two", ""] {
        let out = sampsim()
            .args(["run", "mcf_r", "--jobs", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "--jobs {bad:?} must exit 2");
    }
}

#[test]
fn jobs_accepts_explicit_counts_and_auto() {
    for jobs in ["1", "2", "7", "auto"] {
        let out = sampsim()
            .args([
                "run",
                "omnetpp_s",
                "--scale",
                "0.002",
                "--maxk",
                "6",
                "--jobs",
                jobs,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn run_writes_report_file_with_dash_o() {
    let dir = std::env::temp_dir().join(format!("sampsim-cli-run-o-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    let out = sampsim()
        .args(["run", "omnetpp_s", "--scale", "0.002", "--maxk", "6", "-o"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout always carries the document; -o writes the same bytes.
    let file = std::fs::read(&path).unwrap();
    assert_eq!(file, out.stdout, "-o file diverged from stdout");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_unwritable_output_path_is_a_usage_error() {
    let out = sampsim()
        .args([
            "run",
            "omnetpp_s",
            "--scale",
            "0.002",
            "--maxk",
            "6",
            "-o",
            "/nonexistent-dir/report.json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unwritable -o path exits 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot write"), "{err}");
    assert!(out.stdout.is_empty(), "no document on a failed run");
}

/// Kills the daemon on drop so a failed assertion can't leak a child
/// process; disarmed once the test has shut it down gracefully.
struct Daemon {
    child: std::process::Child,
}

impl Daemon {
    fn spawn(args: &[&str]) -> (Self, String) {
        use std::io::{BufRead, BufReader};
        let mut child = sampsim()
            .arg("serve")
            .args(args)
            .args(["--addr", "127.0.0.1:0", "--jobs", "2"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        // The daemon announces its (ephemeral) address on stdout first.
        let mut line = String::new();
        BufReader::new(child.stdout.take().unwrap())
            .read_line(&mut line)
            .unwrap();
        let addr = line
            .trim()
            .strip_prefix("sampsim-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
            .to_string();
        (Self { child }, addr)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn serve_and_request_roundtrip_matches_run_stdout() {
    let run = sampsim()
        .args(["run", "omnetpp_s", "--scale", "0.002", "--maxk", "6"])
        .output()
        .unwrap();
    assert!(run.status.success());

    let (mut daemon, addr) = Daemon::spawn(&[]);
    let request = |extra: &[&str]| {
        sampsim()
            .args(["request", "--addr", &addr])
            .args(extra)
            .output()
            .unwrap()
    };
    let bench_args = ["omnetpp_s", "--scale", "0.002", "--maxk", "6"];

    let ping = request(&["--ping"]);
    assert!(ping.status.success());
    assert_eq!(ping.stdout, b"{\"ok\":\"pong\"}\n");

    // Cold, then cached: both byte-identical to `sampsim run` stdout.
    let cold = request(&bench_args);
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(cold.stdout, run.stdout, "served reply != `run` stdout");
    let cached = request(&bench_args);
    assert!(cached.status.success());
    assert_eq!(cached.stdout, run.stdout, "cached reply != `run` stdout");

    // Server-side failures surface as exit 1 with the reply on stderr.
    let unknown = request(&["no-such-bench"]);
    assert_eq!(unknown.status.code(), Some(1));
    let err = String::from_utf8(unknown.stderr).unwrap();
    assert!(err.contains("\"code\":\"unknown-bench\""), "{err}");
    assert!(unknown.stdout.is_empty(), "error replies stay off stdout");

    let stats = request(&["--stats"]);
    assert!(stats.status.success());
    let text = String::from_utf8(stats.stdout).unwrap();
    assert!(text.starts_with("{\"ok\":\"stats\""), "{text}");
    assert!(text.contains("\"executions\":1"), "{text}");

    let shutdown = request(&["--shutdown"]);
    assert!(shutdown.status.success());
    assert_eq!(shutdown.stdout, b"{\"ok\":\"shutdown\"}\n");
    let status = daemon.child.wait().unwrap();
    assert!(status.success(), "daemon must exit 0 after shutdown");
}

#[test]
fn run_output_is_byte_identical_across_job_counts() {
    // The determinism contract at the user-visible boundary: the JSON on
    // stdout must be byte-for-byte identical for --jobs 1, an explicit
    // count, and the (auto) default.
    let args = ["run", "omnetpp_s", "--scale", "0.002", "--maxk", "6"];
    let capture = |jobs: Option<&str>| -> Vec<u8> {
        let mut cmd = sampsim();
        cmd.args(args);
        if let Some(j) = jobs {
            cmd.args(["--jobs", j]);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "jobs {jobs:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = capture(Some("1"));
    let text = String::from_utf8(serial.clone()).unwrap();
    assert!(
        text.starts_with("{\"benchmark\":\"620.omnetpp_s\""),
        "{text}"
    );
    assert!(text.contains("\"points\":"), "{text}");
    assert!(text.contains("\"miss_rates_pct\""), "{text}");
    assert!(!text.contains("wall"), "wall-clock leaked into the output");
    assert_eq!(serial, capture(Some("3")), "--jobs 3 diverged");
    assert_eq!(serial, capture(None), "default jobs diverged");
}

#[test]
fn compare_output_is_golden_byte_stable_and_validates() {
    use sampsim_util::json::{self, Value};
    let dir = std::env::temp_dir().join(format!("sampsim-cli-compare-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("compare.json");
    let args = [
        "compare",
        "omnetpp_s",
        "--scale",
        "0.002",
        "--maxk",
        "6",
        "--reps",
        "2",
    ];
    let capture = |jobs: Option<&str>, out_path: Option<&std::path::Path>| -> Vec<u8> {
        let mut cmd = sampsim();
        cmd.args(args);
        if let Some(j) = jobs {
            cmd.args(["--jobs", j]);
        }
        if let Some(p) = out_path {
            cmd.arg("-o").arg(p);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "jobs {jobs:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };

    // The golden shape: a single schema-tagged JSON line with truth plus
    // one row per registered strategy, each carrying mean/ci95/error_pct
    // estimates for CPI and every cache level.
    let serial = capture(Some("1"), Some(&path));
    let text = String::from_utf8(serial.clone()).unwrap();
    assert_eq!(text.lines().count(), 1, "one JSON line: {text}");
    let doc = json::parse(text.trim()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("sampsim-compare/v1")
    );
    assert_eq!(
        doc.get("bench").and_then(Value::as_str),
        Some("620.omnetpp_s")
    );
    assert!(
        doc.get("truth")
            .unwrap()
            .get("cpi")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    let rows = doc.get("strategies").and_then(Value::as_array).unwrap();
    let names: Vec<&str> = rows
        .iter()
        .map(|r| r.get("strategy").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(names, ["simpoint", "stratified2p", "rss"]);
    for row in rows {
        assert_eq!(row.get("replicates").and_then(Value::as_f64), Some(2.0));
        for metric in [row.get("cpi").unwrap()] {
            for field in ["mean", "ci95", "error_pct"] {
                assert!(metric.get(field).and_then(Value::as_f64).is_some());
            }
        }
        let mr = row.get("miss_rates_pct").unwrap();
        for level in ["l1i", "l1d", "l2", "l3"] {
            assert!(mr.get(level).unwrap().get("ci95").is_some());
        }
    }

    // Byte stability: -o mirrors stdout, and the bytes never depend on
    // the job count.
    let file = std::fs::read(&path).unwrap();
    assert_eq!(file, serial, "-o file diverged from stdout");
    assert_eq!(serial, capture(Some("3"), None), "--jobs 3 diverged");
    assert_eq!(serial, capture(None, None), "default jobs diverged");

    // --validate accepts the real report and exits 0...
    let out = sampsim()
        .args(["compare", "--validate"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...and rejects registry drift (a dropped strategy row) with the
    // usage-error exit code. The rss row is the last element of the
    // strategies array, so cutting from its opening comma to the array
    // close removes exactly that object.
    let trimmed = text.trim_end();
    let cut = trimmed.find(",{\"strategy\":\"rss\"").unwrap();
    assert!(trimmed.ends_with("}]}"), "unexpected report tail");
    let broken = dir.join("broken.json");
    std::fs::write(&broken, format!("{}]}}\n", &trimmed[..cut])).unwrap();
    let out = sampsim()
        .args(["compare", "--validate"])
        .arg(&broken)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "drifted report must exit 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("rss") && err.contains("missing"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plan_output_is_golden_byte_stable_and_validates() {
    use sampsim_util::json::{self, Value};
    let dir = std::env::temp_dir().join(format!("sampsim-cli-plan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plan.json");
    let args = ["plan", "omnetpp_s", "--scale", "0.002", "--maxk", "6"];
    let capture = |jobs: Option<&str>, out_path: Option<&std::path::Path>| -> Vec<u8> {
        let mut cmd = sampsim();
        cmd.args(args);
        if let Some(j) = jobs {
            cmd.args(["--jobs", j]);
        }
        if let Some(p) = out_path {
            cmd.arg("-o").arg(p);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "jobs {jobs:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };

    // One schema-tagged JSON line with the statically derived shape.
    let serial = capture(Some("1"), Some(&path));
    let text = String::from_utf8(serial.clone()).unwrap();
    assert_eq!(text.lines().count(), 1, "one JSON line: {text}");
    let doc = json::parse(text.trim()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("sampsim-plan/v1")
    );
    assert_eq!(
        doc.get("bench").and_then(Value::as_str),
        Some("620.omnetpp_s")
    );
    assert_eq!(
        doc.get("strategy").and_then(Value::as_str),
        Some("simpoint")
    );
    assert!(doc.get("speedup_bound").and_then(Value::as_f64).unwrap() > 1.0);
    let ci = doc.get("ci_bound_pct").unwrap();
    for metric in ["cpi", "l1i", "l1d", "l2", "l3"] {
        assert!(ci.get(metric).and_then(Value::as_f64).unwrap() > 0.0);
    }
    // MaxK 6 < 30: the plan carries its own SA140 finding.
    assert!(text.contains("\"SA140\""), "{text}");

    // Byte stability: -o mirrors stdout; a static plan trivially never
    // depends on the job count, but the contract is still asserted.
    let file = std::fs::read(&path).unwrap();
    assert_eq!(file, serial, "-o file diverged from stdout");
    assert_eq!(serial, capture(Some("3"), None), "--jobs 3 diverged");
    assert_eq!(serial, capture(None, None), "default jobs diverged");

    // --validate accepts the real plan and exits 0...
    let out = sampsim()
        .args(["plan", "--validate"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...and rejects registry drift with the usage-error exit code.
    let broken = dir.join("broken.json");
    std::fs::write(
        &broken,
        text.replace("\"strategy\":\"simpoint\"", "\"strategy\":\"frobnicate\""),
    )
    .unwrap();
    let out = sampsim()
        .args(["plan", "--validate"])
        .arg(&broken)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "drifted plan must exit 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("frobnicate"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plan_covers_every_advertised_strategy() {
    for strategy in ["simpoint", "stratified2p", "rss"] {
        let out = sampsim()
            .args([
                "plan",
                "omnetpp_s",
                "--scale",
                "0.002",
                "--maxk",
                "6",
                "--strategy",
                strategy,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--strategy {strategy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(
            text.contains(&format!("\"strategy\":\"{strategy}\"")),
            "{text}"
        );
    }
}

#[test]
fn lint_explain_prints_rule_descriptions() {
    for id in ["SA140", "SA145", "SA001"] {
        let out = sampsim().args(["lint", "--explain", id]).output().unwrap();
        assert!(out.status.success(), "--explain {id}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.starts_with(&format!("{id} (")), "{text}");
        assert!(text.len() > 60, "description too short: {text}");
    }
    let out = sampsim()
        .args(["lint", "--explain", "SA999"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown rule id exits 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("SA999"), "{err}");
}

#[test]
fn lint_rejects_unsound_sampling_configs() {
    let lint = |extra: &[&str]| {
        let mut cmd = sampsim();
        cmd.args(["lint", "omnetpp_s", "--scale", "0.002"])
            .args(extra);
        cmd.output().unwrap()
    };
    // SA140 (warning): MaxK 6 predicts 6 samples, below CLT plausibility.
    let out = lint(&["--maxk", "6", "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("warning[SA140]"), "{text}");
    assert_eq!(lint(&["--maxk", "6"]).status.code(), Some(0));

    // SA141 (warning): MaxK at the slice count degenerates to a census.
    let out = lint(&["--maxk", "100000", "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("warning[SA141]"), "{text}");

    // SA142 (error): a starved stratified2p pilot fails even without
    // --deny-warnings; the repaired twin is clean.
    let out = lint(&["--strategy", "stratified2p:pilot=1"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[SA142]"), "{text}");
    assert_eq!(
        lint(&["--strategy", "stratified2p:pilot=2"]).status.code(),
        Some(0)
    );

    // SA143 (warning): one stratum can carry >= 50% of the weight.
    let out = lint(&[
        "--strategy",
        "stratified2p:strata=1,samples=2",
        "--deny-warnings",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("warning[SA143]"), "{text}");

    // SA144 (error): one rss replicate has no error bars; two do.
    let out = lint(&["--strategy", "rss:set_size=30,replicates=1"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[SA144]"), "{text}");
    assert_eq!(
        lint(&["--strategy", "rss:set_size=30,replicates=2"])
            .status
            .code(),
        Some(0)
    );

    // SA145 (warning): a census-sized budget replays more than the whole
    // run once warmup is counted.
    let out = lint(&[
        "--strategy",
        "stratified2p:samples=100000",
        "--deny-warnings",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("warning[SA145]"), "{text}");

    // A malformed spec is a usage error (SA130), not a lint finding.
    let out = lint(&["--strategy", "rss:set_size=nope"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("SA130"), "{err}");
}

#[test]
fn run_accepts_registered_strategies_and_rejects_unknown_names() {
    for strategy in ["stratified2p", "rss"] {
        let out = sampsim()
            .args([
                "run",
                "omnetpp_s",
                "--scale",
                "0.002",
                "--strategy",
                strategy,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--strategy {strategy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("\"points\":"), "{text}");
    }
    let out = sampsim()
        .args([
            "run",
            "omnetpp_s",
            "--scale",
            "0.002",
            "--strategy",
            "frobnicate",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown strategy exits 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("SA130"), "{err}");
    assert!(err.contains("frobnicate"), "{err}");
}

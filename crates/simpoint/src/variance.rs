//! Intra-cluster variance sweeps (the Fig. 4 analysis).
//!
//! Fig. 4 of the paper shows, per benchmark, how the average variance in
//! phase similarity within clusters grows as the number of available
//! clusters shrinks — forcing phases to share clusters costs accuracy.

use crate::bbv::Bbv;
use crate::kmeans::kmeans_best_of;
use crate::project::RandomProjection;
use crate::SimPointOptions;

/// For each `k` in `ks`, clusters the (normalized, projected) BBVs and
/// reports the average intra-cluster variance. Returns `(k, variance)`
/// pairs in the order given.
///
/// # Panics
///
/// Panics if `bbvs` is empty or any `k` is zero.
pub fn variance_sweep(bbvs: &[Bbv], ks: &[usize], options: &SimPointOptions) -> Vec<(usize, f64)> {
    assert!(!bbvs.is_empty(), "no slices to analyze");
    let projection = RandomProjection::new(options.dim, options.seed);
    let data = projection.project_all_normalized(bbvs);
    let n = bbvs.len();
    ks.iter()
        .map(|&k| {
            assert!(k > 0, "k must be positive");
            let r = kmeans_best_of(
                &data,
                n,
                options.dim,
                k,
                options.max_iter,
                options.seed.wrapping_add(k as u64),
                options.n_init,
            )
            .expect("validated inputs");
            (k, r.avg_variance())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbvs() -> Vec<Bbv> {
        (0..120u32)
            .map(|i| {
                let phase = (i % 6) * 10;
                Bbv::from_counts(vec![(phase, 900), (phase + 1, 100 + i % 3)])
            })
            .collect()
    }

    #[test]
    fn variance_decreases_with_more_clusters() {
        let sweep = variance_sweep(&bbvs(), &[1, 2, 4, 6], &SimPointOptions::default());
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "variance should not grow with k: {sweep:?}"
            );
        }
        // At the true phase count the clusters are nearly pure.
        assert!(sweep[3].1 < sweep[0].1 * 0.25, "{sweep:?}");
    }

    #[test]
    #[should_panic(expected = "no slices")]
    fn empty_panics() {
        variance_sweep(&[], &[1], &SimPointOptions::default());
    }
}

#[cfg(test)]
mod sweep_extra_tests {
    use super::*;

    #[test]
    fn sweep_reports_requested_ks_in_order() {
        let bbvs: Vec<Bbv> = (0..30u32)
            .map(|i| Bbv::from_counts(vec![((i % 3) * 5, 100)]))
            .collect();
        let sweep = variance_sweep(&bbvs, &[3, 1, 2], &SimPointOptions::default());
        assert_eq!(
            sweep.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![3, 1, 2]
        );
        // Three pure behaviours: k=3 clusters perfectly.
        assert!(sweep[0].1 < 1e-9, "k=3 variance {}", sweep[0].1);
        assert!(sweep[1].1 > sweep[0].1);
    }
}

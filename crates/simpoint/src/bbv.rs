//! Basic-block vectors (Sherwood, Perelman & Calder, PACT 2001).
//!
//! A BBV counts the instructions retired in each basic block during one
//! slice. Vectors are stored sparsely (most slices touch a small fraction
//! of a program's blocks) and L1-normalized before clustering so that slice
//! length does not influence similarity.

use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// A sparse basic-block vector: `(block, value)` pairs sorted by block id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bbv {
    entries: Vec<(u32, f64)>,
}

impl Encode for Bbv {
    fn encode(&self, enc: &mut Encoder) {
        self.entries.encode(enc);
    }
}

impl Decode for Bbv {
    /// Decodes a BBV, revalidating the sortedness invariant so corrupt or
    /// adversarial bytes (e.g. from an on-disk stage cache) can never
    /// construct a `Bbv` that `from_counts` would have rejected.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let entries = Vec::<(u32, f64)>::decode(dec)?;
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(DecodeError::Invalid("BBV entries not sorted by block id"));
        }
        Ok(Self { entries })
    }
}

impl Bbv {
    /// Creates a BBV from raw per-block instruction counts (as harvested by
    /// `sampsim-pin`'s `BbvTool`).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is not sorted by strictly increasing block id.
    pub fn from_counts(counts: Vec<(u32, u32)>) -> Self {
        assert!(
            counts.windows(2).all(|w| w[0].0 < w[1].0),
            "counts must be sorted by strictly increasing block id"
        );
        Self {
            entries: counts.into_iter().map(|(b, c)| (b, f64::from(c))).collect(),
        }
    }

    /// The sparse entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zero blocks.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of values (total instructions for a raw count vector).
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Returns an L1-normalized copy (values sum to 1). An empty vector
    /// normalizes to itself.
    pub fn normalized(&self) -> Bbv {
        let norm = self.l1_norm();
        if norm == 0.0 {
            return self.clone();
        }
        Bbv {
            entries: self.entries.iter().map(|&(b, v)| (b, v / norm)).collect(),
        }
    }

    /// Manhattan (L1) distance between two BBVs — the similarity metric of
    /// the original SimPoint formulation.
    pub fn manhattan(&self, other: &Bbv) -> f64 {
        let mut dist = 0.0;
        let (mut i, mut j) = (0, 0);
        let a = &self.entries;
        let b = &other.entries;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    dist += a[i].1.abs();
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    dist += b[j].1.abs();
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    dist += (a[i].1 - b[j].1).abs();
                    i += 1;
                    j += 1;
                }
            }
        }
        dist += a[i..].iter().map(|&(_, v)| v.abs()).sum::<f64>();
        dist += b[j..].iter().map(|&(_, v)| v.abs()).sum::<f64>();
        dist
    }

    /// Highest block id referenced, if any.
    pub fn max_block(&self) -> Option<u32> {
        self.entries.last().map(|&(b, _)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_and_norm() {
        let v = Bbv::from_counts(vec![(1, 30), (4, 70)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.l1_norm(), 100.0);
        let n = v.normalized();
        assert_eq!(n.entries(), &[(1, 0.3), (4, 0.7)]);
        assert!((n.l1_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vector() {
        let v = Bbv::from_counts(vec![]);
        assert!(v.is_empty());
        assert_eq!(v.l1_norm(), 0.0);
        assert_eq!(v.normalized(), v);
        assert_eq!(v.max_block(), None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_counts_panic() {
        Bbv::from_counts(vec![(4, 1), (1, 1)]);
    }

    #[test]
    fn manhattan_distance() {
        let a = Bbv::from_counts(vec![(0, 5), (2, 5)]).normalized();
        let b = Bbv::from_counts(vec![(0, 5), (3, 5)]).normalized();
        // Shared block 0 matches (0.5 each); blocks 2 and 3 contribute 0.5 each.
        assert!((a.manhattan(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.manhattan(&a), 0.0);
    }

    #[test]
    fn codec_roundtrip_and_sortedness_check() {
        let v = Bbv::from_counts(vec![(1, 30), (4, 70), (9, 1)]);
        let bytes = sampsim_util::codec::to_bytes(&v);
        let back: Bbv = sampsim_util::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
        // An unsorted payload is rejected at decode time.
        let bad = sampsim_util::codec::to_bytes(&vec![(4u32, 1.0f64), (1u32, 1.0f64)]);
        assert!(sampsim_util::codec::from_bytes::<Bbv>(&bad).is_err());
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Bbv::from_counts(vec![(0, 1), (5, 9)]).normalized();
        let b = Bbv::from_counts(vec![(1, 4), (5, 6)]).normalized();
        assert!((a.manhattan(&b) - b.manhattan(&a)).abs() < 1e-12);
    }
}

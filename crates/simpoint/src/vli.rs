//! Variable-length intervals (the SimPoint 3.0 extension; Hamerly et al.,
//! JILP 2005).
//!
//! After clustering fixed-size slices, consecutive slices that share a
//! cluster can be coalesced into variable-length intervals. Replaying one
//! representative *interval* per cluster amortizes per-region start-up cost
//! and captures behaviour that straddles slice boundaries.

use crate::select::SimPoint;

/// A maximal run of consecutive slices assigned to the same cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First slice of the run.
    pub start_slice: u64,
    /// Number of consecutive slices.
    pub len: u64,
    /// The cluster every slice in the run belongs to.
    pub cluster: u32,
}

/// Coalesces a per-slice assignment vector into maximal same-cluster runs.
pub fn coalesce(assignments: &[u32]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut iter = assignments.iter().copied().enumerate();
    let Some((_, first)) = iter.next() else {
        return out;
    };
    let mut cur = Interval {
        start_slice: 0,
        len: 1,
        cluster: first,
    };
    for (i, c) in iter {
        if c == cur.cluster {
            cur.len += 1;
        } else {
            out.push(cur);
            cur = Interval {
                start_slice: i as u64,
                len: 1,
                cluster: c,
            };
        }
    }
    out.push(cur);
    out
}

/// For each cluster with a simulation point, returns the interval
/// containing that point — the variable-length region to replay instead of
/// the single slice. Weights are carried over from the points.
///
/// # Panics
///
/// Panics if a point's slice is outside the assignment vector or assigned
/// to a different cluster (inconsistent inputs).
pub fn representative_intervals(assignments: &[u32], points: &[SimPoint]) -> Vec<(Interval, f64)> {
    let intervals = coalesce(assignments);
    points
        .iter()
        .map(|p| {
            assert!(
                (p.slice as usize) < assignments.len(),
                "point slice out of range"
            );
            assert_eq!(
                assignments[p.slice as usize], p.cluster,
                "point/assignment cluster mismatch"
            );
            let iv = intervals
                .iter()
                .find(|iv| p.slice >= iv.start_slice && p.slice < iv.start_slice + iv.len)
                .copied()
                .expect("every slice lies in some interval");
            (iv, p.weight)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_runs() {
        let runs = coalesce(&[0, 0, 1, 1, 1, 0]);
        assert_eq!(
            runs,
            vec![
                Interval {
                    start_slice: 0,
                    len: 2,
                    cluster: 0
                },
                Interval {
                    start_slice: 2,
                    len: 3,
                    cluster: 1
                },
                Interval {
                    start_slice: 5,
                    len: 1,
                    cluster: 0
                },
            ]
        );
    }

    #[test]
    fn coalesce_empty() {
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn representative_interval_contains_point() {
        let assignments = [0u32, 0, 1, 1, 1, 0];
        let points = vec![
            SimPoint {
                slice: 1,
                cluster: 0,
                weight: 0.5,
            },
            SimPoint {
                slice: 3,
                cluster: 1,
                weight: 0.5,
            },
        ];
        let ivs = representative_intervals(&assignments, &points);
        assert_eq!(ivs.len(), 2);
        assert_eq!(
            ivs[0].0,
            Interval {
                start_slice: 0,
                len: 2,
                cluster: 0
            }
        );
        assert_eq!(
            ivs[1].0,
            Interval {
                start_slice: 2,
                len: 3,
                cluster: 1
            }
        );
        assert_eq!(ivs[1].1, 0.5);
    }

    #[test]
    #[should_panic(expected = "cluster mismatch")]
    fn inconsistent_point_panics() {
        representative_intervals(
            &[0, 1],
            &[SimPoint {
                slice: 0,
                cluster: 1,
                weight: 1.0,
            }],
        );
    }
}

//! The SimPoint methodology (Sherwood et al., ASPLOS 2002; Hamerly et al.,
//! SimPoint 3.0), reimplemented from the papers.
//!
//! Pipeline (matching Fig. 1 of the reproduced paper):
//!
//! 1. An execution is sliced into fixed-size chunks and each slice's
//!    [basic-block vector](bbv::Bbv) is collected (`sampsim-pin`'s
//!    `BbvTool`).
//! 2. BBVs are L1-normalized and [randomly projected](project) down to 15
//!    dimensions.
//! 3. [k-means](kmeans) clusters the projected slices for every candidate
//!    cluster count `k ≤ MaxK`; the [Bayesian Information
//!    Criterion](bic) picks the best `k`.
//! 4. For each cluster, the slice closest to the centroid becomes a
//!    [simulation point](select::SimPoint); its weight is the fraction of
//!    slices in the cluster.
//! 5. Optionally, points are [reduced to a weight
//!    percentile](select::reduce_to_percentile) (the paper's "Reduced
//!    Regional Run" keeps the 90th percentile).
//!
//! [`SimPointAnalysis`] runs steps 2–5 end-to-end; [`variance`] provides
//! the per-`k` intra-cluster variance sweep behind Fig. 4, and
//! [`baselines`] implements periodic/random samplers used as comparison
//! points in the ablation benches.
//!
//! # Example
//!
//! ```
//! use sampsim_simpoint::{bbv::Bbv, SimPointAnalysis, SimPointOptions};
//!
//! // Two obviously different behaviours, five slices each.
//! let mut bbvs = Vec::new();
//! for i in 0..10u32 {
//!     let block = if i % 2 == 0 { 0 } else { 50 };
//!     bbvs.push(Bbv::from_counts(vec![(block, 100)]));
//! }
//! let result = SimPointAnalysis::new(SimPointOptions::default())
//!     .run(&bbvs, 100)
//!     .unwrap();
//! assert_eq!(result.k, 2);
//! let total_weight: f64 = result.points.iter().map(|p| p.weight).sum();
//! assert!((total_weight - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bbv;
pub mod bic;
pub mod kmeans;
pub mod project;
pub mod select;
pub mod smarts;
pub mod strategy;
pub mod variance;
pub mod vli;

mod analysis;

pub use analysis::{SimPointAnalysis, SimPointError, SimPointOptions, SimPointsResult};
pub use kmeans::{
    kmeans, kmeans_best_of, kmeans_best_of_jobs, kmeans_best_of_reference, kmeans_minibatch,
    kmeans_reference, KmeansError, KmeansMode, KmeansResult, MiniBatchKmeans, MINIBATCH_BATCH,
    MINIBATCH_PASSES,
};
pub use project::{RandomProjection, StreamingProjector};
pub use select::SimPoint;
pub use strategy::{
    Rss, RssOptions, SamplePlan, SamplingStrategy, Selection, SimPointStrategy, StrategyInput,
    StrategySpec, Stratified2p, Stratified2pOptions, STRATEGY_NAMES,
};

//! Pluggable sampling strategies: the [`SamplingStrategy`] trait, the
//! registry, and the three built-in estimators.
//!
//! The paper answers "how well does sampled simulation track the whole
//! program" for exactly one selector — SimPoint clustering. This module
//! generalizes the selection step behind a trait so the same profiling
//! pass, replay machinery and aggregation can evaluate interchangeable
//! estimators:
//!
//! * [`SimPointStrategy`] — the paper's method (projection → k-means →
//!   BIC), ported onto the trait with zero behavioral drift.
//!   [`crate::SimPointAnalysis`] is now a thin wrapper around it;
//!   `tests/parallel_differential.rs` pins the port bit-for-bit.
//! * [`Stratified2p`] — two-phase stratified sampling (after Ekman's
//!   NVIDIA method): slices are binned into phase strata by quantiles of
//!   a scalar phase statistic (the first principal component of a seeded
//!   random projection), a seeded pilot subsample estimates each
//!   stratum's spread, and a Neyman allocation assigns the sample budget
//!   before per-stratum random selection.
//! * [`Rss`] — ranked-set sampling over a cheap rank statistic (the
//!   [`phase_scores`] phase statistic), with repeated subsampling: every
//!   replicate is an independent ranked-set draw, so the spread across
//!   replicates yields error bars for the downstream estimate.
//!
//! # Determinism contract
//!
//! A strategy is a pure function of `(input, options, jobs-independent
//! seed schedule)`: every run with the same inputs must produce
//! bit-identical output for every job count. All randomness must flow
//! from the strategy's seed through `sampsim_util::rng` so selections are
//! replayable; sub-draws use [`subseed`] for domain separation. The
//! `strategy_id` (name) plus the parameter [fingerprint][`SamplingStrategy::fingerprint`]
//! identify a selection for caching — see
//! `sampsim_core::stage_cache::response_key`.

use crate::analysis::{SimPointError, SimPointOptions, SimPointsResult};
use crate::bbv::Bbv;
use crate::bic::{bic_score, choose_k};
use crate::kmeans::{
    kmeans_best_of_jobs, kmeans_minibatch, KmeansMode, KmeansResult, MINIBATCH_BATCH,
};
use crate::project::RandomProjection;
use crate::select::{select_simpoints, SimPoint};
use sampsim_exec::Jobs;
use sampsim_util::hash::Fnv64;
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_util::stats::Summary;

/// Every registered strategy name, in report order. `sampsim compare`
/// runs all of them and its validator fails when one is missing from a
/// report, so registry drift cannot pass CI silently.
pub const STRATEGY_NAMES: &[&str] = &["simpoint", "stratified2p", "rss"];

/// What a strategy selects from: the per-slice BBVs (raw counts;
/// strategies normalize/project internally as needed) plus the slice
/// metadata required to interpret them.
#[derive(Debug, Clone, Copy)]
pub struct StrategyInput<'a> {
    /// One basic-block vector per slice, in execution order.
    pub bbvs: &'a [Bbv],
    /// Slice length in instructions (provenance; recorded in the result).
    pub slice_size: u64,
}

/// The outcome of a strategy's selection: regions with weights, plus
/// whatever per-slice structure the method produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Number of groups (clusters or strata) behind the selection.
    pub k: usize,
    /// Selected regions sorted by slice index; weights are non-negative
    /// and sum to 1.
    pub points: Vec<SimPoint>,
    /// Group assignment per slice, when the method produces one (empty
    /// for methods that sample without partitioning every slice).
    pub assignments: Vec<u32>,
    /// `(k, BIC)` pairs when the method scored candidate group counts.
    pub bic_scores: Vec<(usize, f64)>,
    /// Average intra-group variance, when meaningful (0 otherwise).
    pub avg_variance: f64,
    /// Independent repeated-subsampling point sets (error-bar material).
    /// Empty for single-shot methods; for [`Rss`], `replicates[0] ==
    /// points` and each entry is one complete ranked-set draw.
    pub replicates: Vec<Vec<SimPoint>>,
}

impl Selection {
    /// Splits the selection into the classic [`SimPointsResult`] the
    /// pipeline carries plus the replicate sets.
    pub fn into_parts(self, slice_size: u64) -> (SimPointsResult, Vec<Vec<SimPoint>>) {
        (
            SimPointsResult {
                k: self.k,
                slice_size,
                assignments: self.assignments,
                points: self.points,
                bic_scores: self.bic_scores,
                avg_variance: self.avg_variance,
            },
            self.replicates,
        )
    }
}

/// A pluggable region selector. See the [module docs](self) for the
/// determinism contract.
pub trait SamplingStrategy: Sync {
    /// The stable registry name (the `strategy_id`).
    fn name(&self) -> &'static str;

    /// Deterministic fingerprint of the strategy identity *and* every
    /// parameter that can change the selection — two strategies share a
    /// fingerprint iff their selections are bit-identical on all inputs.
    fn fingerprint(&self) -> u64;

    /// Selects regions from the profiled slices. `jobs` may fan internal
    /// work out over workers but must never change an output bit.
    ///
    /// # Errors
    ///
    /// Returns [`SimPointError::NoSlices`] when the input is empty, or a
    /// kernel error from the underlying method.
    fn select(&self, input: &StrategyInput<'_>, jobs: Jobs) -> Result<Selection, SimPointError>;
}

/// Derives a domain-separated sub-seed so independent draws (pilot vs
/// selection, per-stratum, per-replicate) never share an RNG stream.
pub fn subseed(seed: u64, domain: &str, index: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("sampsim/strategy/seed/v1");
    h.write_str(domain);
    h.write_u64(seed);
    h.write_u64(index);
    h.finish()
}

/// A projection-free scalar BBV statistic: the L2 norm of the
/// L1-normalized BBV. It measures how concentrated a slice's execution
/// is across basic blocks (1 = single block, 1/√nnz = uniform). Kept as
/// the cheap baseline statistic ([`phase_scores`] is what the built-in
/// strategies rank and stratify by — concentration alone is phase-blind
/// on workloads whose phases share a count profile over disjoint
/// blocks).
pub fn bbv_norm_score(bbv: &Bbv) -> f64 {
    let total = bbv.l1_norm();
    if total == 0.0 {
        return 0.0;
    }
    bbv.entries()
        .iter()
        .map(|&(_, v)| (v / total) * (v / total))
        .sum::<f64>()
        .sqrt()
}

// ---------------------------------------------------------------------------
// SimPoint through the trait.
// ---------------------------------------------------------------------------

/// The paper's SimPoint selector behind the trait. Holds the algorithm
/// that used to live in `SimPointAnalysis::run_jobs`; the legacy entry
/// points delegate here, so there is exactly one implementation.
#[derive(Debug, Clone)]
pub struct SimPointStrategy {
    options: SimPointOptions,
}

impl SimPointStrategy {
    /// Creates the strategy with the given analysis options.
    pub fn new(options: SimPointOptions) -> Self {
        Self { options }
    }

    /// The options in use.
    pub fn options(&self) -> &SimPointOptions {
        &self.options
    }

    /// Projection → per-`k` clustering → BIC selection → representative
    /// selection. This is the reference SimPoint implementation; see
    /// [`crate::SimPointAnalysis::run_jobs`] for the public wrapper.
    ///
    /// # Errors
    ///
    /// Returns [`SimPointError::NoSlices`] when `bbvs` is empty.
    pub fn analyze(
        &self,
        bbvs: &[Bbv],
        slice_size: u64,
        jobs: Jobs,
    ) -> Result<SimPointsResult, SimPointError> {
        if bbvs.is_empty() {
            return Err(SimPointError::NoSlices);
        }
        let o = &self.options;
        let n = bbvs.len();
        let projection = RandomProjection::new(o.dim, o.seed);
        let data = projection.project_all_normalized(bbvs);

        // Score candidate k on a subsample when the slice count is large.
        let (score_data, score_n) = if n > o.sample_size {
            let mut rng = Xoshiro256StarStar::seed_from_u64(o.seed ^ 0x5A5A);
            let mut idx: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut idx);
            idx.truncate(o.sample_size);
            idx.sort_unstable();
            let mut sub = Vec::with_capacity(o.sample_size * o.dim);
            for &i in &idx {
                sub.extend_from_slice(&data[i * o.dim..(i + 1) * o.dim]);
            }
            (sub, o.sample_size)
        } else {
            (data.clone(), n)
        };

        // The clustering kernel: full Lloyd with restarts (the default,
        // bit-identical to the reference oracle) or the deterministic
        // mini-batch kernel (single run, tolerance-pinned). The per-k seed
        // schedule is shared so switching modes never perturbs seeds.
        let cluster = |data: &[f64], n: usize, k: usize| -> Result<KmeansResult, _> {
            let seed = o.seed.wrapping_add(k as u64);
            match o.kmeans_mode {
                KmeansMode::Lloyd => {
                    kmeans_best_of_jobs(data, n, o.dim, k, o.max_iter, seed, o.n_init, jobs)
                }
                KmeansMode::MiniBatch => kmeans_minibatch(data, n, o.dim, k, seed, MINIBATCH_BATCH),
            }
        };

        let max_k = o.max_k.min(score_n);
        let mut bic_scores = Vec::with_capacity(max_k);
        for k in 1..=max_k {
            let r = cluster(&score_data, score_n, k)?;
            bic_scores.push((k, bic_score(&r, o.dim)));
        }
        let best_k = choose_k(&bic_scores, o.bic_threshold);

        // Final clustering at the chosen k over every slice.
        let final_result: KmeansResult = cluster(&data, n, best_k)?;
        let points = select_simpoints(&final_result, &data, o.dim);
        Ok(SimPointsResult {
            k: best_k,
            slice_size,
            assignments: final_result.assignments.clone(),
            points,
            bic_scores,
            avg_variance: final_result.avg_variance(),
        })
    }
}

impl SamplingStrategy for SimPointStrategy {
    fn name(&self) -> &'static str {
        "simpoint"
    }

    fn fingerprint(&self) -> u64 {
        let o = &self.options;
        let mut h = Fnv64::new();
        h.write_str("sampsim/fp/strategy/simpoint/v2");
        h.write_u64(o.max_k as u64);
        h.write_u64(o.dim as u64);
        h.write_u64(u64::from(o.n_init));
        h.write_u64(u64::from(o.max_iter));
        h.write_f64(o.bic_threshold);
        h.write_u64(o.seed);
        h.write_u64(o.sample_size as u64);
        h.write_str(o.kmeans_mode.label());
        h.finish()
    }

    fn select(&self, input: &StrategyInput<'_>, jobs: Jobs) -> Result<Selection, SimPointError> {
        let r = self.analyze(input.bbvs, input.slice_size, jobs)?;
        Ok(Selection {
            k: r.k,
            points: r.points,
            assignments: r.assignments,
            bic_scores: r.bic_scores,
            avg_variance: r.avg_variance,
            replicates: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// Two-phase stratified sampling.
// ---------------------------------------------------------------------------

/// Projection dimensionality behind [`Stratified2p`]'s phase statistic.
pub const PHASE_DIM: usize = 8;

/// Power-iteration steps for the principal direction. Phase-structured
/// data has a dominant eigengap, so convergence is fast; the count is
/// fixed (no tolerance test) to keep the iteration trivially
/// deterministic.
const POWER_ITERS: usize = 24;

/// First-principal-component scores of `n` projected slices (`data` is
/// row-major, `n × dim`): each slice's signed coordinate along the top
/// PCA direction of the projected cloud, found by power iteration from a
/// fixed start vector.
///
/// Accumulation (mean and the implicit covariance products) walks the
/// slices in a canonical lexicographic order of the projected vectors,
/// not input order — identical rows are interchangeable terms — so the
/// same slice *multiset* yields bit-identical scores under any
/// permutation of the input. Each slice's final score is a fixed-order
/// dot product of its own row, hence order-independent too.
fn principal_scores(data: &[f64], n: usize, dim: usize) -> Vec<f64> {
    let mut canon: Vec<usize> = (0..n).collect();
    canon.sort_by(|&a, &b| {
        data[a * dim..(a + 1) * dim]
            .partial_cmp(&data[b * dim..(b + 1) * dim])
            .expect("projected coordinates are finite")
    });
    let mut mean = vec![0.0; dim];
    for &i in &canon {
        for (m, v) in mean.iter_mut().zip(&data[i * dim..(i + 1) * dim]) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut v = vec![1.0 / (dim as f64).sqrt(); dim];
    for _ in 0..POWER_ITERS {
        let mut next = vec![0.0; dim];
        for &i in &canon {
            let row = &data[i * dim..(i + 1) * dim];
            let mut dot = 0.0;
            for d in 0..dim {
                dot += (row[d] - mean[d]) * v[d];
            }
            for d in 0..dim {
                next[d] += dot * (row[d] - mean[d]);
            }
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            break; // degenerate cloud (all rows equal): any direction works
        }
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }
    (0..n)
        .map(|i| {
            let row = &data[i * dim..(i + 1) * dim];
            (0..dim).map(|d| (row[d] - mean[d]) * v[d]).sum()
        })
        .collect()
}

/// The scalar phase statistic shared by [`Stratified2p`] (stratification)
/// and [`Rss`] (ranking): each slice's coordinate along the first
/// principal component of a seeded [`PHASE_DIM`]-dimensional random
/// projection of the normalized BBVs. Cheap (`O(n·dim)` per power-iteration
/// step), deterministic, and permutation-invariant over slice order — see
/// [`principal_scores`]. On phase-structured workloads the top PCA
/// direction is the phase axis, so the statistic tracks phase identity,
/// which is what makes stratification strata phase-pure and ranked sets
/// phase-spread.
pub fn phase_scores(bbvs: &[Bbv], seed: u64) -> Vec<f64> {
    let data = RandomProjection::new(PHASE_DIM, seed).project_all_normalized(bbvs);
    principal_scores(&data, bbvs.len(), PHASE_DIM)
}

/// Tuning knobs of [`Stratified2p`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stratified2pOptions {
    /// Number of phase strata (equal-count quantile bins; capped at the
    /// slice count).
    pub strata: usize,
    /// Phase-1 pilot draws per stratum used to estimate within-stratum
    /// spread for the Neyman allocation.
    pub pilot: usize,
    /// Total phase-2 sample budget (every non-empty stratum still gets at
    /// least one; capped at the slice count).
    pub samples: usize,
    /// Master seed for the pilot and selection RNG streams.
    pub seed: u64,
}

impl Default for Stratified2pOptions {
    fn default() -> Self {
        Self {
            strata: 8,
            pilot: 4,
            samples: 30,
            seed: 0x5742_11F1,
        }
    }
}

/// Two-phase stratified sampling over phase strata.
///
/// Slices are scored by the first principal component of a seeded
/// [`PHASE_DIM`]-dimensional random projection of the normalized BBVs (a
/// scalar phase statistic: the top PCA direction of bimodal phase data is
/// the phase axis, so it separates phases far more cleanly than a raw 1-D
/// projection) and split into equal-count quantile strata. Phase 1 draws
/// a seeded pilot per stratum to estimate its score spread `s_h`; phase 2
/// allocates the budget by Neyman allocation (`n_h ∝ N_h·s_h`) and
/// selects `n_h` slices per stratum uniformly without replacement. Each
/// selected slice carries weight `(N_h/n)/n_h`, so the estimator is
/// unbiased per stratum and the weights sum to 1.
///
/// The allocation depends only on the *multiset* of scores, so it is
/// invariant under permutations of the slice order (a property test pins
/// this).
#[derive(Debug, Clone)]
pub struct Stratified2p {
    options: Stratified2pOptions,
}

/// The per-stratum structure `Stratified2p` derives before selecting.
struct Strata {
    /// Slice indices sorted by `(score, index)`.
    order: Vec<usize>,
    /// Scores in slice order.
    scores: Vec<f64>,
    /// `(start, len)` of each stratum within `order`.
    bins: Vec<(usize, usize)>,
}

impl Stratified2p {
    /// Creates the strategy.
    pub fn new(options: Stratified2pOptions) -> Self {
        Self { options }
    }

    /// The options in use.
    pub fn options(&self) -> &Stratified2pOptions {
        &self.options
    }

    fn stratify(&self, bbvs: &[Bbv]) -> Strata {
        let n = bbvs.len();
        // The phase statistic, from a seed domain-separated from the
        // selection streams.
        let scores = phase_scores(bbvs, subseed(self.options.seed, "s2p/score", 0));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("projected scores are finite")
                .then(a.cmp(&b))
        });
        let s = self.options.strata.clamp(1, n);
        let (base, extra) = (n / s, n % s);
        let mut bins = Vec::with_capacity(s);
        let mut start = 0;
        for h in 0..s {
            let len = base + usize::from(h < extra);
            bins.push((start, len));
            start += len;
        }
        Strata {
            order,
            scores,
            bins,
        }
    }

    /// The phase-2 sample allocation: how many slices each stratum gets.
    /// Exposed for the permutation-invariance property test.
    ///
    /// # Errors
    ///
    /// Returns [`SimPointError::NoSlices`] when the input is empty.
    pub fn allocation(&self, input: &StrategyInput<'_>) -> Result<Vec<usize>, SimPointError> {
        if input.bbvs.is_empty() {
            return Err(SimPointError::NoSlices);
        }
        let strata = self.stratify(input.bbvs);
        Ok(self.allocate(input.bbvs.len(), &strata))
    }

    fn allocate(&self, n: usize, strata: &Strata) -> Vec<usize> {
        let s = strata.bins.len();
        // Phase 1: pilot estimate of each stratum's score spread. The
        // pilot draws positions within the sorted stratum, so the
        // estimate depends only on the score multiset.
        let mut spread = Vec::with_capacity(s);
        for (h, &(start, len)) in strata.bins.iter().enumerate() {
            let pilot = self.options.pilot.min(len);
            let mut positions: Vec<usize> = (0..len).collect();
            let mut rng = Xoshiro256StarStar::seed_from_u64(subseed(
                self.options.seed,
                "s2p/pilot",
                h as u64,
            ));
            rng.shuffle(&mut positions);
            positions.truncate(pilot);
            let mut summary = Summary::new();
            for &p in &positions {
                summary.add(strata.scores[strata.order[start + p]]);
            }
            spread.push(if pilot >= 2 { summary.stddev() } else { 0.0 });
        }
        // Phase 2 allocation: Neyman (n_h ∝ N_h·s_h), falling back to
        // proportional when every pilot spread is zero. Every non-empty
        // stratum gets at least one draw; the budget never exceeds n.
        let weight: Vec<f64> = strata
            .bins
            .iter()
            .zip(&spread)
            .map(|(&(_, len), &s_h)| len as f64 * s_h)
            .collect();
        let total_weight: f64 = weight.iter().sum();
        let weight: Vec<f64> = if total_weight > 0.0 {
            weight
        } else {
            strata.bins.iter().map(|&(_, len)| len as f64).collect()
        };
        let total_weight: f64 = weight.iter().sum();
        let target = self.options.samples.max(s).min(n);
        let ideal: Vec<f64> = weight
            .iter()
            .map(|w| target as f64 * w / total_weight)
            .collect();
        let mut alloc: Vec<usize> = vec![1; s];
        let mut assigned = s;
        while assigned < target {
            // Largest remaining demand with spare capacity; ties resolve
            // to the lowest stratum index, keeping the loop deterministic.
            let mut best: Option<(f64, usize)> = None;
            for h in 0..s {
                if alloc[h] >= strata.bins[h].1 {
                    continue;
                }
                let demand = ideal[h] - alloc[h] as f64;
                if best.is_none_or(|(d, _)| demand > d) {
                    best = Some((demand, h));
                }
            }
            match best {
                Some((_, h)) => alloc[h] += 1,
                None => break, // every stratum saturated
            }
            assigned += 1;
        }
        alloc
    }
}

impl SamplingStrategy for Stratified2p {
    fn name(&self) -> &'static str {
        "stratified2p"
    }

    fn fingerprint(&self) -> u64 {
        let o = &self.options;
        let mut h = Fnv64::new();
        h.write_str("sampsim/fp/strategy/stratified2p/v1");
        h.write_u64(o.strata as u64);
        h.write_u64(o.pilot as u64);
        h.write_u64(o.samples as u64);
        h.write_u64(o.seed);
        h.finish()
    }

    fn select(&self, input: &StrategyInput<'_>, _jobs: Jobs) -> Result<Selection, SimPointError> {
        if input.bbvs.is_empty() {
            return Err(SimPointError::NoSlices);
        }
        let n = input.bbvs.len();
        let strata = self.stratify(input.bbvs);
        let alloc = self.allocate(n, &strata);

        let mut assignments = vec![0u32; n];
        for (h, &(start, len)) in strata.bins.iter().enumerate() {
            for &slice in &strata.order[start..start + len] {
                assignments[slice] = h as u32;
            }
        }
        let mut points = Vec::new();
        for (h, &(start, len)) in strata.bins.iter().enumerate() {
            let n_h = alloc[h];
            if n_h == 0 || len == 0 {
                continue;
            }
            let mut positions: Vec<usize> = (0..len).collect();
            let mut rng = Xoshiro256StarStar::seed_from_u64(subseed(
                self.options.seed,
                "s2p/select",
                h as u64,
            ));
            rng.shuffle(&mut positions);
            positions.truncate(n_h);
            let weight = (len as f64 / n as f64) / n_h as f64;
            for &p in &positions {
                points.push(SimPoint {
                    slice: strata.order[start + p] as u64,
                    cluster: h as u32,
                    weight,
                });
            }
        }
        points.sort_by_key(|p| p.slice);
        Ok(Selection {
            k: strata.bins.len(),
            points,
            assignments,
            bic_scores: Vec::new(),
            avg_variance: 0.0,
            replicates: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// Ranked-set sampling with repeated subsampling.
// ---------------------------------------------------------------------------

/// Tuning knobs of [`Rss`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssOptions {
    /// Ranked-set size `m`: each replicate draws `m` sets of `m` slices
    /// and keeps one per rank, so a replicate selects `m` regions
    /// (capped at the slice count).
    pub set_size: usize,
    /// Number of independent repeated-subsampling replicates; the spread
    /// of per-replicate estimates yields the error bars.
    pub replicates: usize,
    /// Master seed for the per-replicate RNG streams.
    pub seed: u64,
}

impl Default for RssOptions {
    fn default() -> Self {
        Self {
            set_size: 12,
            replicates: 5,
            seed: 0x0155_C0DE,
        }
    }
}

/// Ranked-set sampling over the scalar phase statistic.
///
/// One replicate of set size `m`: for each rank `i` in `0..m`, draw `m`
/// slices uniformly at random, rank the set by [`phase_scores`] (ties
/// broken by slice index), and keep the `i`-th ranked slice. The `m`
/// keepers carry equal weight `1/m` (duplicates merge by summing
/// weight), giving a sample that is spread across the rank distribution
/// of the statistic — cheaper than clustering, more phase-balanced than
/// plain uniform sampling. Ranked-set sampling beats simple random
/// sampling exactly when the rank statistic correlates with the response,
/// which is why the ranking uses the phase statistic rather than a
/// phase-blind scalar like [`bbv_norm_score`].
///
/// Repeated subsampling runs the whole procedure `replicates` times from
/// domain-separated seeds; `Selection::replicates` carries every draw so
/// callers can turn the spread of per-replicate estimates into
/// confidence intervals (see `docs/sampling-strategies.md`).
#[derive(Debug, Clone)]
pub struct Rss {
    options: RssOptions,
}

impl Rss {
    /// Creates the strategy.
    pub fn new(options: RssOptions) -> Self {
        Self { options }
    }

    /// The options in use.
    pub fn options(&self) -> &RssOptions {
        &self.options
    }

    fn replicate(&self, scores: &[f64], replicate: u64) -> Vec<SimPoint> {
        let n = scores.len();
        let m = self.options.set_size.clamp(1, n);
        let mut rng = Xoshiro256StarStar::seed_from_u64(subseed(
            self.options.seed,
            "rss/replicate",
            replicate,
        ));
        let mut picked: Vec<usize> = Vec::with_capacity(m);
        for rank in 0..m {
            let mut set: Vec<usize> = (0..m).map(|_| rng.next_below(n as u64) as usize).collect();
            set.sort_by(|&a, &b| {
                scores[a]
                    .partial_cmp(&scores[b])
                    .expect("rank statistic is finite")
                    .then(a.cmp(&b))
            });
            picked.push(set[rank]);
        }
        picked.sort_unstable();
        let weight = 1.0 / m as f64;
        let mut points: Vec<SimPoint> = Vec::with_capacity(m);
        for slice in picked {
            match points.last_mut() {
                Some(last) if last.slice == slice as u64 => last.weight += weight,
                _ => points.push(SimPoint {
                    slice: slice as u64,
                    cluster: 0,
                    weight,
                }),
            }
        }
        points
    }
}

impl SamplingStrategy for Rss {
    fn name(&self) -> &'static str {
        "rss"
    }

    fn fingerprint(&self) -> u64 {
        let o = &self.options;
        let mut h = Fnv64::new();
        h.write_str("sampsim/fp/strategy/rss/v1");
        h.write_u64(o.set_size as u64);
        h.write_u64(o.replicates as u64);
        h.write_u64(o.seed);
        h.finish()
    }

    fn select(&self, input: &StrategyInput<'_>, _jobs: Jobs) -> Result<Selection, SimPointError> {
        if input.bbvs.is_empty() {
            return Err(SimPointError::NoSlices);
        }
        let scores = phase_scores(input.bbvs, subseed(self.options.seed, "rss/score", 0));
        let replicates: Vec<Vec<SimPoint>> = (0..self.options.replicates.max(1) as u64)
            .map(|r| self.replicate(&scores, r))
            .collect();
        let points = replicates[0].clone();
        Ok(Selection {
            k: points.len(),
            points,
            assignments: Vec::new(),
            bic_scores: Vec::new(),
            avg_variance: 0.0,
            replicates,
        })
    }
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// A serializable description of a strategy choice: which method plus its
/// parameters. The `SimPoint` variant carries no options of its own — it
/// uses the pipeline's [`SimPointOptions`], so existing `MaxK`/seed knobs
/// keep working unchanged.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StrategySpec {
    /// The paper's SimPoint selector (the default).
    #[default]
    SimPoint,
    /// Two-phase stratified sampling.
    Stratified2p(Stratified2pOptions),
    /// Ranked-set sampling with repeated subsampling.
    Rss(RssOptions),
}

/// The statically derivable shape of a strategy's selection: how many
/// regions it will pick, how many samples contribute to each estimate,
/// and the worst-case weight any single region can carry. Derived by
/// [`StrategySpec::predict`] from the strategy parameters and the slice
/// count alone — no profiling, clustering or replay — and consumed by the
/// `sampsim plan` cost/precision model and the SA14x soundness lints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePlan {
    /// Distinct regions replayed (the simulated-instruction cost driver).
    pub regions: usize,
    /// Samples contributing to each metric estimate (`regions ×
    /// replicates` for replicated strategies).
    pub samples: usize,
    /// Independent replicates the strategy natively produces.
    pub replicates: usize,
    /// Static upper bound on the weight any single selection *draw*
    /// carries, or `f64::INFINITY` when the strategy offers no
    /// parameter-level guarantee (SimPoint cluster sizes are
    /// data-dependent). Strategies that merge duplicate draws (rss) can
    /// report regions whose accumulated weight is a multiple of this
    /// bound; the bound still governs how much estimate mass one *pick*
    /// controls.
    pub max_weight_bound: f64,
}

impl StrategySpec {
    /// Resolves a registry name to a spec with default parameters.
    /// Returns `None` for unregistered names (callers surface the typed
    /// `SA130` diagnostic).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "simpoint" => Some(StrategySpec::SimPoint),
            "stratified2p" => Some(StrategySpec::Stratified2p(Stratified2pOptions::default())),
            "rss" => Some(StrategySpec::Rss(RssOptions::default())),
            _ => None,
        }
    }

    /// Resolves a strategy *spec string*: a registry name optionally
    /// followed by `:key=value,key=value` parameter overrides
    /// (`stratified2p:strata=4,samples=40`, `rss:replicates=9`). The
    /// bare-name form is exactly [`StrategySpec::parse`]. `simpoint`
    /// takes no parameters here — its knobs live in [`SimPointOptions`]
    /// (`--maxk`). Unknown names, unknown keys and malformed values
    /// return a message the caller wraps in the typed `SA130` diagnostic.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let (name, params) = match spec.split_once(':') {
            Some((name, params)) => (name, Some(params)),
            None => (spec, None),
        };
        let mut parsed = Self::parse(name).ok_or_else(|| {
            format!(
                "`{name}` is not a registered strategy (registry: {})",
                STRATEGY_NAMES.join(", ")
            )
        })?;
        let Some(params) = params else {
            return Ok(parsed);
        };
        for pair in params.split(',') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("parameter `{pair}` is not of the form key=value"))?;
            let int = |what: &str| {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{what} `{key}={value}` is not a non-negative integer"))
            };
            match (&mut parsed, key) {
                (StrategySpec::SimPoint, _) => {
                    return Err(format!(
                        "`simpoint` takes no spec parameters (got `{key}`); \
                         use --maxk / SimPointOptions"
                    ));
                }
                (StrategySpec::Stratified2p(o), "strata") => o.strata = int("strata")? as usize,
                (StrategySpec::Stratified2p(o), "pilot") => o.pilot = int("pilot")? as usize,
                (StrategySpec::Stratified2p(o), "samples") => o.samples = int("samples")? as usize,
                (StrategySpec::Stratified2p(o), "seed") => o.seed = int("seed")?,
                (StrategySpec::Rss(o), "set_size") => o.set_size = int("set_size")? as usize,
                (StrategySpec::Rss(o), "replicates") => o.replicates = int("replicates")? as usize,
                (StrategySpec::Rss(o), "seed") => o.seed = int("seed")?,
                (spec, _) => {
                    return Err(format!(
                        "`{}` has no parameter `{key}`",
                        StrategySpec::name(spec)
                    ));
                }
            }
        }
        Ok(parsed)
    }

    /// Predicts the selection shape for a run of `num_slices` profiling
    /// slices, from parameters alone (see [`SamplePlan`]). Mirrors the
    /// clamping each strategy applies at selection time: SimPoint picks
    /// one representative per cluster (≤ `min(MaxK, n)`), stratified2p
    /// allocates `samples.max(strata).min(n)` draws, rss keeps
    /// `set_size.clamp(1, n)` regions per replicate.
    pub fn predict(&self, simpoint: &SimPointOptions, num_slices: u64) -> SamplePlan {
        let n = usize::try_from(num_slices).unwrap_or(usize::MAX);
        match self {
            StrategySpec::SimPoint => {
                let regions = simpoint.max_k.min(n);
                SamplePlan {
                    regions,
                    samples: regions,
                    replicates: 1,
                    // A k=1 clustering provably yields one unit-weight
                    // point; for k > 1 cluster sizes are data-dependent,
                    // so no static bound exists.
                    max_weight_bound: if simpoint.max_k <= 1 {
                        1.0
                    } else {
                        f64::INFINITY
                    },
                }
            }
            StrategySpec::Stratified2p(o) => {
                let s = o.strata.clamp(1, n.max(1));
                let target = o.samples.max(s).min(n);
                SamplePlan {
                    regions: target,
                    samples: target,
                    replicates: 1,
                    // A census gives every slice weight 1/n; otherwise
                    // the largest stratum (⌈n/s⌉ slices) can receive a
                    // single draw carrying the whole stratum's mass.
                    max_weight_bound: if n == 0 {
                        1.0
                    } else if target >= n {
                        1.0 / n as f64
                    } else {
                        n.div_ceil(s) as f64 / n as f64
                    },
                }
            }
            StrategySpec::Rss(o) => {
                let m = o.set_size.clamp(1, n.max(1));
                let reps = o.replicates.max(1);
                SamplePlan {
                    regions: m,
                    samples: m * reps,
                    replicates: reps,
                    max_weight_bound: 1.0 / m as f64,
                }
            }
        }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::SimPoint => "simpoint",
            StrategySpec::Stratified2p(_) => "stratified2p",
            StrategySpec::Rss(_) => "rss",
        }
    }

    /// One default-parameter spec per registered strategy, in
    /// [`STRATEGY_NAMES`] order.
    pub fn registry() -> Vec<StrategySpec> {
        STRATEGY_NAMES
            .iter()
            .map(|name| StrategySpec::parse(name).expect("registry names parse"))
            .collect()
    }

    /// Instantiates the strategy. `simpoint` supplies the options for the
    /// `SimPoint` variant; the others carry their own.
    pub fn build(&self, simpoint: &SimPointOptions) -> Box<dyn SamplingStrategy> {
        match self {
            StrategySpec::SimPoint => Box::new(SimPointStrategy::new(*simpoint)),
            StrategySpec::Stratified2p(o) => Box::new(Stratified2p::new(*o)),
            StrategySpec::Rss(o) => Box::new(Rss::new(*o)),
        }
    }

    /// The built strategy's parameter fingerprint (see
    /// [`SamplingStrategy::fingerprint`]).
    pub fn fingerprint(&self, simpoint: &SimPointOptions) -> u64 {
        self.build(simpoint).fingerprint()
    }

    /// A copy with the strategy's master seed shifted by `offset` — the
    /// seed-resampling hook `sampsim compare` uses to build replicate
    /// selections for single-shot strategies. For the `SimPoint` variant
    /// the seed lives in [`SimPointOptions`]; use
    /// [`reseeded_simpoint_options`] instead.
    pub fn reseeded(&self, offset: u64) -> StrategySpec {
        let shift = offset.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            StrategySpec::SimPoint => StrategySpec::SimPoint,
            StrategySpec::Stratified2p(o) => StrategySpec::Stratified2p(Stratified2pOptions {
                seed: o.seed.wrapping_add(shift),
                ..*o
            }),
            StrategySpec::Rss(o) => StrategySpec::Rss(RssOptions {
                seed: o.seed.wrapping_add(shift),
                ..*o
            }),
        }
    }
}

/// [`StrategySpec::reseeded`]'s counterpart for the `SimPoint` variant:
/// the same options with the master seed shifted by `offset`.
pub fn reseeded_simpoint_options(options: &SimPointOptions, offset: u64) -> SimPointOptions {
    SimPointOptions {
        seed: options
            .seed
            .wrapping_add(offset.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ..*options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n_phases` behaviours interleaved round-robin with mild noise.
    fn synthetic_bbvs(n_phases: usize, per: usize) -> Vec<Bbv> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let mut out = Vec::new();
        for i in 0..n_phases * per {
            let phase = i % n_phases;
            let base = (phase * 25) as u32;
            out.push(Bbv::from_counts(vec![
                (base, 700 + rng.next_below(60) as u32),
                (base + 1, 200 + rng.next_below(30) as u32),
            ]));
        }
        out
    }

    fn input(bbvs: &[Bbv]) -> StrategyInput<'_> {
        StrategyInput {
            bbvs,
            slice_size: 1_000,
        }
    }

    fn check_selection(sel: &Selection, n: usize) {
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0.0;
        for p in &sel.points {
            assert!(p.weight > 0.0, "non-positive weight {p:?}");
            assert!((p.slice as usize) < n, "out of bounds {p:?}");
            assert!(seen.insert(p.slice), "duplicate slice {p:?}");
            sum += p.weight;
        }
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        let sorted = sel.points.windows(2).all(|w| w[0].slice < w[1].slice);
        assert!(sorted, "points not sorted by slice");
    }

    #[test]
    fn simpoint_strategy_matches_legacy_entry_point() {
        let bbvs = synthetic_bbvs(4, 30);
        let opts = SimPointOptions {
            max_k: 8,
            ..Default::default()
        };
        let legacy = crate::SimPointAnalysis::new(opts)
            .run(&bbvs, 1_000)
            .unwrap();
        let (via_trait, reps) = SimPointStrategy::new(opts)
            .select(&input(&bbvs), sampsim_exec::SERIAL)
            .unwrap()
            .into_parts(1_000);
        assert_eq!(via_trait, legacy);
        assert!(reps.is_empty());
    }

    #[test]
    fn minibatch_mode_selects_validly_and_changes_fingerprint() {
        let bbvs = synthetic_bbvs(4, 30);
        let lloyd_opts = SimPointOptions {
            max_k: 8,
            ..Default::default()
        };
        let mb_opts = SimPointOptions {
            kmeans_mode: crate::kmeans::KmeansMode::MiniBatch,
            ..lloyd_opts
        };
        let a = SimPointStrategy::new(mb_opts)
            .select(&input(&bbvs), sampsim_exec::SERIAL)
            .unwrap();
        let b = SimPointStrategy::new(mb_opts)
            .select(&input(&bbvs), sampsim_exec::SERIAL)
            .unwrap();
        assert_eq!(a, b, "mini-batch mode must stay deterministic");
        check_selection(&a, bbvs.len());
        // Four well-separated phases: the mini-batch sweep still lands on
        // a sensible k.
        assert!((4..=8).contains(&a.k), "k = {}", a.k);
        // The mode is part of the cached-selection identity.
        assert_ne!(
            SimPointStrategy::new(mb_opts).fingerprint(),
            SimPointStrategy::new(lloyd_opts).fingerprint()
        );
    }

    #[test]
    fn stratified2p_selection_is_valid_and_deterministic() {
        let bbvs = synthetic_bbvs(5, 24);
        let strat = Stratified2p::new(Stratified2pOptions::default());
        let a = strat.select(&input(&bbvs), sampsim_exec::SERIAL).unwrap();
        let b = strat.select(&input(&bbvs), sampsim_exec::SERIAL).unwrap();
        assert_eq!(a, b);
        check_selection(&a, bbvs.len());
        assert_eq!(a.assignments.len(), bbvs.len());
        assert_eq!(a.k, 8);
        // The budget lands: default samples = 30 over 120 slices.
        assert_eq!(a.points.len(), 30);
        // Every point's cluster matches its slice's stratum assignment.
        for p in &a.points {
            assert_eq!(a.assignments[p.slice as usize], p.cluster);
        }
    }

    #[test]
    fn stratified2p_allocation_is_permutation_invariant() {
        let bbvs = synthetic_bbvs(3, 20);
        let strat = Stratified2p::new(Stratified2pOptions::default());
        let alloc = strat.allocation(&input(&bbvs)).unwrap();
        let mut permuted = bbvs.clone();
        permuted.reverse();
        let alloc_perm = strat.allocation(&input(&permuted)).unwrap();
        assert_eq!(alloc, alloc_perm);
        assert_eq!(alloc.iter().sum::<usize>(), 30);
    }

    #[test]
    fn rss_selection_is_valid_with_replicates() {
        let bbvs = synthetic_bbvs(4, 25);
        let rss = Rss::new(RssOptions::default());
        let sel = rss.select(&input(&bbvs), sampsim_exec::SERIAL).unwrap();
        check_selection(&sel, bbvs.len());
        assert_eq!(sel.replicates.len(), 5);
        assert_eq!(sel.replicates[0], sel.points);
        for rep in &sel.replicates {
            let sum: f64 = rep.iter().map(|p| p.weight).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Replicates are genuinely different draws.
        assert_ne!(sel.replicates[0], sel.replicates[1]);
    }

    #[test]
    fn tiny_inputs_degrade_gracefully() {
        let one = vec![Bbv::from_counts(vec![(0, 10)])];
        for spec in StrategySpec::registry() {
            let strategy = spec.build(&SimPointOptions::default());
            let sel = strategy.select(&input(&one), sampsim_exec::SERIAL).unwrap();
            check_selection(&sel, 1);
            assert_eq!(sel.points.len(), 1, "{}", strategy.name());
            let err = strategy
                .select(&input(&[]), sampsim_exec::SERIAL)
                .unwrap_err();
            assert_eq!(err, SimPointError::NoSlices, "{}", strategy.name());
        }
    }

    #[test]
    fn registry_round_trips_names_and_fingerprints_differ() {
        let opts = SimPointOptions::default();
        let mut fps = std::collections::HashSet::new();
        for (spec, name) in StrategySpec::registry().iter().zip(STRATEGY_NAMES) {
            assert_eq!(spec.name(), *name);
            assert_eq!(StrategySpec::parse(name).as_ref(), Some(spec));
            assert!(fps.insert(spec.fingerprint(&opts)), "fingerprint collision");
            // Reseeding changes the fingerprint for seeded strategies.
            let reseeded = spec.reseeded(1);
            if !matches!(spec, StrategySpec::SimPoint) {
                assert_ne!(reseeded.fingerprint(&opts), spec.fingerprint(&opts));
            }
        }
        assert_eq!(StrategySpec::parse("frobnicate"), None);
        assert_eq!(StrategySpec::default(), StrategySpec::SimPoint);
    }

    #[test]
    fn parse_spec_accepts_bare_names_and_parameter_overrides() {
        for name in STRATEGY_NAMES {
            assert_eq!(
                StrategySpec::parse_spec(name).unwrap(),
                StrategySpec::parse(name).unwrap()
            );
        }
        let spec = StrategySpec::parse_spec("stratified2p:strata=4,pilot=1,samples=40,seed=7");
        assert_eq!(
            spec.unwrap(),
            StrategySpec::Stratified2p(Stratified2pOptions {
                strata: 4,
                pilot: 1,
                samples: 40,
                seed: 7,
            })
        );
        let spec = StrategySpec::parse_spec("rss:set_size=3,replicates=1");
        assert_eq!(
            spec.unwrap(),
            StrategySpec::Rss(RssOptions {
                set_size: 3,
                replicates: 1,
                ..RssOptions::default()
            })
        );
    }

    #[test]
    fn parse_spec_rejects_bad_specs_with_messages() {
        let err = StrategySpec::parse_spec("frobnicate").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(err.contains("simpoint"), "{err}");
        let err = StrategySpec::parse_spec("simpoint:maxk=5").unwrap_err();
        assert!(err.contains("no spec parameters"), "{err}");
        let err = StrategySpec::parse_spec("rss:strata=4").unwrap_err();
        assert!(err.contains("no parameter `strata`"), "{err}");
        let err = StrategySpec::parse_spec("rss:set_size=x").unwrap_err();
        assert!(err.contains("not a non-negative integer"), "{err}");
        let err = StrategySpec::parse_spec("rss:set_size").unwrap_err();
        assert!(err.contains("key=value"), "{err}");
    }

    #[test]
    fn predict_matches_actual_selection_shapes() {
        let bbvs = synthetic_bbvs(3, 20); // 60 slices
        let n = bbvs.len() as u64;
        let opts = SimPointOptions {
            max_k: 6,
            ..SimPointOptions::default()
        };
        for spec in StrategySpec::registry() {
            let plan = spec.predict(&opts, n);
            let sel = spec
                .build(&opts)
                .select(&input(&bbvs), sampsim_exec::SERIAL)
                .unwrap();
            assert!(
                sel.points.len() <= plan.regions,
                "{}: {} > {}",
                spec.name(),
                sel.points.len(),
                plan.regions
            );
            // The bound governs single draws; rss merges duplicate draws,
            // so its region weights are multiples of the bound instead.
            for p in &sel.points {
                let draws = (p.weight / plan.max_weight_bound).round().max(1.0);
                assert!(
                    p.weight <= draws * plan.max_weight_bound + 1e-12,
                    "{}: weight {} not covered by {} draw(s) x bound {}",
                    spec.name(),
                    p.weight,
                    draws,
                    plan.max_weight_bound
                );
                if matches!(spec, StrategySpec::Stratified2p(_)) {
                    assert!(
                        p.weight <= plan.max_weight_bound + 1e-12,
                        "{}: {} > {}",
                        spec.name(),
                        p.weight,
                        plan.max_weight_bound
                    );
                }
            }
        }
    }

    #[test]
    fn predict_clamps_to_the_slice_count() {
        let opts = SimPointOptions {
            max_k: 10,
            ..SimPointOptions::default()
        };
        // n = 4 slices: every strategy clamps to at most 4 regions, and
        // census selections bound each weight by 1/n.
        let sp = StrategySpec::SimPoint.predict(&opts, 4);
        assert_eq!((sp.regions, sp.samples, sp.replicates), (4, 4, 1));
        assert!(sp.max_weight_bound.is_infinite());
        let s2p = StrategySpec::parse("stratified2p")
            .unwrap()
            .predict(&opts, 4);
        assert_eq!((s2p.regions, s2p.replicates), (4, 1));
        assert_eq!(s2p.max_weight_bound, 0.25);
        let rss = StrategySpec::parse("rss").unwrap().predict(&opts, 4);
        assert_eq!((rss.regions, rss.samples, rss.replicates), (4, 20, 5));
        assert_eq!(rss.max_weight_bound, 0.25);
        // k = 1 is the one SimPoint shape with a static weight bound.
        let k1 = SimPointOptions {
            max_k: 1,
            ..SimPointOptions::default()
        };
        assert_eq!(StrategySpec::SimPoint.predict(&k1, 4).max_weight_bound, 1.0);
    }
}

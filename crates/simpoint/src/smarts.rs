//! SMARTS/SimFlex-style statistical sampling (Wunderlich et al., ISCA 2003;
//! Wenisch et al., IEEE Micro 2006).
//!
//! Where SimPoint picks *representative* slices by clustering, statistical
//! sampling measures many tiny units chosen systematically or at random
//! and reports a confidence interval from the central limit theorem. The
//! paper discusses this family as related work; this module implements the
//! estimator so the harness can compare both approaches under matched
//! budgets (`smarts_compare` bench).

/// Two-sided z-scores for common confidence levels.
fn z_score(confidence: f64) -> f64 {
    // Interpolation is unnecessary: simulation practice uses these levels.
    match confidence {
        c if (c - 0.90).abs() < 1e-9 => 1.6449,
        c if (c - 0.95).abs() < 1e-9 => 1.9600,
        c if (c - 0.99).abs() < 1e-9 => 2.5758,
        _ => panic!("unsupported confidence level {confidence}; use 0.90/0.95/0.99"),
    }
}

/// A population estimate from a set of sampled measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub stddev: f64,
    /// Number of sampled units.
    pub n: usize,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// The confidence level used.
    pub confidence: f64,
}

impl Estimate {
    /// Relative error bound: half-width / mean (infinite when the mean is
    /// zero).
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// Whether `value` lies inside the interval.
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }
}

/// Estimates the population mean of `samples` with a CLT confidence
/// interval at `confidence` ∈ {0.90, 0.95, 0.99}.
///
/// # Panics
///
/// Panics if `samples` has fewer than 2 elements or the confidence level
/// is unsupported.
pub fn estimate(samples: &[f64], confidence: f64) -> Estimate {
    assert!(samples.len() >= 2, "need at least two sampled units");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    let stddev = var.sqrt();
    let half_width = z_score(confidence) * stddev / n.sqrt();
    Estimate {
        mean,
        stddev,
        n: samples.len(),
        half_width,
        confidence,
    }
}

/// SMARTS' sample-size rule: the number of units needed so that the
/// relative error bound is at most `rel_err` at `confidence`, given the
/// coefficient of variation `cov = stddev / mean` observed in a pilot
/// sample. (SMARTS eq. 1: `n ≥ (z · V / ε)²`.)
///
/// # Panics
///
/// Panics if `rel_err` or `cov` is not positive, or the confidence level
/// is unsupported.
pub fn required_units(cov: f64, confidence: f64, rel_err: f64) -> usize {
    assert!(cov > 0.0, "coefficient of variation must be positive");
    assert!(rel_err > 0.0, "relative error bound must be positive");
    let z = z_score(confidence);
    ((z * cov / rel_err).powi(2)).ceil() as usize
}

/// Systematic (every k-th) selection of `count` unit indices from
/// `population` units, starting mid-stratum — the SMARTS sampling
/// discipline.
///
/// # Panics
///
/// Panics if `count` is zero or `population` is zero.
pub fn systematic_indices(population: u64, count: usize) -> Vec<u64> {
    assert!(count > 0, "count must be positive");
    assert!(population > 0, "population must be positive");
    let count = count.min(population as usize);
    (0..count)
        .map(|i| (((i as f64 + 0.5) * population as f64 / count as f64) as u64).min(population - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_util::rng::Xoshiro256StarStar;

    #[test]
    fn estimate_on_constant_data_has_zero_width() {
        let e = estimate(&[5.0; 10], 0.95);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.half_width, 0.0);
        assert!(e.covers(5.0));
        assert!(!e.covers(5.1));
    }

    #[test]
    fn interval_covers_true_mean_usually() {
        // 200 repetitions of estimating a uniform(0,1) mean from 100
        // samples at 95% confidence: coverage should be near 95%.
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut covered = 0;
        let reps = 200;
        for _ in 0..reps {
            let samples: Vec<f64> = (0..100).map(|_| rng.next_f64()).collect();
            if estimate(&samples, 0.95).covers(0.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / reps as f64;
        assert!((0.88..=1.0).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn width_shrinks_with_sample_size() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let big: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        let small = &big[..100];
        let e_small = estimate(small, 0.95);
        let e_big = estimate(&big, 0.95);
        assert!(e_big.half_width < e_small.half_width / 5.0);
    }

    #[test]
    fn required_units_matches_formula() {
        // z=1.96, V=1, eps=0.05 -> (1.96/0.05)^2 ≈ 1537.
        assert_eq!(required_units(1.0, 0.95, 0.05), 1537);
        // Tighter error needs quadratically more units.
        assert_eq!(required_units(1.0, 0.95, 0.025), 6147);
        // Higher confidence needs more units.
        assert!(required_units(1.0, 0.99, 0.05) > required_units(1.0, 0.90, 0.05));
    }

    #[test]
    fn systematic_indices_spread() {
        let idx = systematic_indices(1000, 4);
        assert_eq!(idx, vec![125, 375, 625, 875]);
        let idx = systematic_indices(3, 10);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence")]
    fn weird_confidence_panics() {
        estimate(&[1.0, 2.0], 0.5);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_sample_panics() {
        estimate(&[1.0], 0.95);
    }
}

//! Bayesian Information Criterion scoring of clusterings.
//!
//! SimPoint selects the number of clusters by scoring each k-means result
//! with the BIC formulation of Pelleg & Moore (X-means, ICML 2000), under a
//! spherical Gaussian model, then choosing the smallest `k` whose score
//! reaches a threshold fraction of the score range (SimPoint's default
//! is 0.9).

use crate::kmeans::KmeansResult;

/// BIC score of a clustering over `n` points of dimension `dim`.
/// Higher is better.
///
/// # Panics
///
/// Panics if the result's assignment count is zero or `dim` is zero.
pub fn bic_score(result: &KmeansResult, dim: usize) -> f64 {
    let n = result.assignments.len();
    assert!(n > 0, "cannot score an empty clustering");
    assert!(dim > 0, "dim must be positive");
    let k = result.k;
    let sizes = result.cluster_sizes();
    // Pooled MLE variance under the identical spherical Gaussian model.
    let denom = (n.saturating_sub(k)).max(1) as f64;
    let sigma2 = (result.inertia / denom).max(1e-12);
    let nf = n as f64;
    let d = dim as f64;
    let mut loglik = 0.0;
    for &r in sizes {
        if r == 0 {
            continue;
        }
        let rf = r as f64;
        loglik += rf * rf.ln()
            - rf * nf.ln()
            - rf * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rf - 1.0) * d / 2.0;
    }
    // Free parameters: k-1 mixing weights, k*d centroid coordinates, one
    // shared variance.
    let p = (k as f64 - 1.0) + k as f64 * d + 1.0;
    loglik - p / 2.0 * nf.ln()
}

/// Given `(k, bic)` pairs, returns the smallest `k` whose BIC reaches
/// `threshold` of the way from the minimum to the maximum score — the
/// SimPoint 3.0 selection rule.
///
/// # Panics
///
/// Panics if `scores` is empty or `threshold` is outside `[0, 1]`.
pub fn choose_k(scores: &[(usize, f64)], threshold: f64) -> usize {
    assert!(!scores.is_empty(), "need at least one score");
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0, 1]"
    );
    let max = scores
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    let min = scores.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    let cutoff = if (max - min).abs() < f64::EPSILON {
        max
    } else {
        min + threshold * (max - min)
    };
    let mut candidates: Vec<(usize, f64)> = scores
        .iter()
        .copied()
        .filter(|&(_, s)| s >= cutoff)
        .collect();
    candidates.sort_by_key(|&(k, _)| k);
    candidates
        .first()
        .expect("cutoff <= max guarantees a candidate")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;
    use sampsim_util::rng::Xoshiro256StarStar;

    fn blobs(k: usize, per: usize, spread: f64) -> (Vec<f64>, usize) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut data = Vec::new();
        for c in 0..k {
            let cx = c as f64 * 20.0;
            for _ in 0..per {
                data.push(cx + (rng.next_f64() - 0.5) * spread);
                data.push((rng.next_f64() - 0.5) * spread);
            }
        }
        (data, k * per)
    }

    #[test]
    fn bic_peaks_near_true_k() {
        let (data, n) = blobs(4, 50, 1.0);
        let scores: Vec<(usize, f64)> = (1..=10)
            .map(|k| {
                let r = kmeans(&data, n, 2, k, 100, 3).unwrap();
                (k, bic_score(&r, 2))
            })
            .collect();
        let chosen = choose_k(&scores, 0.9);
        assert!(
            (3..=6).contains(&chosen),
            "chosen {chosen}, scores {scores:?}"
        );
        // Scores at the true k should beat k=1 decisively.
        let s1 = scores[0].1;
        let s4 = scores[3].1;
        assert!(s4 > s1);
    }

    #[test]
    fn choose_k_prefers_smallest_above_cutoff() {
        let scores = vec![(1, 0.0), (2, 95.0), (3, 100.0), (4, 99.0)];
        assert_eq!(choose_k(&scores, 0.9), 2);
        assert_eq!(choose_k(&scores, 1.0), 3);
        assert_eq!(choose_k(&scores, 0.0), 1);
    }

    #[test]
    fn choose_k_flat_scores() {
        let scores = vec![(1, 5.0), (2, 5.0)];
        assert_eq!(choose_k(&scores, 0.9), 1);
    }

    #[test]
    #[should_panic(expected = "at least one score")]
    fn empty_scores_panic() {
        choose_k(&[], 0.9);
    }

    #[test]
    fn zero_inertia_does_not_nan() {
        let data = vec![1.0; 10];
        let r = kmeans(&data, 5, 2, 1, 10, 1).unwrap();
        let s = bic_score(&r, 2);
        assert!(s.is_finite());
    }
}

#[cfg(test)]
mod choose_k_extra_tests {
    use super::*;

    #[test]
    fn single_candidate_is_chosen() {
        assert_eq!(choose_k(&[(7, -12.0)], 0.9), 7);
    }

    #[test]
    fn negative_scores_handled() {
        let scores = vec![(1, -1000.0), (2, -100.0), (3, -95.0), (4, -94.0)];
        // range = 906; cutoff = -1000 + 0.9*906 = -184.6 -> smallest k above
        // is 2.
        assert_eq!(choose_k(&scores, 0.9), 2);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn threshold_bounds_checked() {
        choose_k(&[(1, 0.0)], 1.5);
    }
}

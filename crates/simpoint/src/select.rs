//! Simulation-point selection and percentile reduction.

use crate::kmeans::KmeansResult;

/// One simulation point: a representative slice, its cluster, and the
/// fraction of whole-program execution it stands for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Index of the representative slice.
    pub slice: u64,
    /// Cluster this point represents.
    pub cluster: u32,
    /// Cluster weight: cluster size / total slices.
    pub weight: f64,
}

/// For every occupied cluster, picks the member slice closest to the
/// centroid and computes its weight. Points are returned sorted by slice
/// index.
///
/// `data` is the projected matrix the clustering was computed on.
///
/// # Panics
///
/// Panics on shape mismatches between `result` and `data`.
pub fn select_simpoints(result: &KmeansResult, data: &[f64], dim: usize) -> Vec<SimPoint> {
    let n = result.assignments.len();
    assert_eq!(data.len(), n * dim, "data shape mismatch");
    let sizes = result.cluster_sizes();
    let mut best_slice: Vec<Option<(usize, f64)>> = vec![None; result.k];
    for i in 0..n {
        let c = result.assignments[i] as usize;
        let centroid = &result.centroids[c * dim..(c + 1) * dim];
        let p = &data[i * dim..(i + 1) * dim];
        let d: f64 = p.iter().zip(centroid).map(|(x, y)| (x - y) * (x - y)).sum();
        if best_slice[c].is_none_or(|(_, bd)| d < bd) {
            best_slice[c] = Some((i, d));
        }
    }
    let mut points: Vec<SimPoint> = best_slice
        .iter()
        .enumerate()
        .filter_map(|(c, best)| {
            best.map(|(slice, _)| SimPoint {
                slice: slice as u64,
                cluster: c as u32,
                weight: sizes[c] as f64 / n as f64,
            })
        })
        .collect();
    points.sort_by_key(|p| p.slice);
    points
}

/// Keeps the highest-weighted points whose cumulative weight reaches
/// `percentile` (e.g. `0.9` for the paper's "Reduced Regional Run"), then
/// renormalizes the kept weights to sum to 1 so weighted statistics remain
/// well-defined. Points are returned sorted by slice index.
///
/// # Panics
///
/// Panics if `percentile` is outside `(0, 1]` or `points` is empty.
pub fn reduce_to_percentile(points: &[SimPoint], percentile: f64) -> Vec<SimPoint> {
    assert!(
        percentile > 0.0 && percentile <= 1.0,
        "percentile must be in (0, 1]"
    );
    assert!(!points.is_empty(), "no simulation points to reduce");
    let mut sorted: Vec<SimPoint> = points.to_vec();
    sorted.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
    let total: f64 = sorted.iter().map(|p| p.weight).sum();
    let target = percentile * total;
    let mut kept = Vec::new();
    let mut acc = 0.0;
    for p in sorted {
        kept.push(p);
        acc += p.weight;
        // Strict comparison with a tiny epsilon so an exact boundary does
        // not keep one extra point due to floating-point rounding.
        if acc >= target - 1e-12 {
            break;
        }
    }
    let kept_total: f64 = kept.iter().map(|p| p.weight).sum();
    for p in &mut kept {
        p.weight /= kept_total;
    }
    kept.sort_by_key(|p| p.slice);
    kept
}

/// Number of points needed to reach `percentile` of the total weight
/// (Table II's third column), without materializing the reduced set.
pub fn count_at_percentile(points: &[SimPoint], percentile: f64) -> usize {
    if points.is_empty() {
        return 0;
    }
    reduce_to_percentile(points, percentile).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    #[test]
    fn selects_one_point_per_occupied_cluster() {
        // Two blobs in 1-D.
        let data = vec![0.0, 0.1, 0.2, 10.0, 10.1];
        let r = kmeans(&data, 5, 1, 2, 50, 1).unwrap();
        let pts = select_simpoints(&r, &data, 1);
        assert_eq!(pts.len(), 2);
        let w: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-12);
        // Representative of the 3-point blob is the middle point (closest
        // to the mean 0.1).
        let big = pts.iter().find(|p| p.weight > 0.5).unwrap();
        assert_eq!(big.slice, 1);
    }

    fn mk(points: &[(u64, f64)]) -> Vec<SimPoint> {
        points
            .iter()
            .enumerate()
            .map(|(i, &(slice, weight))| SimPoint {
                slice,
                cluster: i as u32,
                weight,
            })
            .collect()
    }

    #[test]
    fn reduce_keeps_dominant_points() {
        let pts = mk(&[(0, 0.6), (1, 0.25), (2, 0.1), (3, 0.05)]);
        let reduced = reduce_to_percentile(&pts, 0.9);
        // 0.6 + 0.25 = 0.85 < 0.9; adding 0.1 reaches 0.95.
        assert_eq!(reduced.len(), 3);
        let w: f64 = reduced.iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-12, "weights renormalized");
        assert!(reduced.windows(2).all(|w| w[0].slice < w[1].slice));
    }

    #[test]
    fn reduce_full_percentile_keeps_all() {
        let pts = mk(&[(0, 0.5), (1, 0.5)]);
        assert_eq!(reduce_to_percentile(&pts, 1.0).len(), 2);
    }

    #[test]
    fn reduce_tiny_percentile_keeps_heaviest() {
        let pts = mk(&[(7, 0.7), (1, 0.3)]);
        let reduced = reduce_to_percentile(&pts, 0.1);
        assert_eq!(reduced.len(), 1);
        assert_eq!(reduced[0].slice, 7);
        assert_eq!(reduced[0].weight, 1.0);
    }

    #[test]
    fn count_at_percentile_matches_reduce() {
        let pts = mk(&[(0, 0.4), (1, 0.3), (2, 0.2), (3, 0.1)]);
        for pct in [0.5, 0.7, 0.9, 1.0] {
            assert_eq!(
                count_at_percentile(&pts, pct),
                reduce_to_percentile(&pts, pct).len()
            );
        }
        assert_eq!(count_at_percentile(&[], 0.9), 0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn bad_percentile_panics() {
        reduce_to_percentile(&mk(&[(0, 1.0)]), 0.0);
    }
}

//! Baseline samplers used as comparison points against SimPoint selection.
//!
//! These implement the classical alternatives SimPoint is usually compared
//! with: *periodic* (SMARTS-style systematic sampling) and *uniform random*
//! slice selection. Both produce the same [`SimPoint`] shape so downstream
//! replay/aggregation code is sampler-agnostic (every selected slice gets
//! an equal weight).

use crate::select::SimPoint;
use sampsim_util::rng::Xoshiro256StarStar;

/// Picks `count` slices spread evenly across `[0, num_slices)`
/// (systematic sampling).
///
/// # Panics
///
/// Panics if `count` is zero or `num_slices` is zero.
pub fn periodic(num_slices: u64, count: usize) -> Vec<SimPoint> {
    assert!(count > 0, "count must be positive");
    assert!(num_slices > 0, "need at least one slice");
    let count = count.min(num_slices as usize);
    let weight = 1.0 / count as f64;
    (0..count)
        .map(|i| {
            // Midpoint of the i-th stratum.
            let slice = ((i as f64 + 0.5) * num_slices as f64 / count as f64) as u64;
            SimPoint {
                slice: slice.min(num_slices - 1),
                cluster: i as u32,
                weight,
            }
        })
        .collect()
}

/// Picks `count` distinct slices uniformly at random.
///
/// # Panics
///
/// Panics if `count` is zero or `num_slices` is zero.
pub fn uniform_random(num_slices: u64, count: usize, seed: u64) -> Vec<SimPoint> {
    assert!(count > 0, "count must be positive");
    assert!(num_slices > 0, "need at least one slice");
    let count = count.min(num_slices as usize);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < count {
        chosen.insert(rng.next_below(num_slices));
    }
    let weight = 1.0 / count as f64;
    chosen
        .into_iter()
        .enumerate()
        .map(|(i, slice)| SimPoint {
            slice,
            cluster: i as u32,
            weight,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_is_spread_and_weighted() {
        let pts = periodic(100, 4);
        assert_eq!(pts.len(), 4);
        assert_eq!(
            pts.iter().map(|p| p.slice).collect::<Vec<_>>(),
            vec![12, 37, 62, 87]
        );
        let w: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_caps_count() {
        let pts = periodic(3, 10);
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn random_is_distinct_sorted_deterministic() {
        let a = uniform_random(1000, 20, 5);
        let b = uniform_random(1000, 20, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].slice < w[1].slice));
        assert_eq!(a.len(), 20);
        let c = uniform_random(1000, 20, 6);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "count must be positive")]
    fn zero_count_panics() {
        periodic(10, 0);
    }
}

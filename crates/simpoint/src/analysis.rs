//! The end-to-end SimPoint analysis driver.

use crate::bbv::Bbv;
use crate::kmeans::{KmeansError, KmeansMode};
use crate::project::DEFAULT_DIM;
use crate::select::SimPoint;
use crate::strategy::SimPointStrategy;
use sampsim_exec::{Jobs, SERIAL};
use std::fmt;

/// Tuning knobs of the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPointOptions {
    /// Maximum number of clusters to consider (the paper's `MaxK`; its
    /// design sweep settles on 35).
    pub max_k: usize,
    /// Projected dimensionality (SimPoint uses 15).
    pub dim: usize,
    /// k-means restarts per candidate `k`.
    pub n_init: u32,
    /// Lloyd iteration cap.
    pub max_iter: u32,
    /// BIC score-range threshold for choosing `k` (SimPoint uses 0.9).
    pub bic_threshold: f64,
    /// Master seed for projection and clustering.
    pub seed: u64,
    /// When more slices than this are present, candidate `k` values are
    /// scored on a deterministic subsample (the final clustering still uses
    /// every slice) — the same cost-control SimPoint 3.0 applies.
    pub sample_size: usize,
    /// Clustering kernel: full Lloyd (default, bit-identical to the
    /// reference oracle) or deterministic mini-batch (tolerance-pinned,
    /// streaming working set).
    pub kmeans_mode: KmeansMode,
}

impl Default for SimPointOptions {
    /// The paper's chosen configuration: `MaxK = 35`, 15 dimensions,
    /// BIC threshold 0.9.
    fn default() -> Self {
        Self {
            max_k: 35,
            dim: DEFAULT_DIM,
            n_init: 2,
            max_iter: 60,
            bic_threshold: 0.9,
            seed: 0x51AB_0DD5,
            sample_size: 8_000,
            kmeans_mode: KmeansMode::Lloyd,
        }
    }
}

/// Errors raised by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimPointError {
    /// No slices were supplied.
    NoSlices,
    /// The clustering kernel rejected its input.
    Kmeans(KmeansError),
}

impl fmt::Display for SimPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimPointError::NoSlices => write!(f, "no slices to analyze"),
            SimPointError::Kmeans(e) => write!(f, "clustering failed: {e}"),
        }
    }
}

impl std::error::Error for SimPointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimPointError::NoSlices => None,
            SimPointError::Kmeans(e) => Some(e),
        }
    }
}

impl From<KmeansError> for SimPointError {
    fn from(e: KmeansError) -> Self {
        SimPointError::Kmeans(e)
    }
}

/// The outcome of a SimPoint analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPointsResult {
    /// Chosen number of clusters.
    pub k: usize,
    /// Slice length the BBVs were collected with (for provenance).
    pub slice_size: u64,
    /// Cluster assignment of every slice.
    pub assignments: Vec<u32>,
    /// The simulation points, sorted by slice index; weights sum to 1.
    pub points: Vec<SimPoint>,
    /// `(k, BIC)` pairs for every candidate `k` that was scored.
    pub bic_scores: Vec<(usize, f64)>,
    /// Average intra-cluster variance of the final clustering.
    pub avg_variance: f64,
}

impl SimPointsResult {
    /// Number of simulation points (occupied clusters).
    pub fn num_points(&self) -> usize {
        self.points.len()
    }
}

/// Runs projection → per-`k` clustering → BIC selection → representative
/// selection.
#[derive(Debug, Clone)]
pub struct SimPointAnalysis {
    options: SimPointOptions,
}

impl SimPointAnalysis {
    /// Creates an analysis with the given options.
    pub fn new(options: SimPointOptions) -> Self {
        Self { options }
    }

    /// The options in use.
    pub fn options(&self) -> &SimPointOptions {
        &self.options
    }

    /// Analyzes one program's slice BBVs (raw counts; normalization happens
    /// internally). `slice_size` is recorded for provenance.
    ///
    /// # Errors
    ///
    /// Returns [`SimPointError::NoSlices`] when `bbvs` is empty.
    pub fn run(&self, bbvs: &[Bbv], slice_size: u64) -> Result<SimPointsResult, SimPointError> {
        self.run_jobs(bbvs, slice_size, SERIAL)
    }

    /// [`SimPointAnalysis::run`] with the k-means restarts fanned out over
    /// `jobs` workers. The job count changes wall-clock time only — the
    /// restart winner is selected deterministically, so the result is
    /// bit-identical to the serial run.
    ///
    /// This is a thin wrapper over [`SimPointStrategy::analyze`], where the
    /// algorithm lives since the strategy refactor; the differential suite
    /// pins the two entry points bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`SimPointError::NoSlices`] when `bbvs` is empty.
    pub fn run_jobs(
        &self,
        bbvs: &[Bbv],
        slice_size: u64,
        jobs: Jobs,
    ) -> Result<SimPointsResult, SimPointError> {
        SimPointStrategy::new(self.options).analyze(bbvs, slice_size, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n_phases` behaviours, `per` slices each, interleaved round-robin,
    /// with mild per-slice noise.
    fn synthetic_bbvs(n_phases: usize, per: usize) -> Vec<Bbv> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let mut out = Vec::new();
        for i in 0..n_phases * per {
            let phase = i % n_phases;
            let base = (phase * 20) as u32;
            let mut counts = vec![
                (base, 800 + (rng.next_below(40)) as u32),
                (base + 1, 150 + (rng.next_below(20)) as u32),
                (base + 2, 50 + (rng.next_below(10)) as u32),
            ];
            counts.sort_by_key(|&(b, _)| b);
            out.push(Bbv::from_counts(counts));
        }
        out
    }

    #[test]
    fn recovers_phase_count() {
        let bbvs = synthetic_bbvs(5, 40);
        let r = SimPointAnalysis::new(SimPointOptions::default())
            .run(&bbvs, 1000)
            .unwrap();
        // BIC creeps up slowly past the true phase count (noise gets
        // subdivided), so the threshold rule may land a few clusters above
        // 5 — exactly like the real SimPoint tool. Assert the chosen k is
        // at least the true count and that the *elbow* (largest score jump)
        // sits at the true count.
        assert!(
            (5..=12).contains(&r.k),
            "expected k in 5..=12, got {} (scores {:?})",
            r.k,
            r.bic_scores
        );
        let jumps: Vec<f64> = r.bic_scores.windows(2).map(|w| w[1].1 - w[0].1).collect();
        let elbow = jumps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| r.bic_scores[i + 1].0)
            .unwrap();
        assert_eq!(elbow, 5, "largest BIC jump should occur at the true k");
        assert_eq!(r.assignments.len(), 200);
        let w: f64 = r.points.iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_reflect_phase_shares() {
        // Phase 0 twice as frequent as phase 1.
        let mut bbvs = Vec::new();
        for i in 0..150 {
            let phase = if i % 3 < 2 { 0u32 } else { 40 };
            bbvs.push(Bbv::from_counts(vec![(phase, 1000), (phase + 1, 100)]));
        }
        let r = SimPointAnalysis::new(SimPointOptions::default())
            .run(&bbvs, 1000)
            .unwrap();
        assert_eq!(r.k, 2, "scores {:?}", r.bic_scores);
        let max_w = r
            .points
            .iter()
            .map(|p| p.weight)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max_w - 2.0 / 3.0).abs() < 0.05, "dominant weight {max_w}");
    }

    #[test]
    fn empty_input_errors() {
        let err = SimPointAnalysis::new(SimPointOptions::default())
            .run(&[], 1000)
            .unwrap_err();
        assert_eq!(err, SimPointError::NoSlices);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn single_slice_is_one_point() {
        let bbvs = vec![Bbv::from_counts(vec![(0, 100)])];
        let r = SimPointAnalysis::new(SimPointOptions::default())
            .run(&bbvs, 1000)
            .unwrap();
        assert_eq!(r.k, 1);
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].weight, 1.0);
    }

    #[test]
    fn max_k_limits_clusters() {
        let bbvs = synthetic_bbvs(10, 30);
        let opts = SimPointOptions {
            max_k: 3,
            ..Default::default()
        };
        let r = SimPointAnalysis::new(opts).run(&bbvs, 1000).unwrap();
        assert!(r.k <= 3);
        // Forcing too few clusters raises the intra-cluster variance
        // (Fig. 4's phenomenon).
        let full = SimPointAnalysis::new(SimPointOptions::default())
            .run(&bbvs, 1000)
            .unwrap();
        assert!(r.avg_variance > full.avg_variance);
    }

    #[test]
    fn deterministic() {
        let bbvs = synthetic_bbvs(4, 30);
        let a = SimPointAnalysis::new(SimPointOptions::default())
            .run(&bbvs, 1000)
            .unwrap();
        let b = SimPointAnalysis::new(SimPointOptions::default())
            .run(&bbvs, 1000)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn subsampling_path_works() {
        let bbvs = synthetic_bbvs(3, 300); // 900 slices
        let opts = SimPointOptions {
            sample_size: 200,
            ..Default::default()
        };
        let r = SimPointAnalysis::new(opts).run(&bbvs, 1000).unwrap();
        assert!((3..=9).contains(&r.k), "k = {}", r.k);
        assert_eq!(r.assignments.len(), 900, "final clustering uses all slices");
    }

    use sampsim_util::rng::Xoshiro256StarStar;
}

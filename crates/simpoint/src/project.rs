//! Random projection of BBVs to a low-dimensional dense space.
//!
//! SimPoint projects (potentially huge) BBVs down to 15 dimensions before
//! clustering; random projection approximately preserves distances
//! (Johnson–Lindenstrauss) at a fraction of the cost. The projection matrix
//! is generated deterministically from a seed, so analyses are
//! reproducible.

use crate::bbv::Bbv;
use sampsim_util::rng::SplitMix64;

/// The projected dimensionality used by SimPoint.
pub const DEFAULT_DIM: usize = 15;

/// A deterministic random projection from block space to `dim` dense
/// dimensions.
#[derive(Debug, Clone)]
pub struct RandomProjection {
    dim: usize,
    seed: u64,
}

impl RandomProjection {
    /// Creates a projection onto `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "projection dimension must be positive");
        Self { dim, seed }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The matrix row for `block`: `dim` values uniform in `[-1, 1]`,
    /// generated on demand from the seed.
    fn row(&self, block: u32, out: &mut [f64]) {
        let mut rng = SplitMix64::new(self.seed ^ (u64::from(block).wrapping_mul(0x9E37_79B9)));
        for slot in out.iter_mut() {
            // Map to [-1, 1).
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            *slot = 2.0 * u - 1.0;
        }
    }

    /// Projects one (typically normalized) BBV.
    pub fn project(&self, bbv: &Bbv) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        let mut row = vec![0.0; self.dim];
        for &(block, value) in bbv.entries() {
            self.row(block, &mut row);
            for (o, r) in out.iter_mut().zip(&row) {
                *o += value * r;
            }
        }
        out
    }

    /// Projects a batch of BBVs into a flat row-major matrix
    /// (`bbvs.len() * dim` values).
    pub fn project_all(&self, bbvs: &[Bbv]) -> Vec<f64> {
        let mut out = Vec::with_capacity(bbvs.len() * self.dim);
        for bbv in bbvs {
            out.extend(self.project(bbv));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = RandomProjection::new(15, 7);
        let v = Bbv::from_counts(vec![(3, 10), (900, 5)]).normalized();
        assert_eq!(p.project(&v), p.project(&v));
        let p2 = RandomProjection::new(15, 8);
        assert_ne!(p.project(&v), p2.project(&v));
    }

    #[test]
    fn identical_bbvs_project_identically() {
        let p = RandomProjection::new(15, 1);
        let a = Bbv::from_counts(vec![(0, 50), (10, 50)]).normalized();
        let b = Bbv::from_counts(vec![(0, 50), (10, 50)]).normalized();
        assert_eq!(p.project(&a), p.project(&b));
    }

    #[test]
    fn preserves_relative_distance_roughly() {
        // near-identical vectors should project much closer than disjoint ones.
        let p = RandomProjection::new(15, 42);
        let a = Bbv::from_counts(vec![(0, 100)]).normalized();
        let a2 = Bbv::from_counts(vec![(0, 99), (1, 1)]).normalized();
        let far = Bbv::from_counts(vec![(500, 100)]).normalized();
        let d = |x: &[f64], y: &[f64]| -> f64 {
            x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum::<f64>()
        };
        let pa = p.project(&a);
        let pa2 = p.project(&a2);
        let pfar = p.project(&far);
        assert!(d(&pa, &pa2) * 10.0 < d(&pa, &pfar));
    }

    #[test]
    fn project_all_shape() {
        let p = RandomProjection::new(5, 1);
        let bbvs = vec![
            Bbv::from_counts(vec![(0, 1)]),
            Bbv::from_counts(vec![(1, 1)]),
            Bbv::from_counts(vec![]),
        ];
        let m = p.project_all(&bbvs);
        assert_eq!(m.len(), 15);
        assert!(m[10..].iter().all(|&x| x == 0.0), "empty bbv projects to 0");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        RandomProjection::new(0, 1);
    }
}

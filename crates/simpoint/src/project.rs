//! Random projection of BBVs to a low-dimensional dense space.
//!
//! SimPoint projects (potentially huge) BBVs down to 15 dimensions before
//! clustering; random projection approximately preserves distances
//! (Johnson–Lindenstrauss) at a fraction of the cost. The projection matrix
//! is generated deterministically from a seed, so analyses are
//! reproducible.
//!
//! The batch entry points ([`RandomProjection::project_all`],
//! [`RandomProjection::project_all_normalized`]) work sparsely end to end:
//! each BBV's `(block, weight)` entries are pushed straight through the
//! projection matrix — no dense per-slice vector is ever materialized —
//! and matrix rows are generated once per distinct block and reused from a
//! flat row-major cache. The per-entry accumulation order is unchanged, so
//! the output is bit-identical to projecting each BBV in isolation (and to
//! the dense walk, see [`RandomProjection::project_dense_reference`]).

use crate::bbv::Bbv;
use sampsim_util::rng::SplitMix64;
use std::collections::HashMap;

/// The projected dimensionality used by SimPoint.
pub const DEFAULT_DIM: usize = 15;

/// A deterministic random projection from block space to `dim` dense
/// dimensions.
#[derive(Debug, Clone)]
pub struct RandomProjection {
    dim: usize,
    seed: u64,
}

/// Caches generated projection-matrix rows in one flat row-major buffer,
/// so a block shared by many BBVs costs one RNG sweep instead of one per
/// occurrence.
#[derive(Debug)]
struct RowCache {
    index: HashMap<u32, usize>,
    rows: Vec<f64>,
    dim: usize,
}

impl RowCache {
    fn new(dim: usize) -> Self {
        Self {
            index: HashMap::new(),
            rows: Vec::new(),
            dim,
        }
    }

    /// The matrix row for `block`, generating and caching it on first use.
    fn row(&mut self, projection: &RandomProjection, block: u32) -> &[f64] {
        let dim = self.dim;
        let rows = &mut self.rows;
        let start = *self.index.entry(block).or_insert_with(|| {
            let start = rows.len();
            rows.resize(start + dim, 0.0);
            projection.row(block, &mut rows[start..start + dim]);
            start
        });
        &self.rows[start..start + dim]
    }
}

impl RandomProjection {
    /// Creates a projection onto `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "projection dimension must be positive");
        Self { dim, seed }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The matrix row for `block`: `dim` values uniform in `[-1, 1]`,
    /// generated on demand from the seed.
    fn row(&self, block: u32, out: &mut [f64]) {
        let mut rng = SplitMix64::new(self.seed ^ (u64::from(block).wrapping_mul(0x9E37_79B9)));
        for slot in out.iter_mut() {
            // Map to [-1, 1).
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            *slot = 2.0 * u - 1.0;
        }
    }

    /// Projects one (typically normalized) BBV.
    pub fn project(&self, bbv: &Bbv) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        let mut row = vec![0.0; self.dim];
        for &(block, value) in bbv.entries() {
            self.row(block, &mut row);
            for (o, r) in out.iter_mut().zip(&row) {
                *o += value * r;
            }
        }
        out
    }

    /// Projects a batch of BBVs into a flat row-major matrix
    /// (`bbvs.len() * dim` values), generating each distinct block's
    /// matrix row exactly once. Bit-identical to projecting each BBV
    /// with [`RandomProjection::project`].
    pub fn project_all(&self, bbvs: &[Bbv]) -> Vec<f64> {
        self.project_batch(bbvs, false)
    }

    /// Projects a batch of BBVs after L1 normalization, without cloning
    /// normalized copies: each weight is divided by its BBV's L1 norm on
    /// the fly — the same `v / norm` then `* r` operations, in the same
    /// order, as `bbv.normalized()` followed by
    /// [`RandomProjection::project`], hence bit-identical to that path.
    pub fn project_all_normalized(&self, bbvs: &[Bbv]) -> Vec<f64> {
        self.project_batch(bbvs, true)
    }

    fn project_batch(&self, bbvs: &[Bbv], normalize: bool) -> Vec<f64> {
        let dim = self.dim;
        let mut out = vec![0.0; bbvs.len() * dim];
        let mut cache = RowCache::new(dim);
        for (slot, bbv) in out.chunks_exact_mut(dim).zip(bbvs) {
            let norm = if normalize { bbv.l1_norm() } else { 0.0 };
            let scale = normalize && norm != 0.0;
            for &(block, value) in bbv.entries() {
                let value = if scale { value / norm } else { value };
                let row = cache.row(self, block);
                for (o, &r) in slot.iter_mut().zip(row) {
                    *o += value * r;
                }
            }
        }
        out
    }

    /// Creates a streaming projector sharing this projection's matrix.
    pub fn streaming(&self) -> StreamingProjector {
        StreamingProjector {
            projection: self.clone(),
            cache: RowCache::new(self.dim),
            rows: Vec::new(),
            count: 0,
        }
    }

    /// Dense-walk reference projection for one BBV: materializes the full
    /// dense vector up to `num_blocks` and multiplies every block —
    /// present or not — through the matrix. The zero blocks contribute
    /// exact zero terms, so the result is bit-identical to the sparse
    /// path; kept as the differential-testing oracle.
    ///
    /// # Panics
    ///
    /// Panics if `bbv` references a block at or beyond `num_blocks`.
    pub fn project_dense_reference(&self, bbv: &Bbv, num_blocks: u32) -> Vec<f64> {
        let mut dense = vec![0.0f64; num_blocks as usize];
        for &(block, value) in bbv.entries() {
            dense[block as usize] = value;
        }
        let mut out = vec![0.0; self.dim];
        let mut row = vec![0.0; self.dim];
        for (block, &value) in dense.iter().enumerate() {
            self.row(block as u32, &mut row);
            for (o, r) in out.iter_mut().zip(&row) {
                *o += value * r;
            }
        }
        out
    }
}

/// Streaming counterpart of [`RandomProjection::project_all_normalized`]:
/// BBVs are pushed one at a time — as a profiling shard produces them —
/// and only their `dim`-dimensional projections are retained, so peak
/// memory is `O(slices * dim + distinct_blocks * dim)` instead of holding
/// every sparse BBV alive until a batch call.
///
/// Bit-identity: `push_normalized` performs exactly the per-BBV operations
/// of the batch path — the same `value / norm` then `out[j] += value *
/// row[j]` accumulation in entry order, with matrix rows that are a pure
/// function of `(seed, block)` — so the concatenated rows equal
/// [`RandomProjection::project_all_normalized`] bit-for-bit regardless of
/// how BBVs are split across projectors (see the pipeline differential
/// tests).
#[derive(Debug)]
pub struct StreamingProjector {
    projection: RandomProjection,
    cache: RowCache,
    rows: Vec<f64>,
    count: usize,
}

impl StreamingProjector {
    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.projection.dim
    }

    /// BBVs pushed so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Projects one raw (un-normalized) BBV and appends its row.
    pub fn push(&mut self, bbv: &Bbv) {
        self.push_inner(bbv, false);
    }

    /// Projects one BBV after on-the-fly L1 normalization and appends its
    /// row — the streaming form of
    /// [`RandomProjection::project_all_normalized`].
    pub fn push_normalized(&mut self, bbv: &Bbv) {
        self.push_inner(bbv, true);
    }

    fn push_inner(&mut self, bbv: &Bbv, normalize: bool) {
        let dim = self.projection.dim;
        let start = self.rows.len();
        self.rows.resize(start + dim, 0.0);
        let slot = &mut self.rows[start..start + dim];
        let norm = if normalize { bbv.l1_norm() } else { 0.0 };
        let scale = normalize && norm != 0.0;
        for &(block, value) in bbv.entries() {
            let value = if scale { value / norm } else { value };
            let row = self.cache.row(&self.projection, block);
            for (o, &r) in slot.iter_mut().zip(row) {
                *o += value * r;
            }
        }
        self.count += 1;
    }

    /// Projected rows so far (flat row-major, `len() * dim` values).
    pub fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Consumes the projector, returning the flat row-major matrix.
    pub fn into_rows(self) -> Vec<f64> {
        self.rows
    }

    /// Appends another projector's rows (shard concatenation, in shard
    /// order). Panics if the dimensions differ.
    pub fn absorb(&mut self, other: StreamingProjector) {
        assert_eq!(
            self.projection.dim, other.projection.dim,
            "cannot absorb a projector of different dimension"
        );
        self.rows.extend_from_slice(&other.rows);
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = RandomProjection::new(15, 7);
        let v = Bbv::from_counts(vec![(3, 10), (900, 5)]).normalized();
        assert_eq!(p.project(&v), p.project(&v));
        let p2 = RandomProjection::new(15, 8);
        assert_ne!(p.project(&v), p2.project(&v));
    }

    #[test]
    fn identical_bbvs_project_identically() {
        let p = RandomProjection::new(15, 1);
        let a = Bbv::from_counts(vec![(0, 50), (10, 50)]).normalized();
        let b = Bbv::from_counts(vec![(0, 50), (10, 50)]).normalized();
        assert_eq!(p.project(&a), p.project(&b));
    }

    #[test]
    fn preserves_relative_distance_roughly() {
        // near-identical vectors should project much closer than disjoint ones.
        let p = RandomProjection::new(15, 42);
        let a = Bbv::from_counts(vec![(0, 100)]).normalized();
        let a2 = Bbv::from_counts(vec![(0, 99), (1, 1)]).normalized();
        let far = Bbv::from_counts(vec![(500, 100)]).normalized();
        let d = |x: &[f64], y: &[f64]| -> f64 {
            x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum::<f64>()
        };
        let pa = p.project(&a);
        let pa2 = p.project(&a2);
        let pfar = p.project(&far);
        assert!(d(&pa, &pa2) * 10.0 < d(&pa, &pfar));
    }

    #[test]
    fn project_all_shape() {
        let p = RandomProjection::new(5, 1);
        let bbvs = vec![
            Bbv::from_counts(vec![(0, 1)]),
            Bbv::from_counts(vec![(1, 1)]),
            Bbv::from_counts(vec![]),
        ];
        let m = p.project_all(&bbvs);
        assert_eq!(m.len(), 15);
        assert!(m[10..].iter().all(|&x| x == 0.0), "empty bbv projects to 0");
    }

    #[test]
    fn cached_batch_matches_per_bbv_projection_bitwise() {
        let p = RandomProjection::new(15, 77);
        let bbvs: Vec<Bbv> = (0..20)
            .map(|i| {
                // Heavy block sharing so the row cache actually hits.
                Bbv::from_counts(vec![(0, i + 1), (7, 3), (i + 100, 2 * i + 1)])
            })
            .collect();
        let batch = p.project_all(&bbvs);
        for (i, bbv) in bbvs.iter().enumerate() {
            let single = p.project(bbv);
            for (j, (a, b)) in batch[i * 15..(i + 1) * 15].iter().zip(&single).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "bbv {i} dim {j}");
            }
        }
    }

    #[test]
    fn normalized_batch_matches_clone_then_project_bitwise() {
        let p = RandomProjection::new(15, 5);
        let bbvs = vec![
            Bbv::from_counts(vec![(2, 9), (5, 1), (40, 30)]),
            Bbv::from_counts(vec![]),
            Bbv::from_counts(vec![(2, 1)]),
        ];
        let batch = p.project_all_normalized(&bbvs);
        for (i, bbv) in bbvs.iter().enumerate() {
            let oracle = p.project(&bbv.normalized());
            for (j, (a, b)) in batch[i * 15..(i + 1) * 15].iter().zip(&oracle).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "bbv {i} dim {j}");
            }
        }
    }

    #[test]
    fn sparse_matches_dense_reference_bitwise() {
        let p = RandomProjection::new(15, 123);
        let bbv = Bbv::from_counts(vec![(1, 5), (9, 2), (63, 11)]).normalized();
        let sparse = p.project(&bbv);
        let dense = p.project_dense_reference(&bbv, 64);
        for (a, b) in sparse.iter().zip(&dense) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        RandomProjection::new(0, 1);
    }

    fn mixed_bbvs() -> Vec<Bbv> {
        (0..25)
            .map(|i| {
                if i % 7 == 0 {
                    Bbv::from_counts(vec![])
                } else {
                    Bbv::from_counts(vec![(0, i + 1), (7, 3), (i + 50, 2 * i + 1)])
                }
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_bitwise() {
        let p = RandomProjection::new(15, 99);
        let bbvs = mixed_bbvs();
        let batch = p.project_all_normalized(&bbvs);
        let mut s = p.streaming();
        assert!(s.is_empty());
        for bbv in &bbvs {
            s.push_normalized(bbv);
        }
        assert_eq!(s.len(), bbvs.len());
        assert_eq!(s.rows().len(), batch.len());
        for (i, (a, b)) in s.rows().iter().zip(&batch).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "value {i}");
        }
    }

    #[test]
    fn sharded_streaming_concatenation_matches_batch_bitwise() {
        // Split the BBV stream across per-shard projectors (each with its
        // own row cache) and absorb in shard order: identical to one
        // projector seeing the whole stream, because matrix rows depend
        // only on (seed, block) and rows never interact.
        let p = RandomProjection::new(15, 31);
        let bbvs = mixed_bbvs();
        let batch = p.project_all_normalized(&bbvs);
        let mut combined = p.streaming();
        for shard in bbvs.chunks(7) {
            let mut worker = p.streaming();
            for bbv in shard {
                worker.push_normalized(bbv);
            }
            combined.absorb(worker);
        }
        for (i, (a, b)) in combined.rows().iter().zip(&batch).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "value {i}");
        }
        assert_eq!(combined.into_rows().len(), batch.len());
    }

    #[test]
    fn streaming_raw_push_matches_project_all() {
        let p = RandomProjection::new(8, 12);
        let bbvs = mixed_bbvs();
        let batch = p.project_all(&bbvs);
        let mut s = p.streaming();
        for bbv in &bbvs {
            s.push(bbv);
        }
        for (a, b) in s.rows().iter().zip(&batch) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

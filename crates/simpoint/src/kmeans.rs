//! Lloyd's k-means with k-means++ seeding.
//!
//! Operates on a flat row-major matrix of projected BBVs. Deterministic for
//! a given seed; empty clusters are reseeded to the point farthest from its
//! centroid so every requested cluster survives when the data supports it.

use sampsim_util::rng::Xoshiro256StarStar;

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Number of clusters requested.
    pub k: usize,
    /// Cluster assignment per point.
    pub assignments: Vec<u32>,
    /// Flat row-major centroid matrix (`k * dim`).
    pub centroids: Vec<f64>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: u32,
}

impl KmeansResult {
    /// Cluster sizes (points per cluster).
    pub fn cluster_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.k];
        for &a in &self.assignments {
            sizes[a as usize] += 1;
        }
        sizes
    }

    /// Number of clusters that actually contain points.
    pub fn occupied_clusters(&self) -> usize {
        self.cluster_sizes().iter().filter(|&&s| s > 0).count()
    }

    /// Average intra-cluster variance: inertia divided by point count
    /// (the Fig. 4 metric).
    pub fn avg_variance(&self) -> f64 {
        if self.assignments.is_empty() {
            0.0
        } else {
            self.inertia / self.assignments.len() as f64
        }
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on `n` points of `dim` dimensions stored row-major in
/// `data`.
///
/// # Panics
///
/// Panics if `k` is zero, `dim` is zero, `data.len() != n * dim`, or there
/// are no points.
pub fn kmeans(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
) -> KmeansResult {
    assert!(k > 0, "k must be positive");
    assert!(dim > 0, "dim must be positive");
    assert!(n > 0, "need at least one point");
    assert_eq!(data.len(), n * dim, "data shape mismatch");
    let k = k.min(n);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut centroids = plus_plus_init(data, n, dim, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut iterations = 0;
    let mut inertia = f64::INFINITY;
    for iter in 0..max_iter {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        let mut new_inertia = 0.0;
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_dist(p, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_inertia += best_d;
        }
        inertia = new_inertia;
        if !changed && iter > 0 {
            break;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for i in 0..n {
            let c = assignments[i] as usize;
            counts[c] += 1;
            let p = &data[i * dim..(i + 1) * dim];
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point farthest from its
                // current centroid.
                let mut far = 0usize;
                let mut far_d = -1.0;
                for i in 0..n {
                    let p = &data[i * dim..(i + 1) * dim];
                    let c_own = assignments[i] as usize;
                    let d = sq_dist(p, &centroids[c_own * dim..(c_own + 1) * dim]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c * dim..(c + 1) * dim]
                    .copy_from_slice(&data[far * dim..(far + 1) * dim]);
            } else {
                for (cc, s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *cc = s / counts[c] as f64;
                }
            }
        }
    }
    KmeansResult {
        k,
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

/// k-means++ seeding (Arthur & Vassilvitskii, 2007).
fn plus_plus_init(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    rng: &mut Xoshiro256StarStar,
) -> Vec<f64> {
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.next_below(n as u64) as usize;
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);
    let mut dists: Vec<f64> = (0..n)
        .map(|i| sq_dist(&data[i * dim..(i + 1) * dim], &centroids[0..dim]))
        .collect();
    for c in 1..k {
        let total: f64 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; any point works.
            rng.next_below(n as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.extend_from_slice(&data[chosen * dim..(chosen + 1) * dim]);
        for i in 0..n {
            let d = sq_dist(
                &data[i * dim..(i + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            );
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

/// Runs k-means `n_init` times with different derived seeds, returning the
/// run with the lowest inertia.
///
/// # Panics
///
/// As [`kmeans`]; additionally if `n_init` is zero.
pub fn kmeans_best_of(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
    n_init: u32,
) -> KmeansResult {
    assert!(n_init > 0, "n_init must be positive");
    let mut best: Option<KmeansResult> = None;
    for run in 0..n_init {
        let r = kmeans(data, n, dim, k, max_iter, seed.wrapping_add(u64::from(run) * 0x9E37));
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    best.expect("n_init > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs() -> (Vec<f64>, usize) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..40 {
                data.push(cx + rng.next_f64() - 0.5);
                data.push(cy + rng.next_f64() - 0.5);
            }
        }
        (data, 120)
    }

    #[test]
    fn recovers_blobs() {
        let (data, n) = blobs();
        let r = kmeans(&data, n, 2, 3, 100, 1);
        assert_eq!(r.occupied_clusters(), 3);
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 40), "sizes {sizes:?}");
        // Points in the same blob share a cluster.
        for blob in 0..3 {
            let first = r.assignments[blob * 40];
            assert!(r.assignments[blob * 40..(blob + 1) * 40]
                .iter()
                .all(|&a| a == first));
        }
        assert!(r.avg_variance() < 1.0);
    }

    #[test]
    fn k_capped_at_n() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let r = kmeans(&data, 2, 2, 10, 50, 1);
        assert_eq!(r.k, 2);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn identical_points_one_cluster_zero_inertia() {
        let data = vec![3.0; 20]; // 10 identical 2-D points
        let r = kmeans(&data, 10, 2, 3, 50, 1);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, n) = blobs();
        let a = kmeans(&data, n, 2, 3, 100, 5);
        let b = kmeans(&data, n, 2, 3, 100, 5);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn more_clusters_never_increase_inertia_much() {
        let (data, n) = blobs();
        let k3 = kmeans_best_of(&data, n, 2, 3, 100, 1, 3);
        let k6 = kmeans_best_of(&data, n, 2, 6, 100, 1, 3);
        assert!(k6.inertia <= k3.inertia * 1.01);
    }

    #[test]
    fn best_of_picks_lowest_inertia() {
        let (data, n) = blobs();
        let single = kmeans(&data, n, 2, 3, 100, 1);
        let multi = kmeans_best_of(&data, n, 2, 3, 100, 1, 5);
        assert!(multi.inertia <= single.inertia + 1e-9);
    }

    #[test]
    #[should_panic(expected = "data shape mismatch")]
    fn shape_checked() {
        kmeans(&[1.0, 2.0, 3.0], 2, 2, 1, 10, 1);
    }
}

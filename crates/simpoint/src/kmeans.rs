//! Lloyd's k-means with k-means++ seeding.
//!
//! Operates on a flat row-major matrix of projected BBVs. Deterministic for
//! a given seed; empty clusters are reseeded to the point farthest from its
//! centroid so every requested cluster survives when the data supports it.

use sampsim_util::rng::Xoshiro256StarStar;
use std::fmt;

/// Invalid input to [`kmeans`] / [`kmeans_best_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmeansError {
    /// No points to cluster (`n == 0`).
    NoPoints,
    /// Zero-dimensional points (`dim == 0`).
    ZeroDim,
    /// Zero clusters requested (`k == 0`).
    ZeroK,
    /// Zero restarts requested (`n_init == 0`).
    ZeroInit,
    /// `data.len()` does not equal `n * dim`.
    ShapeMismatch {
        /// `n * dim`.
        expected: usize,
        /// `data.len()`.
        got: usize,
    },
}

impl fmt::Display for KmeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KmeansError::NoPoints => write!(f, "k-means needs at least one point"),
            KmeansError::ZeroDim => write!(f, "k-means needs at least one dimension"),
            KmeansError::ZeroK => write!(f, "k-means needs at least one cluster"),
            KmeansError::ZeroInit => write!(f, "k-means needs at least one restart"),
            KmeansError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "data shape mismatch: expected n * dim = {expected} values, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for KmeansError {}

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Number of clusters requested.
    pub k: usize,
    /// Cluster assignment per point.
    pub assignments: Vec<u32>,
    /// Flat row-major centroid matrix (`k * dim`).
    pub centroids: Vec<f64>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: u32,
}

impl KmeansResult {
    /// Cluster sizes (points per cluster).
    pub fn cluster_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.k];
        for &a in &self.assignments {
            sizes[a as usize] += 1;
        }
        sizes
    }

    /// Number of clusters that actually contain points.
    pub fn occupied_clusters(&self) -> usize {
        self.cluster_sizes().iter().filter(|&&s| s > 0).count()
    }

    /// Average intra-cluster variance: inertia divided by point count
    /// (the Fig. 4 metric).
    pub fn avg_variance(&self) -> f64 {
        if self.assignments.is_empty() {
            0.0
        } else {
            self.inertia / self.assignments.len() as f64
        }
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on `n` points of `dim` dimensions stored row-major in
/// `data`.
///
/// # Errors
///
/// Returns a [`KmeansError`] if `k` is zero, `dim` is zero,
/// `data.len() != n * dim`, or there are no points.
pub fn kmeans(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
) -> Result<KmeansResult, KmeansError> {
    if k == 0 {
        return Err(KmeansError::ZeroK);
    }
    if dim == 0 {
        return Err(KmeansError::ZeroDim);
    }
    if n == 0 {
        return Err(KmeansError::NoPoints);
    }
    if data.len() != n * dim {
        return Err(KmeansError::ShapeMismatch {
            expected: n * dim,
            got: data.len(),
        });
    }
    let k = k.min(n);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut centroids = plus_plus_init(data, n, dim, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut iterations = 0;
    let mut inertia = f64::INFINITY;
    for iter in 0..max_iter {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        let mut new_inertia = 0.0;
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_dist(p, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_inertia += best_d;
        }
        inertia = new_inertia;
        if !changed && iter > 0 {
            break;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for i in 0..n {
            let c = assignments[i] as usize;
            counts[c] += 1;
            let p = &data[i * dim..(i + 1) * dim];
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point farthest from its
                // current centroid.
                let mut far = 0usize;
                let mut far_d = -1.0;
                for i in 0..n {
                    let p = &data[i * dim..(i + 1) * dim];
                    let c_own = assignments[i] as usize;
                    let d = sq_dist(p, &centroids[c_own * dim..(c_own + 1) * dim]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c * dim..(c + 1) * dim]
                    .copy_from_slice(&data[far * dim..(far + 1) * dim]);
            } else {
                for (cc, s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *cc = s / counts[c] as f64;
                }
            }
        }
    }
    Ok(KmeansResult {
        k,
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

/// k-means++ seeding (Arthur & Vassilvitskii, 2007).
fn plus_plus_init(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    rng: &mut Xoshiro256StarStar,
) -> Vec<f64> {
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.next_below(n as u64) as usize;
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);
    let mut dists: Vec<f64> = (0..n)
        .map(|i| sq_dist(&data[i * dim..(i + 1) * dim], &centroids[0..dim]))
        .collect();
    for c in 1..k {
        let total: f64 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; any point works.
            rng.next_below(n as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.extend_from_slice(&data[chosen * dim..(chosen + 1) * dim]);
        for i in 0..n {
            let d = sq_dist(
                &data[i * dim..(i + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            );
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

/// Runs k-means `n_init` times with different derived seeds, returning the
/// run with the lowest inertia.
///
/// # Errors
///
/// As [`kmeans`]; additionally [`KmeansError::ZeroInit`] if `n_init` is
/// zero.
pub fn kmeans_best_of(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
    n_init: u32,
) -> Result<KmeansResult, KmeansError> {
    if n_init == 0 {
        return Err(KmeansError::ZeroInit);
    }
    let mut best: Option<KmeansResult> = None;
    for run in 0..n_init {
        let r = kmeans(
            data,
            n,
            dim,
            k,
            max_iter,
            seed.wrapping_add(u64::from(run) * 0x9E37),
        )?;
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    Ok(best.expect("n_init > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs() -> (Vec<f64>, usize) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..40 {
                data.push(cx + rng.next_f64() - 0.5);
                data.push(cy + rng.next_f64() - 0.5);
            }
        }
        (data, 120)
    }

    #[test]
    fn recovers_blobs() {
        let (data, n) = blobs();
        let r = kmeans(&data, n, 2, 3, 100, 1).unwrap();
        assert_eq!(r.occupied_clusters(), 3);
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 40), "sizes {sizes:?}");
        // Points in the same blob share a cluster.
        for blob in 0..3 {
            let first = r.assignments[blob * 40];
            assert!(r.assignments[blob * 40..(blob + 1) * 40]
                .iter()
                .all(|&a| a == first));
        }
        assert!(r.avg_variance() < 1.0);
    }

    #[test]
    fn k_capped_at_n() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let r = kmeans(&data, 2, 2, 10, 50, 1).unwrap();
        assert_eq!(r.k, 2);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn identical_points_one_cluster_zero_inertia() {
        let data = vec![3.0; 20]; // 10 identical 2-D points
        let r = kmeans(&data, 10, 2, 3, 50, 1).unwrap();
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, n) = blobs();
        let a = kmeans(&data, n, 2, 3, 100, 5).unwrap();
        let b = kmeans(&data, n, 2, 3, 100, 5).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn more_clusters_never_increase_inertia_much() {
        let (data, n) = blobs();
        let k3 = kmeans_best_of(&data, n, 2, 3, 100, 1, 3).unwrap();
        let k6 = kmeans_best_of(&data, n, 2, 6, 100, 1, 3).unwrap();
        assert!(k6.inertia <= k3.inertia * 1.01);
    }

    #[test]
    fn best_of_picks_lowest_inertia() {
        let (data, n) = blobs();
        let single = kmeans(&data, n, 2, 3, 100, 1).unwrap();
        let multi = kmeans_best_of(&data, n, 2, 3, 100, 1, 5).unwrap();
        assert!(multi.inertia <= single.inertia + 1e-9);
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        assert_eq!(
            kmeans(&[1.0, 2.0, 3.0], 2, 2, 1, 10, 1),
            Err(KmeansError::ShapeMismatch {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(kmeans(&[], 0, 2, 1, 10, 1), Err(KmeansError::NoPoints));
        assert_eq!(kmeans(&[1.0], 1, 0, 1, 10, 1), Err(KmeansError::ZeroDim));
        assert_eq!(kmeans(&[1.0], 1, 1, 0, 10, 1), Err(KmeansError::ZeroK));
        assert_eq!(
            kmeans_best_of(&[1.0], 1, 1, 1, 10, 1, 0),
            Err(KmeansError::ZeroInit)
        );
    }
}

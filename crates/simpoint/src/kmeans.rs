//! Lloyd's k-means with k-means++ seeding and triangle-inequality pruning.
//!
//! Operates on a flat row-major matrix of projected BBVs. Deterministic for
//! a given seed; empty clusters are reseeded to the point farthest from its
//! centroid so every requested cluster survives when the data supports it.
//!
//! Two kernels compute the same function:
//!
//! * [`kmeans`] — the production kernel. It carries Hamerly-style
//!   per-point bounds (an upper bound on the distance to the assigned
//!   centroid, a lower bound on the distance to every other centroid) plus
//!   inter-centroid half-distances, so most points skip the k-way distance
//!   scan once the iteration settles. Every distance it *does* compute and
//!   every centroid update uses the exact `sq_dist` and summation order of
//!   the naive code, and a skip is taken only when the bounds prove — with
//!   a safety margin far above accumulated floating-point error — that the
//!   naive scan's argmin could not differ. Assignments, centroids, inertia
//!   and iteration counts are therefore **bit-identical** to the reference.
//! * [`kmeans_reference`] — the naive full-scan Lloyd kernel, kept verbatim
//!   as the differential-testing oracle (see `tests/property_tests.rs` and
//!   the `pruned_matches_reference_*` tests below).
//!
//! See `docs/performance.md` for the pruning invariants and the
//! bit-identity argument.

use sampsim_exec::{try_parallel_map, Jobs, SERIAL};
use sampsim_util::rng::Xoshiro256StarStar;
use std::fmt;

/// Invalid input to [`kmeans`] / [`kmeans_best_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmeansError {
    /// No points to cluster (`n == 0`).
    NoPoints,
    /// Zero-dimensional points (`dim == 0`).
    ZeroDim,
    /// Zero clusters requested (`k == 0`).
    ZeroK,
    /// Zero restarts requested (`n_init == 0`).
    ZeroInit,
    /// `data.len()` does not equal `n * dim`.
    ShapeMismatch {
        /// `n * dim`.
        expected: usize,
        /// `data.len()`.
        got: usize,
    },
}

impl fmt::Display for KmeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KmeansError::NoPoints => write!(f, "k-means needs at least one point"),
            KmeansError::ZeroDim => write!(f, "k-means needs at least one dimension"),
            KmeansError::ZeroK => write!(f, "k-means needs at least one cluster"),
            KmeansError::ZeroInit => write!(f, "k-means needs at least one restart"),
            KmeansError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "data shape mismatch: expected n * dim = {expected} values, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for KmeansError {}

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Number of clusters requested.
    pub k: usize,
    /// Cluster assignment per point.
    pub assignments: Vec<u32>,
    /// Flat row-major centroid matrix (`k * dim`).
    pub centroids: Vec<f64>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: u32,
    /// Points per cluster, computed once from the final assignments.
    sizes: Vec<u64>,
}

impl KmeansResult {
    /// Assembles a result, counting cluster sizes once so the accessors
    /// below never allocate.
    fn assemble(
        k: usize,
        assignments: Vec<u32>,
        centroids: Vec<f64>,
        inertia: f64,
        iterations: u32,
    ) -> Self {
        let mut sizes = vec![0u64; k];
        for &a in &assignments {
            sizes[a as usize] += 1;
        }
        Self {
            k,
            assignments,
            centroids,
            inertia,
            iterations,
            sizes,
        }
    }

    /// Cluster sizes (points per cluster). Precomputed; no allocation.
    pub fn cluster_sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Number of clusters that actually contain points.
    pub fn occupied_clusters(&self) -> usize {
        self.sizes.iter().filter(|&&s| s > 0).count()
    }

    /// Average intra-cluster variance: inertia divided by point count
    /// (the Fig. 4 metric).
    pub fn avg_variance(&self) -> f64 {
        if self.assignments.is_empty() {
            0.0
        } else {
            self.inertia / self.assignments.len() as f64
        }
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Four-lane chunked squared distance: independent partial sums over
/// fixed-width chunks so the autovectorizer fires, folded pairwise at the
/// end. **Not** bit-compatible with [`sq_dist`] (different accumulation
/// order) — only the mini-batch kernel, which owns its numerics and is
/// pinned by tolerance rather than bit-identity, may use it.
#[inline]
fn sq_dist_chunked(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let whole = a.len() - a.len() % 4;
    let (a_main, a_tail) = a.split_at(whole);
    let (b_main, b_tail) = b.split_at(whole);
    for (ca, cb) in a_main.chunks_exact(4).zip(b_main.chunks_exact(4)) {
        for lane in 0..4 {
            let d = ca[lane] - cb[lane];
            acc[lane] += d * d;
        }
    }
    for (x, y) in a_tail.iter().zip(b_tail) {
        let d = x - y;
        acc[0] += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Nearest centroid to `point` under [`sq_dist_chunked`], first minimum
/// wins. Returns `(index, squared distance)`.
#[inline]
fn nearest_chunked(centroids: &[f64], k: usize, dim: usize, point: &[f64]) -> (u32, f64) {
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let d = sq_dist_chunked(point, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    (best, best_d)
}

fn validate(data: &[f64], n: usize, dim: usize, k: usize) -> Result<(), KmeansError> {
    if k == 0 {
        return Err(KmeansError::ZeroK);
    }
    if dim == 0 {
        return Err(KmeansError::ZeroDim);
    }
    if n == 0 {
        return Err(KmeansError::NoPoints);
    }
    if data.len() != n * dim {
        return Err(KmeansError::ShapeMismatch {
            expected: n * dim,
            got: data.len(),
        });
    }
    Ok(())
}

/// Naive full-scan Lloyd update step: recompute every centroid as the mean
/// of its members (point-order summation), reseeding empty clusters at the
/// point farthest from its own centroid. `sums`/`counts` are caller-owned
/// scratch; `centroids` is mutated in place exactly as the reference kernel
/// does — in particular, the reseed scan for an empty cluster `c` sees the
/// already-updated centroids of clusters `< c` and the stale centroids of
/// clusters `>= c`.
#[allow(clippy::too_many_arguments)]
fn update_centroids(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    assignments: &[u32],
    centroids: &mut [f64],
    sums: &mut [f64],
    counts: &mut [u64],
) {
    sums.fill(0.0);
    counts.fill(0);
    for i in 0..n {
        let c = assignments[i] as usize;
        counts[c] += 1;
        let p = &data[i * dim..(i + 1) * dim];
        for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
            *s += v;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            // Reseed an empty cluster at the point farthest from its
            // current centroid.
            let mut far = 0usize;
            let mut far_d = -1.0;
            for i in 0..n {
                let p = &data[i * dim..(i + 1) * dim];
                let c_own = assignments[i] as usize;
                let d = sq_dist(p, &centroids[c_own * dim..(c_own + 1) * dim]);
                if d > far_d {
                    far_d = d;
                    far = i;
                }
            }
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&data[far * dim..(far + 1) * dim]);
        } else {
            for (cc, s) in centroids[c * dim..(c + 1) * dim]
                .iter_mut()
                .zip(&sums[c * dim..(c + 1) * dim])
            {
                *cc = s / counts[c] as f64;
            }
        }
    }
}

/// The naive full-scan Lloyd kernel: every iteration computes all `n * k`
/// distances. Kept as the differential-testing oracle for [`kmeans`];
/// identical output, no pruning.
///
/// # Errors
///
/// Returns a [`KmeansError`] if `k` is zero, `dim` is zero,
/// `data.len() != n * dim`, or there are no points.
pub fn kmeans_reference(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
) -> Result<KmeansResult, KmeansError> {
    validate(data, n, dim, k)?;
    let k = k.min(n);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut centroids = plus_plus_init(data, n, dim, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut iterations = 0;
    let mut inertia = f64::INFINITY;
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0u64; k];
    for iter in 0..max_iter {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        let mut new_inertia = 0.0;
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_dist(p, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_inertia += best_d;
        }
        inertia = new_inertia;
        if !changed && iter > 0 {
            break;
        }
        update_centroids(
            data,
            n,
            dim,
            k,
            &assignments,
            &mut centroids,
            &mut sums,
            &mut counts,
        );
    }
    Ok(KmeansResult::assemble(
        k,
        assignments,
        centroids,
        inertia,
        iterations,
    ))
}

/// Half the distance from each centroid to its nearest other centroid
/// (Hamerly's `s(c)`; infinite for `k == 1`).
fn half_dists(centroids: &[f64], k: usize, dim: usize, out: &mut [f64]) {
    for c in 0..k {
        let mut m = f64::INFINITY;
        for o in 0..k {
            if o == c {
                continue;
            }
            let d = sq_dist(
                &centroids[c * dim..(c + 1) * dim],
                &centroids[o * dim..(o + 1) * dim],
            );
            if d < m {
                m = d;
            }
        }
        out[c] = 0.5 * m.sqrt();
    }
}

/// Runs k-means on `n` points of `dim` dimensions stored row-major in
/// `data`.
///
/// This is the bounds-pruned kernel; it returns output bit-identical to
/// [`kmeans_reference`] (see the module docs for the argument) while
/// skipping the k-way distance scan for points whose bounds prove the
/// assignment cannot change.
///
/// # Errors
///
/// Returns a [`KmeansError`] if `k` is zero, `dim` is zero,
/// `data.len() != n * dim`, or there are no points.
pub fn kmeans(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
) -> Result<KmeansResult, KmeansError> {
    validate(data, n, dim, k)?;
    let k = k.min(n);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut centroids = plus_plus_init(data, n, dim, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut iterations = 0;
    let mut inertia = f64::INFINITY;

    // Pruning state. `upper[i]` bounds the Euclidean distance from point i
    // to its assigned centroid from above; `lower[i]` bounds the distance
    // to every *other* centroid from below. Both start vacuous so the
    // first iteration scans everything, exactly like the reference.
    let mut upper = vec![f64::INFINITY; n];
    let mut lower = vec![f64::NEG_INFINITY; n];
    let mut half = vec![0.0f64; k];
    let mut drift = vec![0.0f64; k];
    // Scratch reused across iterations (the reference allocates per
    // iteration; zero-filled scratch holds the same values).
    let mut old_centroids = vec![0.0f64; k * dim];
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0u64; k];

    // A skip is taken only when a bound gap exceeds `eps`, an absolute
    // margin scaled to the data's magnitude. Accumulated floating-point
    // error in the bounds is below ~1e-13 of the distance scale, so a
    // 1e-9-of-scale margin certifies the reference argmin is unchanged
    // (ties — e.g. duplicate centroids — never show a gap above eps and
    // always fall through to the full scan).
    let radius = (0..n)
        .map(|i| {
            data[i * dim..(i + 1) * dim]
                .iter()
                .map(|x| x * x)
                .sum::<f64>()
        })
        .fold(0.0f64, f64::max)
        .sqrt();
    let eps = 1e-9 * (1.0 + 2.0 * radius);

    for iter in 0..max_iter {
        iterations = iter + 1;
        half_dists(&centroids, k, dim, &mut half);
        let mut changed = false;
        for i in 0..n {
            let a = assignments[i] as usize;
            let bound = half[a].max(lower[i]);
            if bound - upper[i] > eps {
                continue;
            }
            let p = &data[i * dim..(i + 1) * dim];
            // Tightening pass: replace the drift-inflated upper bound by
            // the exact distance to the assigned centroid. Pointless on
            // the first visit (upper is vacuous INFINITY), so skip it
            // there; the squared distance is kept for reuse in the scan.
            let mut d_a = f64::INFINITY;
            if upper[i].is_finite() {
                d_a = sq_dist(p, &centroids[a * dim..(a + 1) * dim]);
                let tight = d_a.sqrt();
                upper[i] = tight;
                if bound - tight > eps {
                    continue;
                }
            }
            // Full scan in reference order: strict `<` keeps the first
            // minimum, and the second-smallest distance refreshes the
            // lower bound. The assigned centroid's distance is the value
            // just computed — same inputs, same call, same bits.
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            let mut second_d = f64::INFINITY;
            for c in 0..k {
                let d = if c == a && d_a.is_finite() {
                    d_a
                } else {
                    sq_dist(p, &centroids[c * dim..(c + 1) * dim])
                };
                if d < best_d {
                    second_d = best_d;
                    best_d = d;
                    best = c as u32;
                } else if d < second_d {
                    second_d = d;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            upper[i] = best_d.sqrt();
            lower[i] = second_d.sqrt();
        }
        // The reference overwrites its inertia every iteration, so only
        // the final assignment pass's value survives. Reproduce exactly
        // that value — the same `sq_dist` calls summed in the same point
        // order — on the pass the reference would have exited from.
        let final_pass = (!changed && iter > 0) || iter + 1 == max_iter;
        if final_pass {
            let mut total = 0.0;
            for i in 0..n {
                let p = &data[i * dim..(i + 1) * dim];
                let a = assignments[i] as usize;
                total += sq_dist(p, &centroids[a * dim..(a + 1) * dim]);
            }
            inertia = total;
        }
        if !changed && iter > 0 {
            break;
        }
        old_centroids.copy_from_slice(&centroids);
        update_centroids(
            data,
            n,
            dim,
            k,
            &assignments,
            &mut centroids,
            &mut sums,
            &mut counts,
        );
        // Bound maintenance: each upper bound inflates by its centroid's
        // drift. A lower bound deflates by the most any *other* centroid
        // can have moved: the largest drift overall, or the second
        // largest when the point's own centroid is the largest mover
        // (Hamerly's refinement — it keeps bounds tight through the big
        // single-centroid jumps that empty-cluster reseeds cause).
        let mut d1 = 0.0f64;
        let mut d2 = 0.0f64;
        let mut c1 = 0usize;
        for c in 0..k {
            let d = sq_dist(
                &old_centroids[c * dim..(c + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            )
            .sqrt();
            drift[c] = d;
            if d > d1 {
                d2 = d1;
                d1 = d;
                c1 = c;
            } else if d > d2 {
                d2 = d;
            }
        }
        for i in 0..n {
            let a = assignments[i] as usize;
            upper[i] += drift[a];
            lower[i] -= if a == c1 { d2 } else { d1 };
        }
    }
    Ok(KmeansResult::assemble(
        k,
        assignments,
        centroids,
        inertia,
        iterations,
    ))
}

/// k-means++ seeding (Arthur & Vassilvitskii, 2007).
fn plus_plus_init(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    rng: &mut Xoshiro256StarStar,
) -> Vec<f64> {
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.next_below(n as u64) as usize;
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);
    let mut dists: Vec<f64> = (0..n)
        .map(|i| sq_dist(&data[i * dim..(i + 1) * dim], &centroids[0..dim]))
        .collect();
    for c in 1..k {
        let total: f64 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; any point works.
            rng.next_below(n as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.extend_from_slice(&data[chosen * dim..(chosen + 1) * dim]);
        for i in 0..n {
            let d = sq_dist(
                &data[i * dim..(i + 1) * dim],
                &centroids[c * dim..(c + 1) * dim],
            );
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

/// Per-restart seed: the same derivation the serial loop has always used.
#[inline]
fn restart_seed(seed: u64, run: u32) -> u64 {
    seed.wrapping_add(u64::from(run) * 0x9E37)
}

/// Runs k-means `n_init` times with different derived seeds, returning the
/// run with the lowest inertia (ties broken by the lowest restart index).
///
/// Serial wrapper around [`kmeans_best_of_jobs`].
///
/// # Errors
///
/// As [`kmeans`]; additionally [`KmeansError::ZeroInit`] if `n_init` is
/// zero.
pub fn kmeans_best_of(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
    n_init: u32,
) -> Result<KmeansResult, KmeansError> {
    kmeans_best_of_jobs(data, n, dim, k, max_iter, seed, n_init, SERIAL)
}

/// [`kmeans_best_of`] running every restart through the naive
/// [`kmeans_reference`] kernel — same seed schedule, same winner fold.
///
/// This is the baseline the perf harness times the pruned kernel against;
/// it must match [`kmeans_best_of`] bit-for-bit.
///
/// # Errors
///
/// As [`kmeans_best_of`].
pub fn kmeans_best_of_reference(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
    n_init: u32,
) -> Result<KmeansResult, KmeansError> {
    if n_init == 0 {
        return Err(KmeansError::ZeroInit);
    }
    let mut best: Option<KmeansResult> = None;
    for run in 0..n_init {
        let r = kmeans_reference(data, n, dim, k, max_iter, restart_seed(seed, run))?;
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    Ok(best.expect("n_init > 0"))
}

/// [`kmeans_best_of`] with the restarts fanned out over `jobs` workers.
///
/// Restart results are collected in restart order and folded with the
/// strict `inertia <` rule, so the winner — lowest inertia, ties broken
/// by lowest restart index — is identical for every job count.
///
/// # Errors
///
/// As [`kmeans_best_of`].
#[allow(clippy::too_many_arguments)]
pub fn kmeans_best_of_jobs(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    max_iter: u32,
    seed: u64,
    n_init: u32,
    jobs: Jobs,
) -> Result<KmeansResult, KmeansError> {
    if n_init == 0 {
        return Err(KmeansError::ZeroInit);
    }
    let runs: Vec<u32> = (0..n_init).collect();
    let results = try_parallel_map(jobs, &runs, |_, &run| {
        kmeans(data, n, dim, k, max_iter, restart_seed(seed, run))
    })?;
    let mut best: Option<KmeansResult> = None;
    for r in results {
        if best.as_ref().is_none_or(|b| r.inertia < b.inertia) {
            best = Some(r);
        }
    }
    Ok(best.expect("n_init > 0"))
}

/// Which clustering kernel the SimPoint analysis runs.
///
/// * [`KmeansMode::Lloyd`] — the default: bounds-pruned full Lloyd
///   ([`kmeans`]), bit-identical to [`kmeans_reference`], `n_init`
///   restarts.
/// * [`KmeansMode::MiniBatch`] — the streaming mini-batch kernel
///   ([`kmeans_minibatch`]): single deterministic run, O(k·dim + batch)
///   working state, inertia within a documented tolerance of the
///   reference rather than bit-identical (see `docs/performance.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KmeansMode {
    /// Full Lloyd with restarts (bit-identical to the reference oracle).
    #[default]
    Lloyd,
    /// Deterministic mini-batch k-means (tolerance-pinned, streaming).
    MiniBatch,
}

impl KmeansMode {
    /// Stable lowercase label (CLI value, fingerprints, JSON).
    pub fn label(self) -> &'static str {
        match self {
            KmeansMode::Lloyd => "lloyd",
            KmeansMode::MiniBatch => "minibatch",
        }
    }

    /// Parses a CLI label produced by [`KmeansMode::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lloyd" => Some(KmeansMode::Lloyd),
            "minibatch" => Some(KmeansMode::MiniBatch),
            _ => None,
        }
    }
}

impl fmt::Display for KmeansMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Default mini-batch size for [`MiniBatchKmeans`] / [`kmeans_minibatch`].
pub const MINIBATCH_BATCH: usize = 1024;

/// Passes over the data made by [`kmeans_minibatch`]; Sculley-style
/// per-center learning rates converge in a handful of epochs, and a fixed
/// count keeps the schedule deterministic and cheap.
pub const MINIBATCH_PASSES: u32 = 3;

/// Streaming mini-batch k-means (Sculley, WWW 2010).
///
/// Points are pushed one at a time and buffered into batches of `batch`
/// rows; each full batch is assigned to the nearest centroid and folded in
/// with per-center learning rates `eta = 1 / count(c)`. Working state is
/// `O(k * dim + batch * dim)` — independent of how many points stream
/// through — which is what lets the million-slice perf grid run without
/// materializing its input.
///
/// Determinism: centroids are seeded by k-means++ over the *first* buffered
/// batch using the caller's seed, and every update is applied in push
/// order, so the result is a pure function of `(seed, push sequence)`.
/// The inner distance kernel is the chunked SIMD-friendly one
/// ([`sq_dist_chunked`]); the mini-batch path owns its numerics and is
/// pinned against [`kmeans_reference`] by tolerance, not bit-identity.
#[derive(Debug, Clone)]
pub struct MiniBatchKmeans {
    dim: usize,
    k: usize,
    batch: usize,
    rng: Xoshiro256StarStar,
    centroids: Vec<f64>,
    counts: Vec<u64>,
    buffer: Vec<f64>,
    buffered: usize,
    seen: u64,
    initialized: bool,
}

impl MiniBatchKmeans {
    /// Creates a streaming clusterer for `dim`-dimensional points.
    ///
    /// # Errors
    ///
    /// [`KmeansError::ZeroK`] / [`KmeansError::ZeroDim`] if `k` or `dim`
    /// is zero; [`KmeansError::NoPoints`] if `batch` is zero (a zero-row
    /// batch can never initialize).
    pub fn new(dim: usize, k: usize, batch: usize, seed: u64) -> Result<Self, KmeansError> {
        if k == 0 {
            return Err(KmeansError::ZeroK);
        }
        if dim == 0 {
            return Err(KmeansError::ZeroDim);
        }
        if batch == 0 {
            return Err(KmeansError::NoPoints);
        }
        Ok(Self {
            dim,
            k,
            batch,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            centroids: Vec::new(),
            counts: Vec::new(),
            buffer: Vec::with_capacity(batch * dim),
            buffered: 0,
            seen: 0,
            initialized: false,
        })
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective cluster count: the requested `k`, capped at the number of
    /// points seen once initialization has happened.
    pub fn k(&self) -> usize {
        if self.initialized {
            self.counts.len()
        } else {
            self.k
        }
    }

    /// Total points pushed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Pushes one point. Panics if `point.len() != dim`.
    pub fn push(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "mini-batch point dim mismatch");
        self.buffer.extend_from_slice(point);
        self.buffered += 1;
        self.seen += 1;
        if self.buffered == self.batch {
            self.flush_batch();
        }
    }

    /// Folds the buffered rows into the centroids and clears the buffer.
    fn flush_batch(&mut self) {
        if self.buffered == 0 {
            return;
        }
        if !self.initialized {
            // Seed with k-means++ over the first batch; the same rows are
            // then folded in as an ordinary batch below, so the seeding
            // sample is not privileged beyond its head-of-stream position.
            let k_eff = self.k.min(self.buffered);
            self.centroids =
                plus_plus_init(&self.buffer, self.buffered, self.dim, k_eff, &mut self.rng);
            self.counts = vec![0u64; k_eff];
            self.initialized = true;
        }
        let k = self.counts.len();
        let dim = self.dim;
        for i in 0..self.buffered {
            let p = &self.buffer[i * dim..(i + 1) * dim];
            let (c, _) = nearest_chunked(&self.centroids, k, dim, p);
            let c = c as usize;
            self.counts[c] += 1;
            let eta = 1.0 / self.counts[c] as f64;
            for (cc, &v) in self.centroids[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                *cc += eta * (v - *cc);
            }
        }
        self.buffer.clear();
        self.buffered = 0;
    }

    /// Flushes any partial batch and returns the centroid matrix
    /// (`k_eff * dim`, row-major).
    ///
    /// # Errors
    ///
    /// [`KmeansError::NoPoints`] if nothing was ever pushed.
    pub fn finish(mut self) -> Result<Vec<f64>, KmeansError> {
        self.flush_batch();
        if !self.initialized {
            return Err(KmeansError::NoPoints);
        }
        Ok(self.centroids)
    }

    /// Flushes any partial batch in place (pass boundary in a multi-pass
    /// schedule) so later pushes start a fresh batch.
    pub fn end_pass(&mut self) {
        self.flush_batch();
    }

    /// Current centroids (empty before the first batch completes).
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }
}

/// Deterministic mini-batch k-means over a materialized matrix: the
/// convenience wrapper the SimPoint `--kmeans-mode minibatch` path uses.
///
/// Runs [`MINIBATCH_PASSES`] passes, each over a fresh seeded
/// Fisher–Yates permutation of the rows, through a [`MiniBatchKmeans`]
/// with batch size `batch.min(n)`, then computes final assignments and
/// inertia in one full pass with the chunked distance kernel. A single
/// deterministic run — no restarts — so `n_init` does not apply.
///
/// # Errors
///
/// As [`kmeans`].
pub fn kmeans_minibatch(
    data: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    seed: u64,
    batch: usize,
) -> Result<KmeansResult, KmeansError> {
    validate(data, n, dim, k)?;
    let k = k.min(n);
    let mut mb = MiniBatchKmeans::new(dim, k, batch.max(1).min(n), seed)?;
    // The schedule RNG is domain-separated from the seeding RNG inside
    // MiniBatchKmeans so reordering passes never perturbs the init.
    let mut schedule = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5C11_EE75_EED0_F00D);
    let mut order: Vec<usize> = (0..n).collect();
    for _pass in 0..MINIBATCH_PASSES {
        // Fisher–Yates, index-ordered and seeded: deterministic schedule.
        for i in (1..n).rev() {
            let j = schedule.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        for &i in &order {
            mb.push(&data[i * dim..(i + 1) * dim]);
        }
        mb.end_pass();
    }
    let k_eff = mb.k();
    let centroids = mb.finish()?;
    let mut assignments = vec![0u32; n];
    let mut inertia = 0.0;
    for i in 0..n {
        let (c, d) = nearest_chunked(&centroids, k_eff, dim, &data[i * dim..(i + 1) * dim]);
        assignments[i] = c;
        inertia += d;
    }
    Ok(KmeansResult::assemble(
        k_eff,
        assignments,
        centroids,
        inertia,
        MINIBATCH_PASSES,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs() -> (Vec<f64>, usize) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..40 {
                data.push(cx + rng.next_f64() - 0.5);
                data.push(cy + rng.next_f64() - 0.5);
            }
        }
        (data, 120)
    }

    #[test]
    fn recovers_blobs() {
        let (data, n) = blobs();
        let r = kmeans(&data, n, 2, 3, 100, 1).unwrap();
        assert_eq!(r.occupied_clusters(), 3);
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 40), "sizes {sizes:?}");
        // Points in the same blob share a cluster.
        for blob in 0..3 {
            let first = r.assignments[blob * 40];
            assert!(r.assignments[blob * 40..(blob + 1) * 40]
                .iter()
                .all(|&a| a == first));
        }
        assert!(r.avg_variance() < 1.0);
    }

    #[test]
    fn k_capped_at_n() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let r = kmeans(&data, 2, 2, 10, 50, 1).unwrap();
        assert_eq!(r.k, 2);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn identical_points_one_cluster_zero_inertia() {
        let data = vec![3.0; 20]; // 10 identical 2-D points
        let r = kmeans(&data, 10, 2, 3, 50, 1).unwrap();
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, n) = blobs();
        let a = kmeans(&data, n, 2, 3, 100, 5).unwrap();
        let b = kmeans(&data, n, 2, 3, 100, 5).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn more_clusters_never_increase_inertia_much() {
        let (data, n) = blobs();
        let k3 = kmeans_best_of(&data, n, 2, 3, 100, 1, 3).unwrap();
        let k6 = kmeans_best_of(&data, n, 2, 6, 100, 1, 3).unwrap();
        assert!(k6.inertia <= k3.inertia * 1.01);
    }

    #[test]
    fn best_of_picks_lowest_inertia() {
        let (data, n) = blobs();
        let single = kmeans(&data, n, 2, 3, 100, 1).unwrap();
        let multi = kmeans_best_of(&data, n, 2, 3, 100, 1, 5).unwrap();
        assert!(multi.inertia <= single.inertia + 1e-9);
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        assert_eq!(
            kmeans(&[1.0, 2.0, 3.0], 2, 2, 1, 10, 1),
            Err(KmeansError::ShapeMismatch {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(kmeans(&[], 0, 2, 1, 10, 1), Err(KmeansError::NoPoints));
        assert_eq!(kmeans(&[1.0], 1, 0, 1, 10, 1), Err(KmeansError::ZeroDim));
        assert_eq!(kmeans(&[1.0], 1, 1, 0, 10, 1), Err(KmeansError::ZeroK));
        assert_eq!(
            kmeans_best_of(&[1.0], 1, 1, 1, 10, 1, 0),
            Err(KmeansError::ZeroInit)
        );
        assert_eq!(
            kmeans_reference(&[], 0, 2, 1, 10, 1),
            Err(KmeansError::NoPoints)
        );
    }

    /// Asserts two results are bit-identical: every float compared by its
    /// bit pattern, not by `==`.
    pub(super) fn assert_bit_identical(a: &KmeansResult, b: &KmeansResult, what: &str) {
        assert_eq!(a.k, b.k, "{what}: k");
        assert_eq!(a.iterations, b.iterations, "{what}: iterations");
        assert_eq!(a.assignments, b.assignments, "{what}: assignments");
        assert_eq!(
            a.inertia.to_bits(),
            b.inertia.to_bits(),
            "{what}: inertia {:?} vs {:?}",
            a.inertia,
            b.inertia
        );
        assert_eq!(a.centroids.len(), b.centroids.len(), "{what}: centroid len");
        for (i, (x, y)) in a.centroids.iter().zip(&b.centroids).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: centroid[{i}] {x:?} vs {y:?}"
            );
        }
        assert_eq!(a.cluster_sizes(), b.cluster_sizes(), "{what}: sizes");
    }

    fn random_matrix(seed: u64, n: usize, dim: usize, spread: f64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n * dim)
            .map(|_| (rng.next_f64() - 0.5) * spread)
            .collect()
    }

    #[test]
    fn pruned_matches_reference_on_blobs() {
        let (data, n) = blobs();
        for k in [1, 2, 3, 5, 8] {
            for seed in [0, 1, 7] {
                let p = kmeans(&data, n, 2, k, 100, seed).unwrap();
                let r = kmeans_reference(&data, n, 2, k, 100, seed).unwrap();
                assert_bit_identical(&p, &r, &format!("blobs k={k} seed={seed}"));
            }
        }
    }

    #[test]
    fn pruned_matches_reference_on_random_data() {
        for (n, dim, k) in [(50, 3, 4), (200, 15, 12), (33, 1, 33)] {
            let data = random_matrix(n as u64 * 31 + dim as u64, n, dim, 4.0);
            let p = kmeans(&data, n, dim, k, 60, 9).unwrap();
            let r = kmeans_reference(&data, n, dim, k, 60, 9).unwrap();
            assert_bit_identical(&p, &r, &format!("random n={n} dim={dim} k={k}"));
        }
    }

    #[test]
    fn pruned_matches_reference_with_duplicates_and_reseeds() {
        // Many duplicated points force zero inter-centroid distances
        // (ties) and empty-cluster reseeds; both kernels must walk the
        // same reseed path.
        let mut data = vec![1.0; 30]; // 15 identical 2-D points
        data.extend_from_slice(&[50.0, 50.0, 50.1, 50.0, -9.0, 2.0]);
        let n = 18;
        for k in [2, 5, 18] {
            for seed in [3, 4] {
                let p = kmeans(&data, n, 2, k, 50, seed).unwrap();
                let r = kmeans_reference(&data, n, 2, k, 50, seed).unwrap();
                assert_bit_identical(&p, &r, &format!("dup k={k} seed={seed}"));
            }
        }
    }

    #[test]
    fn pruned_matches_reference_at_iteration_limits() {
        let (data, n) = blobs();
        for max_iter in [0, 1, 2, 3] {
            let p = kmeans(&data, n, 2, 4, max_iter, 2).unwrap();
            let r = kmeans_reference(&data, n, 2, 4, max_iter, 2).unwrap();
            assert_bit_identical(&p, &r, &format!("max_iter={max_iter}"));
        }
    }

    #[test]
    fn parallel_restarts_match_serial() {
        let (data, n) = blobs();
        let serial = kmeans_best_of(&data, n, 2, 4, 100, 11, 6).unwrap();
        for jobs in [Jobs::new(2).unwrap(), Jobs::new(7).unwrap(), Jobs::Auto] {
            let par = kmeans_best_of_jobs(&data, n, 2, 4, 100, 11, 6, jobs).unwrap();
            assert_bit_identical(&serial, &par, &format!("jobs={jobs}"));
        }
    }

    #[test]
    fn best_of_reference_matches_pruned_best_of() {
        let (data, n) = blobs();
        for k in [1, 3, 5] {
            let naive = kmeans_best_of_reference(&data, n, 2, k, 100, 17, 4).unwrap();
            let pruned = kmeans_best_of(&data, n, 2, k, 100, 17, 4).unwrap();
            assert_bit_identical(&naive, &pruned, &format!("best-of k={k}"));
        }
        assert!(matches!(
            kmeans_best_of_reference(&data, n, 2, 2, 100, 17, 0),
            Err(KmeansError::ZeroInit)
        ));
    }

    #[test]
    fn chunked_distance_agrees_with_reference_distance() {
        let a = random_matrix(1, 1, 23, 6.0);
        let b = random_matrix(2, 1, 23, 6.0);
        let exact = sq_dist(&a, &b);
        let chunked = sq_dist_chunked(&a, &b);
        assert!((exact - chunked).abs() <= 1e-12 * exact.max(1.0));
    }

    #[test]
    fn minibatch_mode_labels_round_trip() {
        for mode in [KmeansMode::Lloyd, KmeansMode::MiniBatch] {
            assert_eq!(KmeansMode::parse(mode.label()), Some(mode));
            assert_eq!(format!("{mode}"), mode.label());
        }
        assert_eq!(KmeansMode::parse("hamerly"), None);
        assert_eq!(KmeansMode::default(), KmeansMode::Lloyd);
    }

    #[test]
    fn minibatch_recovers_blobs_within_tolerance() {
        let (data, n) = blobs();
        let mb = kmeans_minibatch(&data, n, 2, 3, 7, 32).unwrap();
        let reference = kmeans_reference(&data, n, 2, 3, 100, 7).unwrap();
        assert_eq!(mb.occupied_clusters(), 3);
        // The documented tolerance: mini-batch inertia within 1.5x of the
        // full-Lloyd reference (plus absolute slack for near-zero optima).
        assert!(
            mb.inertia <= 1.5 * reference.inertia + 1e-9,
            "minibatch inertia {} vs reference {}",
            mb.inertia,
            reference.inertia
        );
    }

    #[test]
    fn minibatch_tolerance_holds_over_random_blob_shapes() {
        // Property form of the tolerance pin: for random blob-shaped
        // inputs (random center count, dimensionality, batch and seed),
        // the streaming kernel's inertia stays within the documented 1.5x
        // of the full-Lloyd reference, and the streamed run is a pure
        // function of its seed. The generator keeps within-cluster spread
        // comparable to the center spread: with vanishing scatter and a
        // small first batch, mini-batch seeding can merge two far blobs —
        // a known Sculley-kernel failure mode outside the tolerance's
        // stated regime (the pipeline's projected BBV rows are bounded,
        // L1-normalized coordinates).
        sampsim_util::prop::run_cases("minibatch-tolerance", 24, |g| {
            let k = g.usize_in(2..6);
            let dim = g.usize_in(2..8);
            let per_cluster = g.usize_in(20..60);
            let n = k * per_cluster;
            let data_seed = g.u64_in(0..u64::MAX - 1);
            let mut rng = Xoshiro256StarStar::seed_from_u64(data_seed);
            let centers: Vec<f64> = (0..k * dim).map(|_| (rng.next_f64() - 0.5) * 4.0).collect();
            let data: Vec<f64> = (0..n)
                .flat_map(|i| {
                    let c = i % k;
                    (0..dim)
                        .map(|d| centers[c * dim + d] + (rng.next_f64() - 0.5) * 2.0)
                        .collect::<Vec<f64>>()
                })
                .collect();
            let batch = g.usize_in(8..128);
            let seed = g.u64_in(0..u64::MAX - 1);
            let mb = kmeans_minibatch(&data, n, dim, k, seed, batch).unwrap();
            let again = kmeans_minibatch(&data, n, dim, k, seed, batch).unwrap();
            assert_bit_identical(&mb, &again, "minibatch replay");
            let reference = kmeans_reference(&data, n, dim, k, 100, seed).unwrap();
            assert!(
                mb.inertia <= 1.5 * reference.inertia + 1e-9,
                "n={n} dim={dim} k={k} batch={batch} seed={seed:#x}: \
                 minibatch inertia {} vs reference {}",
                mb.inertia,
                reference.inertia
            );
        });
    }

    #[test]
    fn minibatch_deterministic_for_seed() {
        let data = random_matrix(42, 300, 15, 4.0);
        let a = kmeans_minibatch(&data, 300, 15, 12, 9, 64).unwrap();
        let b = kmeans_minibatch(&data, 300, 15, 12, 9, 64).unwrap();
        assert_bit_identical(&a, &b, "minibatch determinism");
    }

    #[test]
    fn minibatch_streaming_is_a_pure_function_of_push_order() {
        let data = random_matrix(5, 100, 4, 2.0);
        let mut a = MiniBatchKmeans::new(4, 5, 16, 3).unwrap();
        let mut b = MiniBatchKmeans::new(4, 5, 16, 3).unwrap();
        for i in 0..100 {
            a.push(&data[i * 4..(i + 1) * 4]);
            b.push(&data[i * 4..(i + 1) * 4]);
        }
        assert_eq!(a.seen(), 100);
        let ca = a.finish().unwrap();
        let cb = b.finish().unwrap();
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn minibatch_caps_k_and_rejects_bad_shapes() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let r = kmeans_minibatch(&data, 2, 2, 10, 1, 8).unwrap();
        assert_eq!(r.k, 2);
        assert!(r.inertia <= 1e-12);
        assert_eq!(
            kmeans_minibatch(&[1.0], 1, 2, 1, 1, 8),
            Err(KmeansError::ShapeMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            MiniBatchKmeans::new(0, 3, 8, 1),
            Err(KmeansError::ZeroDim)
        ));
        assert!(matches!(
            MiniBatchKmeans::new(2, 0, 8, 1),
            Err(KmeansError::ZeroK)
        ));
        assert!(MiniBatchKmeans::new(2, 3, 8, 1).unwrap().finish().is_err());
    }

    #[test]
    fn minibatch_partial_final_batch_is_folded_in() {
        // 37 points with batch 16: the last 5 only reach the centroids via
        // the finish()-time flush.
        let data = random_matrix(8, 37, 3, 3.0);
        let mut mb = MiniBatchKmeans::new(3, 4, 16, 11).unwrap();
        for i in 0..37 {
            mb.push(&data[i * 3..(i + 1) * 3]);
        }
        let centroids = mb.finish().unwrap();
        assert_eq!(centroids.len(), 4 * 3);
        assert!(centroids.iter().all(|c| c.is_finite()));
    }
}

//! Differential suite: the packed-order fast path in [`Cache`] must be
//! bit-identical to the frozen pre-optimization model
//! ([`ReferenceCache`]) — per-access hit/miss results, counters,
//! write-backs and residency (`peek`) — across policies, geometries and
//! seeded access mixes. Replacement stamps vs. packed recency words are
//! internal representation; everything observable is contractual.

use sampsim_cache::policy::ReplacementPolicy;
use sampsim_cache::{Cache, CacheConfig, CacheStats, ReferenceCache};
use sampsim_util::rng::SplitMix64;

/// Drives both models through an identical seeded stream of reads,
/// writes, warmup accesses, flushes and stat resets, asserting
/// equivalence after every access and at every checkpoint.
fn drive(config: CacheConfig, seed: u64, accesses: usize, ws_bytes: u64) -> CacheStats {
    let mut fast = Cache::new(config);
    let mut reference = ReferenceCache::new(config);
    let mut rng = SplitMix64::new(seed);
    let ws_mask = ws_bytes - 1;
    for i in 0..accesses {
        let addr = rng.next_u64() & ws_mask;
        let is_write = i % 4 == 3;
        let count = i % 97 != 0; // sprinkle warmup accesses through the run
        let a = fast.access_rw(addr, is_write, count);
        let b = reference.access_rw(addr, is_write, count);
        assert_eq!(
            a, b,
            "access #{i} diverged ({:?}, addr {addr:#x})",
            config.policy
        );
        if i % 251 == 0 {
            let probe = rng.next_u64() & ws_mask;
            assert_eq!(
                fast.peek(probe),
                reference.peek(probe),
                "peek diverged at #{i} ({:?})",
                config.policy
            );
            assert_eq!(fast.stats(), reference.stats(), "stats diverged at #{i}");
        }
        if i == accesses / 2 {
            fast.reset_stats();
            reference.reset_stats();
        }
        if i == (3 * accesses) / 4 {
            fast.flush();
            reference.flush();
        }
    }
    assert_eq!(fast.stats(), reference.stats());
    fast.stats()
}

const POLICIES: [ReplacementPolicy; 4] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
    ReplacementPolicy::TreePlru,
];

#[test]
fn small_geometries_all_policies() {
    // (size, ways, line): direct-mapped through 8-way, all ways pow2 so
    // tree-PLRU constructs everywhere.
    let shapes = [(256, 1, 32), (256, 2, 32), (256, 4, 32), (1024, 8, 32)];
    for &(size, ways, line) in &shapes {
        for policy in POLICIES {
            let config = CacheConfig::new(size, ways, line, 1).with_policy(policy);
            let stats = drive(config, 0x5EED ^ size, 20_000, 4096);
            assert!(stats.accesses > 0);
        }
    }
}

#[test]
fn bench_geometry_matches_reference() {
    // The `sampsim perf` kernel shape: 32 KiB, 8-way, 64 B lines, with a
    // working set 4x the capacity so the miss/eviction path dominates.
    for policy in POLICIES {
        let config = CacheConfig::new(32 << 10, 8, 64, 4).with_policy(policy);
        drive(config, 0xC0FF_EE00, 60_000, 128 << 10);
    }
}

#[test]
fn sixteen_way_boundary_uses_packed_order() {
    // ways == 16 is the last shape served by the packed nibble word.
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
        let config = CacheConfig::new(2 << 10, 16, 32, 1).with_policy(policy);
        drive(config, 0x1616, 30_000, 16 << 10);
    }
}

#[test]
fn wide_associativity_falls_back_to_stamps() {
    // Table I's 32-way L1 exercises the stamp fallback; still must match.
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
        let config = CacheConfig::new(32 << 10, 32, 32, 1).with_policy(policy);
        drive(config, 0x3232, 30_000, 128 << 10);
    }
}

#[test]
fn hit_heavy_stream_matches() {
    // Working set inside capacity: exercises the hit/move-to-front path
    // far more than eviction.
    for policy in POLICIES {
        let config = CacheConfig::new(8 << 10, 8, 64, 1).with_policy(policy);
        drive(config, 0xA11_517, 40_000, 4 << 10);
    }
}

//! The multi-level hierarchy: L1I + L1D, unified L2, unified L3, plus
//! instruction and data TLBs.
//!
//! The model is a demand-fill, non-inclusive hierarchy: a miss at level *N*
//! probes level *N+1*, and the line is installed at every level on the way
//! back. Only demand traffic is counted (no write-back traffic), matching
//! the `allcache` Pintool's reported statistics.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::tlb::{Tlb, TlbConfig, TlbStats};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// First-level instruction cache.
    L1I,
    /// First-level data cache.
    L1D,
    /// Unified second level.
    L2,
    /// Unified third level (LLC).
    L3,
    /// Main memory (missed every cache).
    Mem,
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3 (LLC).
    pub l3: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Main-memory latency in cycles (timing model input).
    pub mem_latency: u32,
    /// Next-line prefetch into L2 on L2 demand misses.
    pub next_line_prefetch: bool,
}

/// Counters for every structure in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierarchyStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// Instruction TLB counters.
    pub itlb: TlbStats,
    /// Data TLB counters.
    pub dtlb: TlbStats,
    /// Next-line prefetches issued.
    pub prefetches: u64,
}

impl HierarchyStats {
    /// Accumulates another snapshot.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1i.merge(&other.l1i);
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.l3.merge(&other.l3);
        self.itlb.merge(&other.itlb);
        self.dtlb.merge(&other.dtlb);
        self.prefetches += other.prefetches;
    }
}

/// The simulated cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    warmup: bool,
    prefetches: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            warmup: false,
            prefetches: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Enables or disables warmup mode. While enabled, accesses update
    /// cache state but no counters — used to prime caches before measuring
    /// a simulation point (paper §IV-D, "Warmup Regional Run").
    pub fn set_warmup(&mut self, warmup: bool) {
        self.warmup = warmup;
    }

    /// Whether warmup mode is active.
    pub fn warmup(&self) -> bool {
        self.warmup
    }

    /// A data access (load when `is_write` is false, store when true).
    /// Returns the level that satisfied it.
    #[inline]
    pub fn access_data(&mut self, addr: u64, is_write: bool) -> Level {
        let count = !self.warmup;
        self.dtlb.access(addr, count);
        if self.l1d.access_rw(addr, is_write, count) {
            return Level::L1D;
        }
        if self.l2.access(addr, count) {
            return Level::L2;
        }
        // L2 demand miss: optionally pull the next line into L2/L3 as an
        // uncounted prefetch (a simple next-line prefetcher).
        if self.config.next_line_prefetch {
            let next = addr + self.config.l2.line_bytes;
            if !self.l2.peek(next) {
                self.l2.access(next, false);
                self.l3.access(next, false);
                if count {
                    self.prefetches += 1;
                }
            }
        }
        if self.l3.access(addr, count) {
            return Level::L3;
        }
        Level::Mem
    }

    /// An instruction fetch at `pc`. Returns the level that satisfied it.
    #[inline]
    pub fn fetch(&mut self, pc: u64) -> Level {
        let count = !self.warmup;
        self.itlb.access(pc, count);
        if self.l1i.access(pc, count) {
            return Level::L1I;
        }
        if self.l2.access(pc, count) {
            return Level::L2;
        }
        if self.l3.access(pc, count) {
            return Level::L3;
        }
        Level::Mem
    }

    /// Latency, in cycles, of an access satisfied at `level` (timing-model
    /// helper; the L1 latency is charged even on hits).
    pub fn latency_of(&self, level: Level) -> u32 {
        match level {
            Level::L1I => self.config.l1i.latency,
            Level::L1D => self.config.l1d.latency,
            Level::L2 => self.config.l2.latency,
            Level::L3 => self.config.l3.latency,
            Level::Mem => self.config.mem_latency,
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
            prefetches: self.prefetches,
        }
    }

    /// Resets counters, preserving cache contents.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.prefetches = 0;
    }

    /// Invalidates everything and resets counters (cold restart).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
        let itlb_cfg = *self.itlb.config();
        let dtlb_cfg = *self.dtlb.config();
        self.itlb = Tlb::new(itlb_cfg);
        self.dtlb = Tlb::new(dtlb_cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn miss_propagates_to_all_levels() {
        let mut h = Hierarchy::new(configs::allcache_table1());
        assert_eq!(h.access_data(0x100, false), Level::Mem);
        let s = h.stats();
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l3.misses, 1);
        assert_eq!(s.dtlb.misses, 1);
        // Second access hits L1D and never reaches L2/L3.
        assert_eq!(h.access_data(0x100, true), Level::L1D);
        let s = h.stats();
        assert_eq!(s.l2.accesses, 1);
        assert_eq!(s.l3.accesses, 1);
    }

    #[test]
    fn fetch_uses_instruction_side() {
        let mut h = Hierarchy::new(configs::allcache_table1());
        assert_eq!(h.fetch(0x40_0000), Level::Mem);
        assert_eq!(h.fetch(0x40_0000), Level::L1I);
        let s = h.stats();
        assert_eq!(s.l1i.accesses, 2);
        assert_eq!(s.l1d.accesses, 0);
        assert_eq!(s.itlb.accesses, 2);
    }

    #[test]
    fn warmup_fills_without_counting() {
        let mut h = Hierarchy::new(configs::allcache_table1());
        h.set_warmup(true);
        h.access_data(0x5000, false);
        h.set_warmup(false);
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 0);
        assert_eq!(h.access_data(0x5000, false), Level::L1D);
    }

    #[test]
    fn l1_eviction_can_still_hit_l3() {
        // Walk a working set bigger than L1D (32 kB) but smaller than L3.
        let mut h = Hierarchy::new(configs::allcache_table1());
        let ws = 256 << 10;
        for addr in (0..ws).step_by(32) {
            h.access_data(addr, false);
        }
        h.reset_stats();
        // Second pass: misses L1D (capacity) but the L3 holds the set.
        for addr in (0..ws).step_by(32) {
            let lvl = h.access_data(addr, false);
            assert_ne!(lvl, Level::Mem, "L3 should hold the working set");
        }
        let s = h.stats();
        assert!(s.l1d.misses > 0, "L1D too small for the working set");
        assert_eq!(s.l3.misses, 0);
    }

    #[test]
    fn latencies_exposed() {
        let h = Hierarchy::new(configs::i7_table3());
        assert_eq!(h.latency_of(Level::L1D), 4);
        assert_eq!(h.latency_of(Level::L2), 10);
        assert_eq!(h.latency_of(Level::L3), 30);
        assert!(h.latency_of(Level::Mem) > 100);
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut h = Hierarchy::new(configs::allcache_table1());
        h.access_data(0x100, false);
        h.flush();
        assert_eq!(h.access_data(0x100, false), Level::Mem);
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = HierarchyStats::default();
        let mut b = HierarchyStats::default();
        b.l3.accesses = 10;
        b.l3.misses = 4;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.l3.accesses, 20);
        assert_eq!(a.l3.misses, 8);
    }
}

impl sampsim_util::codec::Encode for HierarchyStats {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        self.l1i.encode(enc);
        self.l1d.encode(enc);
        self.l2.encode(enc);
        self.l3.encode(enc);
        self.itlb.encode(enc);
        self.dtlb.encode(enc);
        enc.put_u64(self.prefetches);
    }
}

impl sampsim_util::codec::Decode for HierarchyStats {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            l1i: crate::cache::CacheStats::decode(dec)?,
            l1d: crate::cache::CacheStats::decode(dec)?,
            l2: crate::cache::CacheStats::decode(dec)?,
            l3: crate::cache::CacheStats::decode(dec)?,
            itlb: crate::tlb::TlbStats::decode(dec)?,
            dtlb: crate::tlb::TlbStats::decode(dec)?,
            prefetches: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::configs;

    #[test]
    fn next_line_prefetch_helps_streaming() {
        let mut cfg = configs::i7_table3();
        let run = |cfg: HierarchyConfig| {
            let mut h = Hierarchy::new(cfg);
            // Sequential 8-byte walk over 1 MB.
            for addr in (0..(1u64 << 20)).step_by(8) {
                h.access_data(addr, false);
            }
            h.stats()
        };
        let base = run(cfg);
        cfg.next_line_prefetch = true;
        let pf = run(cfg);
        assert!(pf.prefetches > 0);
        assert!(
            pf.l3.misses < base.l3.misses,
            "prefetching should cut demand misses beyond L2 ({} vs {})",
            pf.l3.misses,
            base.l3.misses
        );
        // Demand access counts are unchanged by (uncounted) prefetch fills.
        assert_eq!(pf.l1d.accesses, base.l1d.accesses);
    }

    #[test]
    fn prefetch_stats_roundtrip_codec() {
        let s = HierarchyStats {
            prefetches: 42,
            ..HierarchyStats::default()
        };
        let bytes = sampsim_util::codec::to_bytes(&s);
        let back: HierarchyStats = sampsim_util::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back.prefetches, 42);
    }
}

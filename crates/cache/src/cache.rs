//! A single set-associative cache.

use crate::policy::{PolicyState, ReplacementPolicy};

/// Static configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles (used by the timing model; ignored by the
    /// functional simulator).
    pub latency: u32,
    /// Victim-selection policy (LRU unless overridden).
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two, `ways ≥ 1`, and the
    /// capacity is an exact multiple of `ways * line_bytes`.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64, latency: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "associativity must be at least 1");
        assert!(
            size_bytes.is_multiple_of(u64::from(ways) * line_bytes) && size_bytes > 0,
            "capacity must be a positive multiple of ways * line size"
        );
        let sets = size_bytes / (u64::from(ways) * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            size_bytes,
            ways,
            line_bytes,
            latency,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Overrides the replacement policy (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if tree-PLRU is requested with a non-power-of-two
    /// associativity.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                self.ways.is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        self.policy = policy;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }

    /// Bytes between two addresses that index the same set
    /// (`sets * line_bytes`). Address streams whose stride is a multiple
    /// of this span conflict in a single set; static analysis uses it to
    /// flag such pathologies.
    pub fn set_span_bytes(&self) -> u64 {
        self.sets() * self.line_bytes
    }
}

/// Access/miss counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand accesses observed.
    pub accesses: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-backs produced).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in percent (0 when no accesses).
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

const INVALID: u64 = u64::MAX;

/// How the probe loop tracks replacement order. Chosen once at
/// construction from the policy and associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeMode {
    /// LRU/FIFO at exactly 8 ways (the perf-kernel and i7 L1 shape):
    /// tags live in `[u64; 8]` rows (one 64 B line per set) and recency
    /// order + dirty bits share a single meta word per set.
    Packed8 { refresh: bool },
    /// LRU/FIFO at `ways <= 16`: exact recency order packed into one
    /// nibble-list word per set. `refresh` is true for LRU (hits move the
    /// way to the MRU front) and false for FIFO (insertion order only).
    Packed { refresh: bool },
    /// LRU/FIFO at wider associativity: the original zipped tag+stamp
    /// scan (see [`crate::reference::ReferenceCache`]).
    Stamped,
    /// Random / tree-PLRU: the policy selects victims itself and no
    /// recency state is kept in the cache.
    Policy,
}

/// Returns the packed order word of an empty set: recency position `p`
/// (nibble `p`, LSB first, position 0 = MRU) holds way `ways - 1 - p`, so
/// the first victim — the nibble at position `ways - 1` — is way 0. That
/// matches the stamp scan's tie-break on an all-invalid set (lowest index
/// wins), and by induction the whole cold-fill sequence (way 0, 1, ...).
fn initial_order(ways: usize) -> u64 {
    let mut order = 0u64;
    for p in 0..ways {
        order |= ((ways - 1 - p) as u64) << (4 * p);
    }
    order
}

/// Position of `way` in a packed order word (nibble index from the LSB).
#[inline]
fn nibble_position(order: u64, way: u64, ways: usize) -> usize {
    let mut p = 0;
    while (order >> (4 * p)) & 0xF != way {
        p += 1;
        debug_assert!(p < ways, "way {way} missing from order {order:#x}");
    }
    p
}

/// `Packed8` meta-word layout: recency nibbles in bits 0..32, dirty
/// bitmask in bits 48..56.
const META_DIRTY_SHIFT: u32 = 48;
const META_ORDER_MASK: u64 = 0xFFFF_FFFF;

/// A set-associative cache.
///
/// Tags are stored in one flat array indexed by `set * ways + way`, so a
/// set's tags share a cache line and the hit check is a short branchless
/// scan. For LRU and FIFO at `ways <= 16` the replacement order is *not*
/// kept as timestamps: each set owns a single packed `u64` listing its
/// ways in exact recency order (four bits per way, MRU at the LSB). A hit
/// is a register-only move-to-front, and a miss reads its victim straight
/// from the top nibble instead of scanning for the minimum stamp. Because
/// the old stamp clock was strictly increasing, stamps were unique per
/// set and defined exactly this order, so counters, per-access results
/// and eviction choices are bit-identical to the stamp implementation —
/// enforced differentially against [`crate::reference::ReferenceCache`]
/// in `tests/differential.rs`.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Flat tag array (all modes except `Packed8`).
    tags: Vec<u64>,
    /// One 64 B tag row per set (`Packed8` only; `tags` is empty).
    tags8: Vec<[u64; 8]>,
    /// Combined order+dirty meta word per set (`Packed8` only).
    meta: Vec<u64>,
    /// Per-way dirty flags (`Stamped`/`Policy` modes; empty for `Packed`,
    /// which keeps dirty state as one bitmask word per set).
    dirty: Vec<bool>,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
    ways: usize,
    mode: ProbeMode,
    /// One packed recency word per set (`ProbeMode::Packed` only).
    order: Vec<u64>,
    /// One dirty bitmask word per set (`ProbeMode::Packed` only).
    dirty_mask: Vec<u64>,
    /// Mask selecting the `4 * ways` live bits of an order word.
    order_mask: u64,
    /// Stamp array (`ProbeMode::Stamped` only; empty otherwise).
    stamps: Vec<u64>,
    clock: u64,
    policy: PolicyState,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let entries = (sets * u64::from(config.ways)) as usize;
        let ways = config.ways as usize;
        let policy = PolicyState::new(
            config.policy,
            sets as usize,
            config.ways,
            0xCAC4E ^ config.size_bytes,
        );
        let mode = if policy.stamp_based() {
            if ways == 8 {
                ProbeMode::Packed8 {
                    refresh: policy.refresh_on_hit(),
                }
            } else if ways <= 16 {
                ProbeMode::Packed {
                    refresh: policy.refresh_on_hit(),
                }
            } else {
                ProbeMode::Stamped
            }
        } else {
            ProbeMode::Policy
        };
        let packed = matches!(mode, ProbeMode::Packed { .. });
        let packed8 = matches!(mode, ProbeMode::Packed8 { .. });
        Self {
            config,
            tags: if packed8 {
                Vec::new()
            } else {
                vec![INVALID; entries]
            },
            tags8: if packed8 {
                vec![[INVALID; 8]; sets as usize]
            } else {
                Vec::new()
            },
            meta: if packed8 {
                vec![initial_order(8); sets as usize]
            } else {
                Vec::new()
            },
            dirty: if packed || packed8 {
                Vec::new()
            } else {
                vec![false; entries]
            },
            stats: CacheStats::default(),
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            ways,
            mode,
            order: if packed {
                vec![initial_order(ways); sets as usize]
            } else {
                Vec::new()
            },
            dirty_mask: if packed {
                vec![0; sets as usize]
            } else {
                Vec::new()
            },
            order_mask: if ways >= 16 {
                u64::MAX
            } else {
                (1u64 << (4 * ways)) - 1
            },
            stamps: if mode == ProbeMode::Stamped {
                vec![0; entries]
            } else {
                Vec::new()
            },
            clock: 0,
            policy,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (state is preserved — this is what makes warmed-up
    /// measurement possible).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and resets counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.tags8.fill([INVALID; 8]);
        self.meta.fill(initial_order(8));
        self.dirty.fill(false);
        if !self.order.is_empty() {
            self.order.fill(initial_order(self.ways));
        }
        self.dirty_mask.fill(0);
        self.stamps.fill(0);
        self.clock = 0;
        self.reset_stats();
    }

    /// Probes and updates the cache for `addr`. Returns `true` on a hit.
    /// When `count` is false the access updates state but not counters
    /// (warmup mode).
    #[inline]
    pub fn access(&mut self, addr: u64, count: bool) -> bool {
        self.access_rw(addr, false, count)
    }

    /// [`Cache::access`] with an explicit write flag: writes mark the line
    /// dirty (write-allocate, write-back), and evicting a dirty line
    /// counts a write-back.
    #[inline]
    pub fn access_rw(&mut self, addr: u64, is_write: bool, count: bool) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        self.stats.accesses += u64::from(count);
        match self.mode {
            ProbeMode::Packed8 { refresh } => {
                self.access_packed8(line, set, is_write, count, refresh)
            }
            ProbeMode::Packed { refresh } => {
                let base = set * self.ways;
                self.access_packed(line, set, base, is_write, count, refresh)
            }
            ProbeMode::Stamped => {
                let base = set * self.ways;
                self.access_stamped(line, set, base, is_write, count)
            }
            ProbeMode::Policy => {
                let base = set * self.ways;
                self.access_policy(line, set, base, is_write, count)
            }
        }
    }

    /// The 8-way specialization: the tag row is a `[u64; 8]` (one cache
    /// line), the recency order and dirty bits share one meta word, and
    /// the whole access is branchless — a hit and a miss are the same
    /// operation, "move the way at recency position `p` to the MRU
    /// front", with `p` the matched way's position on a hit and the LRU
    /// position (7) on a miss. Set indices are derived by masking with
    /// `len - 1` so the optimizer drops the bounds checks.
    #[inline(always)]
    fn access_packed8(
        &mut self,
        tag: u64,
        _set: usize,
        is_write: bool,
        count: bool,
        refresh: bool,
    ) -> bool {
        let set = (tag as usize) & (self.tags8.len() - 1);
        let row = &mut self.tags8[set];
        let mut found = 0u32;
        for (w, &t) in row.iter().enumerate() {
            found |= u32::from(t == tag) << w;
        }
        let mset = (tag as usize) & (self.meta.len() - 1);
        let meta = self.meta[mset];
        let hit = found != 0;
        let hit_mask = u32::from(hit).wrapping_neg();
        // Way index of the hit; 32 (garbage, masked out below) on a miss.
        let w = found.trailing_zeros();
        let ord = (meta & META_ORDER_MASK) as u32;
        // Branchless position-of-way-w: XOR broadcasts w into every
        // nibble, then the zero-nibble trick flags the (unique) match.
        // Flags above the lowest zero nibble can be borrow artifacts, so
        // only the lowest — which trailing_zeros selects — is trusted.
        let eq = ord ^ w.wrapping_mul(0x1111_1111);
        let zero_flags = eq.wrapping_sub(0x1111_1111) & !eq & 0x8888_8888;
        let p = ((zero_flags.trailing_zeros() >> 2) & hit_mask) | (7 & !hit_mask);
        let sh = 4 * p;
        let way = (ord >> sh) & 0xF;
        // Move-to-front: nibbles above p stay, 0..p shift up one slot.
        let low_mask = (1u32 << sh) - 1;
        let keep_mask = !(low_mask | (0xF << sh));
        let moved = (ord & keep_mask) | ((ord & low_mask) << 4) | way;
        // FIFO read/write hits leave the order untouched.
        let reorder_mask = u32::from(refresh || !hit).wrapping_neg();
        let new_ord = (moved & reorder_mask) | (ord & !reorder_mask);
        let dirty_shift = META_DIRTY_SHIFT + way;
        let way_slot = (way & 7) as usize;
        let missed = u64::from(!hit);
        let counted = u64::from(count);
        let valid_dirty = u64::from(row[way_slot] != INVALID) & (meta >> dirty_shift) & 1;
        self.stats.misses += missed & counted;
        self.stats.writebacks += missed & valid_dirty & counted;
        // A miss clears the victim's dirty bit before the install sets it.
        let clear = missed << dirty_shift;
        self.meta[mset] = (meta & !(META_ORDER_MASK | clear))
            | u64::from(new_ord)
            | (u64::from(is_write) << dirty_shift);
        // On a hit this rewrites the same tag; on a miss it installs.
        row[way_slot] = tag;
        hit
    }

    /// The packed LRU/FIFO fast path for `ways <= 16` (8-way sets take
    /// [`Cache::access_packed8`] instead): branchless tag scan,
    /// register-only order maintenance, no victim scan on misses.
    #[inline]
    fn access_packed(
        &mut self,
        tag: u64,
        set: usize,
        base: usize,
        is_write: bool,
        count: bool,
        refresh: bool,
    ) -> bool {
        let ways = self.ways;
        let set_tags = &self.tags[base..base + ways];
        let mut found = 0u32;
        for (w, &t) in set_tags.iter().enumerate() {
            found |= u32::from(t == tag) << w;
        }
        if found != 0 {
            let w = found.trailing_zeros() as usize;
            if refresh {
                let order = self.order[set];
                let p = nibble_position(order, w as u64, ways);
                if p != 0 {
                    // Nibbles above p stay, 0..p shift up one slot, w
                    // lands at the MRU front.
                    let low_mask = (1u64 << (4 * p)) - 1;
                    let keep_mask = !(low_mask | (0xF << (4 * p)));
                    self.order[set] = (order & keep_mask) | ((order & low_mask) << 4) | w as u64;
                }
            }
            if is_write {
                self.dirty_mask[set] |= 1u64 << w;
            }
            return true;
        }
        self.stats.misses += u64::from(count);
        let order = self.order[set];
        let victim = ((order >> (4 * (ways - 1))) & 0xF) as usize;
        self.order[set] = ((order << 4) & self.order_mask) | victim as u64;
        let slot = base + victim;
        let dirty = self.dirty_mask[set];
        let evict_dirty = self.tags[slot] != INVALID && (dirty >> victim) & 1 != 0;
        self.stats.writebacks += u64::from(evict_dirty && count);
        self.dirty_mask[set] = (dirty & !(1u64 << victim)) | (u64::from(is_write) << victim);
        self.tags[slot] = tag;
        false
    }

    /// LRU/FIFO above 16 ways: the original zipped tag+stamp scan.
    #[inline(never)]
    fn access_stamped(
        &mut self,
        tag: u64,
        _set: usize,
        base: usize,
        is_write: bool,
        count: bool,
    ) -> bool {
        self.clock += 1;
        let tags = &self.tags[base..base + self.ways];
        let stamps = &self.stamps[base..base + self.ways];
        let mut stamp_victim = 0usize;
        let mut victim_stamp = u64::MAX;
        let mut hit_way = None;
        for (w, (&t, &s)) in tags.iter().zip(stamps).enumerate() {
            if t == tag {
                hit_way = Some(w);
                break;
            }
            if s < victim_stamp {
                victim_stamp = s;
                stamp_victim = w;
            }
        }
        if let Some(w) = hit_way {
            if self.policy.refresh_on_hit() {
                self.stamps[base + w] = self.clock;
            }
            if is_write {
                self.dirty[base + w] = true;
            }
            return true;
        }
        if count {
            self.stats.misses += 1;
        }
        let slot = base + stamp_victim;
        if self.tags[slot] != INVALID && self.dirty[slot] && count {
            self.stats.writebacks += 1;
        }
        self.tags[slot] = tag;
        self.stamps[slot] = self.clock;
        self.dirty[slot] = is_write;
        false
    }

    /// Random / tree-PLRU: victims come from the policy; recency state
    /// lives in [`PolicyState`] (tree bits) or nowhere (random).
    #[inline(never)]
    fn access_policy(
        &mut self,
        tag: u64,
        set: usize,
        base: usize,
        is_write: bool,
        count: bool,
    ) -> bool {
        let ways = self.ways;
        if let Some(w) = self.tags[base..base + ways].iter().position(|&t| t == tag) {
            self.policy.touch(set, w, ways);
            if is_write {
                self.dirty[base + w] = true;
            }
            return true;
        }
        if count {
            self.stats.misses += 1;
        }
        let victim = self
            .policy
            .victim(set, ways)
            .expect("non-stamp policies select their own victims");
        let slot = base + victim;
        if self.tags[slot] != INVALID && self.dirty[slot] && count {
            self.stats.writebacks += 1;
        }
        self.tags[slot] = tag;
        self.dirty[slot] = is_write;
        self.policy.touch(set, victim, ways);
        false
    }

    /// Probes without updating replacement state or counters.
    #[inline]
    pub fn peek(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        if !self.tags8.is_empty() {
            return self.tags8[set].contains(&line);
        }
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256B.
        Cache::new(CacheConfig::new(256, 2, 32, 1))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x100, true));
        assert!(c.access(0x100, true));
        assert!(c.access(0x11F, true), "same 32B line");
        assert!(!c.access(0x120, true), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three conflicting lines in a 2-way set: set index from bits 5-6.
        let a = 0x000; // set 0
        let b = 0x080; // 4 sets * 32B = 128B stride -> same set
        let d = 0x100;
        c.access(a, true);
        c.access(b, true);
        c.access(a, true); // a most recent
        c.access(d, true); // evicts b
        assert!(c.peek(a));
        assert!(!c.peek(b));
        assert!(c.peek(d));
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 8 sets x 1 way x 32B = 256B direct-mapped.
        let mut c = Cache::new(CacheConfig::new(256, 1, 32, 1));
        c.access(0x000, true);
        assert!(!c.access(0x100, true), "conflicting line misses");
        assert!(!c.access(0x000, true), "original was evicted");
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn warmup_accesses_not_counted() {
        let mut c = small();
        c.access(0x40, false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x40, true), "warmed line hits");
        assert_eq!(c.stats().accesses, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn flush_clears_state() {
        let mut c = small();
        c.access(0x40, true);
        c.flush();
        assert!(!c.peek(0x40));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn miss_rate_pct() {
        let s = CacheStats {
            accesses: 200,
            misses: 50,
            writebacks: 0,
        };
        assert_eq!(s.miss_rate_pct(), 25.0);
        assert_eq!(CacheStats::default().miss_rate_pct(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(256, 2, 33, 1);
    }

    #[test]
    fn table1_shapes_valid() {
        // The paper's Table I caches must construct.
        CacheConfig::new(32 << 10, 32, 32, 1);
        CacheConfig::new(2 << 20, 1, 32, 10);
        CacheConfig::new(16 << 20, 1, 32, 30);
    }
}

impl sampsim_util::codec::Encode for CacheStats {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        enc.put_u64(self.accesses);
        enc.put_u64(self.misses);
        enc.put_u64(self.writebacks);
    }
}

impl sampsim_util::codec::Decode for CacheStats {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            accesses: dec.take_u64()?,
            misses: dec.take_u64()?,
            writebacks: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::policy::ReplacementPolicy;

    fn filled(policy: ReplacementPolicy) -> Cache {
        // 2 sets x 4 ways x 32B = 256B.
        let mut c = Cache::new(CacheConfig::new(256, 4, 32, 1).with_policy(policy));
        // Fill set 0 with lines a..d (set stride = 64B).
        for i in 0..4u64 {
            c.access(i * 64, true);
        }
        c
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        let mut c = filled(ReplacementPolicy::Fifo);
        // Re-touch the oldest line; FIFO must still evict it first.
        c.access(0, true);
        c.access(4 * 64, true); // new conflicting line
        assert!(!c.peek(0), "FIFO evicts insertion-oldest despite the hit");
        // LRU, in contrast, protects the re-touched line.
        let mut l = filled(ReplacementPolicy::Lru);
        l.access(0, true);
        l.access(4 * 64, true);
        assert!(l.peek(0), "LRU protects the recently used line");
    }

    #[test]
    fn random_policy_works_and_hits_resident_lines() {
        let mut c = filled(ReplacementPolicy::Random);
        c.access(0, true); // exercising the random-eviction path must not panic
        let s = c.stats();
        assert!(s.accesses >= 4);
    }

    #[test]
    fn plru_behaves_like_lru_on_sequential_fill() {
        let mut c = filled(ReplacementPolicy::TreePlru);
        // Next conflicting fill should evict one of the earliest ways,
        // never the most recently inserted one.
        c.access(4 * 64, true);
        assert!(c.peek(3 * 64), "most recent line survives under PLRU");
    }

    #[test]
    fn policies_differ_on_scan_workload() {
        // A cyclic scan of 5 lines over a 4-way set: LRU thrashes (0%
        // hits); random replacement retains some lines.
        let run = |policy| {
            let mut c = Cache::new(CacheConfig::new(256, 4, 32, 1).with_policy(policy));
            for _ in 0..200 {
                for i in 0..5u64 {
                    c.access(i * 64, true);
                }
            }
            c.stats()
        };
        let lru = run(ReplacementPolicy::Lru);
        let random = run(ReplacementPolicy::Random);
        assert_eq!(lru.accesses - lru.misses, 0, "LRU thrashes a cyclic scan");
        assert!(
            random.misses < random.accesses,
            "random replacement gets some hits on a cyclic scan"
        );
    }
}

#[cfg(test)]
mod writeback_tests {
    use super::*;

    #[test]
    fn dirty_eviction_counts_writeback() {
        // 1 set x 2 ways x 32B.
        let mut c = Cache::new(CacheConfig::new(64, 2, 32, 1));
        c.access_rw(0x000, true, true); // dirty fill
        c.access_rw(0x040, false, true); // clean fill
        assert_eq!(c.stats().writebacks, 0);
        c.access_rw(0x080, false, true); // evicts dirty 0x000
        assert_eq!(c.stats().writebacks, 1);
        c.access_rw(0x0C0, false, true); // evicts clean 0x040
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(CacheConfig::new(64, 2, 32, 1));
        c.access_rw(0x000, false, true); // clean fill
        c.access_rw(0x000, true, true); // write hit -> dirty
        c.access_rw(0x040, false, true);
        c.access_rw(0x080, false, true); // evicts 0x000 (dirty)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn warmup_evictions_not_counted() {
        let mut c = Cache::new(CacheConfig::new(64, 2, 32, 1));
        c.access_rw(0x000, true, false);
        c.access_rw(0x040, true, false);
        c.access_rw(0x080, true, false); // dirty eviction in warmup
        assert_eq!(c.stats().writebacks, 0);
    }
}

//! A single set-associative cache.

use crate::policy::{PolicyState, ReplacementPolicy};

/// Static configuration of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles (used by the timing model; ignored by the
    /// functional simulator).
    pub latency: u32,
    /// Victim-selection policy (LRU unless overridden).
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two, `ways ≥ 1`, and the
    /// capacity is an exact multiple of `ways * line_bytes`.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64, latency: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "associativity must be at least 1");
        assert!(
            size_bytes.is_multiple_of(u64::from(ways) * line_bytes) && size_bytes > 0,
            "capacity must be a positive multiple of ways * line size"
        );
        let sets = size_bytes / (u64::from(ways) * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            size_bytes,
            ways,
            line_bytes,
            latency,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Overrides the replacement policy (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if tree-PLRU is requested with a non-power-of-two
    /// associativity.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                self.ways.is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        self.policy = policy;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }

    /// Bytes between two addresses that index the same set
    /// (`sets * line_bytes`). Address streams whose stride is a multiple
    /// of this span conflict in a single set; static analysis uses it to
    /// flag such pathologies.
    pub fn set_span_bytes(&self) -> u64 {
        self.sets() * self.line_bytes
    }
}

/// Access/miss counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand accesses observed.
    pub accesses: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-backs produced).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in percent (0 when no accesses).
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

const INVALID: u64 = u64::MAX;

/// A set-associative cache with LRU replacement.
///
/// Tags and LRU stamps are stored in flat arrays indexed by
/// `set * ways + way` for cache-friendly scanning.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    dirty: Vec<bool>,
    clock: u64,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
    ways: usize,
    policy: PolicyState,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let entries = (sets * u64::from(config.ways)) as usize;
        Self {
            config,
            tags: vec![INVALID; entries],
            stamps: vec![0; entries],
            dirty: vec![false; entries],
            clock: 0,
            stats: CacheStats::default(),
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            ways: config.ways as usize,
            policy: PolicyState::new(
                config.policy,
                sets as usize,
                config.ways,
                0xCAC4E ^ config.size_bytes,
            ),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (state is preserved — this is what makes warmed-up
    /// measurement possible).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and resets counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.reset_stats();
    }

    /// Probes and updates the cache for `addr`. Returns `true` on a hit.
    /// When `count` is false the access updates state but not counters
    /// (warmup mode).
    #[inline]
    pub fn access(&mut self, addr: u64, count: bool) -> bool {
        self.access_rw(addr, false, count)
    }

    /// [`Cache::access`] with an explicit write flag: writes mark the line
    /// dirty (write-allocate, write-back), and evicting a dirty line
    /// counts a write-back.
    ///
    /// The probe is a single zipped tag+stamp scan: the hit check and the
    /// min-stamp victim candidate come out of one pass, and policies that
    /// select their own victims (random, tree-PLRU) skip the stamp reads
    /// entirely.
    #[inline]
    pub fn access_rw(&mut self, addr: u64, is_write: bool, count: bool) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line;
        let base = set * self.ways;
        self.clock += 1;
        if count {
            self.stats.accesses += 1;
        }
        let tags = &self.tags[base..base + self.ways];
        let mut stamp_victim = 0usize;
        let mut hit_way = None;
        if self.policy.stamp_based() {
            let stamps = &self.stamps[base..base + self.ways];
            let mut victim_stamp = u64::MAX;
            for (w, (&t, &s)) in tags.iter().zip(stamps).enumerate() {
                if t == tag {
                    hit_way = Some(w);
                    break;
                }
                if s < victim_stamp {
                    victim_stamp = s;
                    stamp_victim = w;
                }
            }
        } else {
            hit_way = tags.iter().position(|&t| t == tag);
        }
        if let Some(w) = hit_way {
            if self.policy.refresh_on_hit() {
                self.stamps[base + w] = self.clock;
            }
            self.policy.touch(set, w, self.ways);
            if is_write {
                self.dirty[base + w] = true;
            }
            return true;
        }
        if count {
            self.stats.misses += 1;
        }
        let victim = self.policy.victim(set, self.ways).unwrap_or(stamp_victim);
        if self.tags[base + victim] != INVALID && self.dirty[base + victim] {
            if count {
                self.stats.writebacks += 1;
            }
            self.dirty[base + victim] = false;
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = is_write;
        self.policy.touch(set, victim, self.ways);
        false
    }

    /// Probes without updating replacement state or counters.
    #[inline]
    pub fn peek(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256B.
        Cache::new(CacheConfig::new(256, 2, 32, 1))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x100, true));
        assert!(c.access(0x100, true));
        assert!(c.access(0x11F, true), "same 32B line");
        assert!(!c.access(0x120, true), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three conflicting lines in a 2-way set: set index from bits 5-6.
        let a = 0x000; // set 0
        let b = 0x080; // 4 sets * 32B = 128B stride -> same set
        let d = 0x100;
        c.access(a, true);
        c.access(b, true);
        c.access(a, true); // a most recent
        c.access(d, true); // evicts b
        assert!(c.peek(a));
        assert!(!c.peek(b));
        assert!(c.peek(d));
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 8 sets x 1 way x 32B = 256B direct-mapped.
        let mut c = Cache::new(CacheConfig::new(256, 1, 32, 1));
        c.access(0x000, true);
        assert!(!c.access(0x100, true), "conflicting line misses");
        assert!(!c.access(0x000, true), "original was evicted");
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn warmup_accesses_not_counted() {
        let mut c = small();
        c.access(0x40, false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x40, true), "warmed line hits");
        assert_eq!(c.stats().accesses, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn flush_clears_state() {
        let mut c = small();
        c.access(0x40, true);
        c.flush();
        assert!(!c.peek(0x40));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn miss_rate_pct() {
        let s = CacheStats {
            accesses: 200,
            misses: 50,
            writebacks: 0,
        };
        assert_eq!(s.miss_rate_pct(), 25.0);
        assert_eq!(CacheStats::default().miss_rate_pct(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(256, 2, 33, 1);
    }

    #[test]
    fn table1_shapes_valid() {
        // The paper's Table I caches must construct.
        CacheConfig::new(32 << 10, 32, 32, 1);
        CacheConfig::new(2 << 20, 1, 32, 10);
        CacheConfig::new(16 << 20, 1, 32, 30);
    }
}

impl sampsim_util::codec::Encode for CacheStats {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        enc.put_u64(self.accesses);
        enc.put_u64(self.misses);
        enc.put_u64(self.writebacks);
    }
}

impl sampsim_util::codec::Decode for CacheStats {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            accesses: dec.take_u64()?,
            misses: dec.take_u64()?,
            writebacks: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::policy::ReplacementPolicy;

    fn filled(policy: ReplacementPolicy) -> Cache {
        // 2 sets x 4 ways x 32B = 256B.
        let mut c = Cache::new(CacheConfig::new(256, 4, 32, 1).with_policy(policy));
        // Fill set 0 with lines a..d (set stride = 64B).
        for i in 0..4u64 {
            c.access(i * 64, true);
        }
        c
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        let mut c = filled(ReplacementPolicy::Fifo);
        // Re-touch the oldest line; FIFO must still evict it first.
        c.access(0, true);
        c.access(4 * 64, true); // new conflicting line
        assert!(!c.peek(0), "FIFO evicts insertion-oldest despite the hit");
        // LRU, in contrast, protects the re-touched line.
        let mut l = filled(ReplacementPolicy::Lru);
        l.access(0, true);
        l.access(4 * 64, true);
        assert!(l.peek(0), "LRU protects the recently used line");
    }

    #[test]
    fn random_policy_works_and_hits_resident_lines() {
        let mut c = filled(ReplacementPolicy::Random);
        c.access(0, true); // exercising the random-eviction path must not panic
        let s = c.stats();
        assert!(s.accesses >= 4);
    }

    #[test]
    fn plru_behaves_like_lru_on_sequential_fill() {
        let mut c = filled(ReplacementPolicy::TreePlru);
        // Next conflicting fill should evict one of the earliest ways,
        // never the most recently inserted one.
        c.access(4 * 64, true);
        assert!(c.peek(3 * 64), "most recent line survives under PLRU");
    }

    #[test]
    fn policies_differ_on_scan_workload() {
        // A cyclic scan of 5 lines over a 4-way set: LRU thrashes (0%
        // hits); random replacement retains some lines.
        let run = |policy| {
            let mut c = Cache::new(CacheConfig::new(256, 4, 32, 1).with_policy(policy));
            for _ in 0..200 {
                for i in 0..5u64 {
                    c.access(i * 64, true);
                }
            }
            c.stats()
        };
        let lru = run(ReplacementPolicy::Lru);
        let random = run(ReplacementPolicy::Random);
        assert_eq!(lru.accesses - lru.misses, 0, "LRU thrashes a cyclic scan");
        assert!(
            random.misses < random.accesses,
            "random replacement gets some hits on a cyclic scan"
        );
    }
}

#[cfg(test)]
mod writeback_tests {
    use super::*;

    #[test]
    fn dirty_eviction_counts_writeback() {
        // 1 set x 2 ways x 32B.
        let mut c = Cache::new(CacheConfig::new(64, 2, 32, 1));
        c.access_rw(0x000, true, true); // dirty fill
        c.access_rw(0x040, false, true); // clean fill
        assert_eq!(c.stats().writebacks, 0);
        c.access_rw(0x080, false, true); // evicts dirty 0x000
        assert_eq!(c.stats().writebacks, 1);
        c.access_rw(0x0C0, false, true); // evicts clean 0x040
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(CacheConfig::new(64, 2, 32, 1));
        c.access_rw(0x000, false, true); // clean fill
        c.access_rw(0x000, true, true); // write hit -> dirty
        c.access_rw(0x040, false, true);
        c.access_rw(0x080, false, true); // evicts 0x000 (dirty)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn warmup_evictions_not_counted() {
        let mut c = Cache::new(CacheConfig::new(64, 2, 32, 1));
        c.access_rw(0x000, true, false);
        c.access_rw(0x040, true, false);
        c.access_rw(0x080, true, false); // dirty eviction in warmup
        assert_eq!(c.stats().writebacks, 0);
    }
}

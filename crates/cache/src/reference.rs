//! The pre-optimization cache model, frozen as a differential oracle.
//!
//! [`ReferenceCache`] is the original zipped tag+stamp implementation of
//! [`crate::Cache`], kept verbatim so the packed fast path can be checked
//! against it access-by-access (see `tests/differential.rs`) and so
//! `sampsim perf` can time the pre-optimization kernel as
//! `cache_access_rw_reference`. Counters, per-access hit/miss results and
//! eviction choices are contractual between the two models; internal
//! bookkeeping (stamps vs. packed recency words) is not.

use crate::cache::{CacheConfig, CacheStats};
use crate::policy::PolicyState;

const INVALID: u64 = u64::MAX;

/// The original set-associative cache: flat tag/stamp/dirty arrays and a
/// zipped scan that derives the hit way and the min-stamp victim candidate
/// in one pass.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    config: CacheConfig,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    dirty: Vec<bool>,
    clock: u64,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
    ways: usize,
    policy: PolicyState,
}

impl ReferenceCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let entries = (sets * u64::from(config.ways)) as usize;
        Self {
            config,
            tags: vec![INVALID; entries],
            stamps: vec![0; entries],
            dirty: vec![false; entries],
            clock: 0,
            stats: CacheStats::default(),
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            ways: config.ways as usize,
            policy: PolicyState::new(
                config.policy,
                sets as usize,
                config.ways,
                0xCAC4E ^ config.size_bytes,
            ),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and resets counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.reset_stats();
    }

    /// Probes and updates the cache for `addr`. Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u64, count: bool) -> bool {
        self.access_rw(addr, false, count)
    }

    /// [`ReferenceCache::access`] with an explicit write flag
    /// (write-allocate, write-back).
    #[inline]
    pub fn access_rw(&mut self, addr: u64, is_write: bool, count: bool) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line;
        let base = set * self.ways;
        self.clock += 1;
        if count {
            self.stats.accesses += 1;
        }
        let tags = &self.tags[base..base + self.ways];
        let mut stamp_victim = 0usize;
        let mut hit_way = None;
        if self.policy.stamp_based() {
            let stamps = &self.stamps[base..base + self.ways];
            let mut victim_stamp = u64::MAX;
            for (w, (&t, &s)) in tags.iter().zip(stamps).enumerate() {
                if t == tag {
                    hit_way = Some(w);
                    break;
                }
                if s < victim_stamp {
                    victim_stamp = s;
                    stamp_victim = w;
                }
            }
        } else {
            hit_way = tags.iter().position(|&t| t == tag);
        }
        if let Some(w) = hit_way {
            if self.policy.refresh_on_hit() {
                self.stamps[base + w] = self.clock;
            }
            self.policy.touch(set, w, self.ways);
            if is_write {
                self.dirty[base + w] = true;
            }
            return true;
        }
        if count {
            self.stats.misses += 1;
        }
        let victim = self.policy.victim(set, self.ways).unwrap_or(stamp_victim);
        if self.tags[base + victim] != INVALID && self.dirty[base + victim] {
            if count {
                self.stats.writebacks += 1;
            }
            self.dirty[base + victim] = false;
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = is_write;
        self.policy.touch(set, victim, self.ways);
        false
    }

    /// Probes without updating replacement state or counters.
    #[inline]
    pub fn peek(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }
}

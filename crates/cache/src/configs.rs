//! Preset hierarchy configurations from the paper.

use crate::cache::CacheConfig;
use crate::hierarchy::HierarchyConfig;
use crate::tlb::TlbConfig;

/// Table I — the `allcache` simulator configuration used for the
/// instruction-mix/miss-rate studies (Figs. 3, 8, 10):
///
/// | level | organization |
/// |---|---|
/// | L1I | 32-way, 32 kB, 32 B lines |
/// | L1D | 32-way, 32 kB, 32 B lines |
/// | L2  | unified 2 MB direct-mapped, 32 B lines |
/// | L3  | unified 16 MB direct-mapped, 32 B lines |
pub fn allcache_table1() -> HierarchyConfig {
    HierarchyConfig {
        l1i: CacheConfig::new(32 << 10, 32, 32, 4),
        l1d: CacheConfig::new(32 << 10, 32, 32, 4),
        l2: CacheConfig::new(2 << 20, 1, 32, 12),
        l3: CacheConfig::new(16 << 20, 1, 32, 36),
        itlb: TlbConfig::typical(),
        dtlb: TlbConfig::typical(),
        mem_latency: 220,
        next_line_prefetch: false,
    }
}

/// Table III — the memory system of the modelled Intel i7-3770 used for the
/// CPI validation (Fig. 12):
///
/// | level | organization | latency |
/// |---|---|---|
/// | L1I | 32 kB, 8-way, 64 B lines | 4 cycles |
/// | L1D | 32 kB, 8-way, 64 B lines | 4 cycles |
/// | L2  | 256 kB, 8-way, 64 B lines | 10 cycles |
/// | L3  | 8 MB, 16-way, 64 B lines | 30 cycles |
pub fn i7_table3() -> HierarchyConfig {
    HierarchyConfig {
        l1i: CacheConfig::new(32 << 10, 8, 64, 4),
        l1d: CacheConfig::new(32 << 10, 8, 64, 4),
        l2: CacheConfig::new(256 << 10, 8, 64, 10),
        l3: CacheConfig::new(8 << 20, 16, 64, 30),
        itlb: TlbConfig::typical(),
        dtlb: TlbConfig::typical(),
        mem_latency: 200,
        next_line_prefetch: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let c = allcache_table1();
        assert_eq!(c.l1d.ways, 32);
        assert_eq!(c.l2.ways, 1);
        assert_eq!(c.l3.size_bytes, 16 << 20);
        assert_eq!(c.l3.line_bytes, 32);
    }

    #[test]
    fn table3_shape() {
        let c = i7_table3();
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.l2.size_bytes, 256 << 10);
        assert_eq!(c.l1i.line_bytes, 64);
    }
}

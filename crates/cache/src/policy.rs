//! Replacement policies.
//!
//! The paper's `allcache` hierarchy uses LRU (and direct-mapped outer
//! levels, where policy is moot); the additional policies support the
//! replacement-policy ablation — does sampling preserve the *ranking* of
//! design alternatives?

use sampsim_util::rng::SplitMix64;

/// Victim-selection policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (exact, stamp-based).
    #[default]
    Lru,
    /// First-in-first-out (insertion-order stamps; hits do not refresh).
    Fifo,
    /// Uniform random victim.
    Random,
    /// Tree-based pseudo-LRU (requires power-of-two associativity).
    TreePlru,
}

impl ReplacementPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::TreePlru => "tree-PLRU",
        }
    }
}

/// Per-set tree-PLRU state plus the shared RNG for random replacement.
#[derive(Debug, Clone)]
pub(crate) struct PolicyState {
    pub policy: ReplacementPolicy,
    /// Tree bits per set (TreePlru only).
    pub trees: Vec<u32>,
    pub rng: SplitMix64,
}

impl PolicyState {
    pub fn new(policy: ReplacementPolicy, sets: usize, ways: u32, seed: u64) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                ways.is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        Self {
            policy,
            trees: if policy == ReplacementPolicy::TreePlru {
                vec![0; sets]
            } else {
                Vec::new()
            },
            rng: SplitMix64::new(seed),
        }
    }

    /// Updates policy metadata on a hit at `way`.
    #[inline]
    pub fn touch(&mut self, set: usize, way: usize, ways: usize) {
        if self.policy == ReplacementPolicy::TreePlru {
            self.trees[set] = plru_touch(self.trees[set], way, ways);
        }
        // LRU/FIFO stamps are maintained by the cache itself.
    }

    /// Chooses a victim way for `set` (policies that do not use stamps).
    /// Returns `None` for stamp-based policies (LRU/FIFO).
    #[inline]
    pub fn victim(&mut self, set: usize, ways: usize) -> Option<usize> {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => None,
            ReplacementPolicy::Random => Some((self.rng.next_u64() % ways as u64) as usize),
            ReplacementPolicy::TreePlru => Some(plru_victim(self.trees[set], ways)),
        }
    }

    /// Whether hits refresh the stamp (LRU yes, FIFO no).
    #[inline]
    pub fn refresh_on_hit(&self) -> bool {
        self.policy == ReplacementPolicy::Lru
    }

    /// Whether victim selection reads the cache's stamps ([`Self::victim`]
    /// returns `None`). The probe loop skips min-stamp tracking entirely
    /// for policies that pick their own victims.
    #[inline]
    pub fn stamp_based(&self) -> bool {
        matches!(
            self.policy,
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo
        )
    }
}

/// Walks the PLRU tree toward `way`, flipping each node to point away from
/// the touched path. Bit `n` holds node `n` of the implicit binary tree
/// (0 = left subtree is colder).
fn plru_touch(mut tree: u32, way: usize, ways: usize) -> u32 {
    let mut node = 0usize; // root
    let mut lo = 0usize;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if way < mid {
            // Touched left: mark right as colder candidate (bit = 1 means
            // victim search goes right).
            tree |= 1 << node;
            node = 2 * node + 1;
            hi = mid;
        } else {
            tree &= !(1 << node);
            node = 2 * node + 2;
            lo = mid;
        }
    }
    tree
}

/// Follows the cold pointers down the PLRU tree to the victim way.
fn plru_victim(tree: u32, ways: usize) -> usize {
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if tree & (1 << node) != 0 {
            // Cold side is right.
            node = 2 * node + 2;
            lo = mid;
        } else {
            node = 2 * node + 1;
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plru_victim_avoids_recent_ways() {
        let ways = 4usize;
        let mut tree = 0u32;
        // Touch ways 0..3 in order; victim should be 0 afterwards (oldest
        // path pointer).
        for w in 0..4 {
            tree = plru_touch(tree, w, ways);
        }
        let v = plru_victim(tree, ways);
        assert_ne!(v, 3, "most recently touched way must not be the victim");
    }

    #[test]
    fn plru_cycles_through_all_ways() {
        // Repeatedly touching the victim cycles through every way.
        let ways = 8usize;
        let mut tree = 0u32;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..ways {
            let v = plru_victim(tree, ways);
            seen.insert(v);
            tree = plru_touch(tree, v, ways);
        }
        assert_eq!(seen.len(), ways, "victims should cover all ways: {seen:?}");
    }

    #[test]
    fn random_victim_in_range_and_deterministic() {
        let mut a = PolicyState::new(ReplacementPolicy::Random, 4, 8, 42);
        let mut b = PolicyState::new(ReplacementPolicy::Random, 4, 8, 42);
        for _ in 0..100 {
            let va = a.victim(0, 8).unwrap();
            let vb = b.victim(0, 8).unwrap();
            assert_eq!(va, vb);
            assert!(va < 8);
        }
    }

    #[test]
    fn stamp_policies_defer_to_cache() {
        let mut p = PolicyState::new(ReplacementPolicy::Lru, 4, 4, 1);
        assert_eq!(p.victim(0, 4), None);
        assert!(p.refresh_on_hit());
        let mut f = PolicyState::new(ReplacementPolicy::Fifo, 4, 4, 1);
        assert_eq!(f.victim(0, 4), None);
        assert!(!f.refresh_on_hit());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_requires_pow2_ways() {
        PolicyState::new(ReplacementPolicy::TreePlru, 4, 3, 1);
    }
}

//! Multi-level cache hierarchy simulator.
//!
//! This crate is the stand-in for the paper's `allcache` Pintool — a
//! functional (timing-free) simulator of instruction/data TLBs and a
//! four-level cache hierarchy (L1I, L1D, unified L2, unified L3). It
//! reports the access/miss statistics behind Figs. 8 and 10 of the paper,
//! and doubles as the memory system of the `sampsim-uarch` timing model
//! (which consumes the hit level + latencies).
//!
//! Two configurations from the paper are provided as presets:
//! [`configs::allcache_table1`] (Table I) and [`configs::i7_table3`]
//! (Table III).
//!
//! A *warmup* mode supports the paper's "Warmup Regional Run" (§IV-D):
//! while enabled, accesses update cache state but are not counted, so a
//! region can be primed before measurement to remove cold-start bias.
//!
//! # Example
//!
//! ```
//! use sampsim_cache::{configs, Hierarchy};
//!
//! let mut h = Hierarchy::new(configs::allcache_table1());
//! h.access_data(0x1000, false); // load
//! h.access_data(0x1000, true);  // store to the same line: L1D hit
//! let stats = h.stats();
//! assert_eq!(stats.l1d.accesses, 2);
//! assert_eq!(stats.l1d.misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod configs;
pub mod hierarchy;
pub mod policy;
pub mod reference;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats, Level};
pub use policy::ReplacementPolicy;
pub use reference::ReferenceCache;
pub use tlb::{Tlb, TlbConfig, TlbStats};

//! Instruction/data TLBs.
//!
//! The paper's `allcache` Pintool simulates "instruction+data TLB+cache
//! hierarchies"; the evaluation only reports cache miss rates, but the TLBs
//! are modelled for completeness (and are exercised by the examples).

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `entries ≥ 1` and `page_bytes` is a power of two.
    pub fn new(entries: u32, page_bytes: u64) -> Self {
        assert!(entries >= 1, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            entries,
            page_bytes,
        }
    }

    /// A typical 64-entry, 4 KiB-page TLB.
    pub fn typical() -> Self {
        Self::new(64, 4096)
    }
}

/// Access/miss counters for a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate in percent (0 when no accesses).
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &TlbStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }
}

/// A fully associative, LRU translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    stats: TlbStats,
    page_shift: u32,
}

const INVALID: u64 = u64::MAX;

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        Self {
            config,
            pages: vec![INVALID; config.entries as usize],
            stamps: vec![0; config.entries as usize],
            clock: 0,
            stats: TlbStats::default(),
            page_shift: config.page_bytes.trailing_zeros(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets counters, keeping translations resident.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Translates `addr`. Returns `true` on a hit; misses install the page.
    /// When `count` is false the access is not counted (warmup).
    #[inline]
    pub fn access(&mut self, addr: u64, count: bool) -> bool {
        let page = addr >> self.page_shift;
        self.clock += 1;
        if count {
            self.stats.accesses += 1;
        }
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (i, &p) in self.pages.iter().enumerate() {
            if p == page {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        if count {
            self.stats.misses += 1;
        }
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_page() {
        let mut t = Tlb::new(TlbConfig::new(4, 4096));
        assert!(!t.access(0x1000, true));
        assert!(t.access(0x1FFF, true));
        assert!(!t.access(0x2000, true));
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(TlbConfig::new(2, 4096));
        t.access(0x1000, true);
        t.access(0x2000, true);
        t.access(0x1000, true); // refresh page 1
        t.access(0x3000, true); // evicts page 2
        assert!(t.access(0x1000, true));
        assert!(!t.access(0x2000, true));
    }

    #[test]
    fn warmup_not_counted() {
        let mut t = Tlb::new(TlbConfig::typical());
        t.access(0x5000, false);
        assert_eq!(t.stats().accesses, 0);
        assert!(t.access(0x5000, true));
    }
}

impl sampsim_util::codec::Encode for TlbStats {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        enc.put_u64(self.accesses);
        enc.put_u64(self.misses);
    }
}

impl sampsim_util::codec::Decode for TlbStats {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        Ok(Self {
            accesses: dec.take_u64()?,
            misses: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tlb_extra_tests {
    use super::*;

    #[test]
    fn reset_stats_keeps_translations() {
        let mut t = Tlb::new(TlbConfig::new(8, 4096));
        t.access(0x1000, true);
        t.reset_stats();
        assert_eq!(t.stats().accesses, 0);
        assert!(t.access(0x1000, true), "translation survives stat reset");
    }

    #[test]
    fn config_accessor() {
        let t = Tlb::new(TlbConfig::new(16, 8192));
        assert_eq!(t.config().entries, 16);
        assert_eq!(t.config().page_bytes, 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        TlbConfig::new(4, 3000);
    }
}

//! In-repo microbenchmark harness for the hot kernels.
//!
//! The optimized kernels this repo ships — bounds-pruned k-means
//! ([`sampsim_simpoint::kmeans`]), sparse cached-row BBV projection
//! ([`sampsim_simpoint::project`]) and the packed single-pass cache probe
//! ([`sampsim_cache::Cache::access_rw`]) — all promise *bit-identical*
//! results to their naive counterparts. This crate times them against
//! those counterparts on real pipeline inputs (BBVs regenerated from the
//! shipped `artifacts/*.art` benchmarks) and emits a machine-checkable
//! `BENCH_kernels.json` report. Every timed pair is also asserted
//! bit-identical, so a perf run doubles as a differential test.
//!
//! The v2 schema adds two things. Every kernel now carries a reference
//! timing and a speedup — the cache probe is timed against the frozen
//! pre-optimization [`sampsim_cache::ReferenceCache`]
//! (`cache_access_rw_reference`), with hit counters asserted identical.
//! And a *scaling* section sweeps a synthetic slices × MaxK grid (up to
//! a million slices) through the streaming projection + mini-batch
//! clustering path, asserting along the way that the streamed footprint
//! stays bounded by the batch size — peak-RSS deltas are measured from
//! `/proc/self/status` and must not approach what the materialized path
//! would need ([`sampsim_analyze::materialized_bytes_estimate`]).
//!
//! No external crates: timing is `std::time::Instant`, the report is a
//! hand-assembled JSON document, and validation reuses
//! [`sampsim_util::json`].
//!
//! Wall-clock numbers are inherently machine-dependent; the report is for
//! trend tracking, not for byte-stable comparison. Everything *other*
//! than the `*_ms` fields is deterministic. [`compare_reports`] turns two
//! reports into a regression gate over the size-normalized rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sampsim_cache::{Cache, CacheConfig, ReferenceCache};
use sampsim_core::artifacts::ArtifactStore;
use sampsim_core::pipeline::{PinPointsConfig, Pipeline};
use sampsim_core::BenchResult;
use sampsim_exec::Jobs;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::kmeans::KmeansResult;
use sampsim_simpoint::project::RandomProjection;
use sampsim_simpoint::{
    kmeans_best_of_jobs, kmeans_best_of_reference, KmeansError, MiniBatchKmeans, SimPointOptions,
    MINIBATCH_BATCH,
};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::json::{self, Value};
use sampsim_util::rng::SplitMix64;
use sampsim_util::scale::Scale;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Schema identifier written into (and required of) every report.
pub const SCHEMA: &str = "sampsim-perf-kernels/v2";

/// Upper bound on the peak-RSS delta any scaling-grid point may add: the
/// streamed path's state is O(dim * K + batch), so even the million-slice
/// point must fit far under this.
pub const MAX_STREAMING_RSS_DELTA_BYTES: u64 = 64 << 20;

/// Allowed slowdown between a fresh report and a baseline before
/// [`compare_reports`] fails: new rate > `1.10 *` old rate is a
/// regression.
pub const REGRESSION_TOLERANCE: f64 = 1.10;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Quick mode: smallest shipped benchmark, coarser slices, reduced
    /// `k` sweep and a reduced scaling grid — a CI smoke test rather
    /// than a measurement.
    pub quick: bool,
    /// Directory holding the shipped `*.art` benchmark artifacts.
    pub artifacts_dir: PathBuf,
    /// Workload scale used when regenerating BBVs. The slice size scales
    /// with it, so the *number* of slices (the clustering input size)
    /// matches the full-scale benchmark either way.
    pub scale: Scale,
    /// Worker threads for the clustering restart sweep. Results are
    /// bit-identical for every job count (asserted against the serial
    /// naive reference on every run).
    pub jobs: Jobs,
}

impl Default for PerfOptions {
    fn default() -> Self {
        Self {
            quick: false,
            artifacts_dir: PathBuf::from("artifacts"),
            scale: Scale::TEST,
            jobs: Jobs::Auto,
        }
    }
}

/// Harness failure.
#[derive(Debug)]
pub enum PerfError {
    /// The selected benchmark name is unknown to the suite.
    NoBenchmark(String),
    /// A k-means kernel rejected its input.
    Kmeans(KmeansError),
    /// An optimized kernel diverged from its reference — a correctness
    /// bug, not a measurement problem.
    Mismatch(String),
    /// Artifact store or filesystem failure.
    Store(String),
    /// The streaming path materialized more memory than its contract
    /// allows — the peak-RSS delta of a scaling point exceeded
    /// [`MAX_STREAMING_RSS_DELTA_BYTES`].
    Memory(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::NoBenchmark(name) => write!(f, "unknown benchmark '{name}'"),
            PerfError::Kmeans(e) => write!(f, "k-means failed: {e}"),
            PerfError::Mismatch(what) => {
                write!(f, "optimized kernel diverged from reference: {what}")
            }
            PerfError::Store(e) => write!(f, "artifact store: {e}"),
            PerfError::Memory(what) => {
                write!(f, "streaming memory contract violated: {what}")
            }
        }
    }
}

impl std::error::Error for PerfError {}

impl From<KmeansError> for PerfError {
    fn from(e: KmeansError) -> Self {
        PerfError::Kmeans(e)
    }
}

/// One timed kernel in the report.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (`kmeans_sweep`, `bbv_projection`, `cache_access_rw`).
    pub name: &'static str,
    /// Naive-baseline wall time, when the baseline is kept in-tree.
    pub reference_ms: Option<f64>,
    /// Optimized-kernel wall time.
    pub optimized_ms: f64,
    /// `reference_ms / optimized_ms`, when a reference exists.
    pub speedup: Option<f64>,
    /// Deterministic work/checksum numbers (sizes, counts, inertia…).
    pub details: Vec<(&'static str, f64)>,
}

/// One point of the streaming scaling grid: `slices` synthetic BBVs
/// projected row-by-row and clustered with mini-batch k-means at
/// `max_k`, never materializing the profile.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Synthetic slice count streamed through the pipeline.
    pub slices: u64,
    /// Cluster count the mini-batch kernel ran at.
    pub max_k: usize,
    /// End-to-end wall time (generate + project + cluster).
    pub wall_ms: f64,
    /// `wall_ms * 1e6 / slices` — the size-normalized rate the
    /// regression gate compares.
    pub ns_per_slice: f64,
    /// Sum of the final centroids: a deterministic checksum pinning the
    /// streamed computation across runs and machines.
    pub centroid_checksum: f64,
    /// Peak-RSS growth (`VmHWM` delta) over the point, when the platform
    /// exposes it. Asserted `<=` [`MAX_STREAMING_RSS_DELTA_BYTES`].
    pub streamed_rss_delta_bytes: Option<u64>,
    /// What the materialized path would need for the same slice count
    /// ([`sampsim_analyze::materialized_bytes_estimate`]) — the contrast
    /// the streaming contract is measured against.
    pub materialized_estimate_bytes: u64,
}

/// A full harness run, serializable with [`PerfReport::to_json`].
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Benchmark the BBVs were regenerated from.
    pub benchmark: String,
    /// Whether this was a quick (smoke) run.
    pub quick: bool,
    /// Number of BBV slices fed to the clustering kernels.
    pub num_slices: u64,
    /// Projected dimensionality.
    pub dim: usize,
    /// The timed kernels.
    pub kernels: Vec<KernelTiming>,
    /// The streaming slices × MaxK scaling grid.
    pub scaling: Vec<ScalingPoint>,
}

/// The regenerated input set the kernels run over.
#[derive(Debug)]
pub struct PerfInput {
    /// Benchmark name the BBVs come from.
    pub benchmark: String,
    /// One BBV per slice.
    pub bbvs: Vec<Bbv>,
    /// Projected dimensionality for the clustering kernels.
    pub dim: usize,
    /// Cluster counts the sweep visits.
    pub ks: Vec<usize>,
    /// Restarts per `k`.
    pub n_init: u32,
    /// Lloyd iteration cap.
    pub max_iter: u32,
    /// Master seed (projection and clustering).
    pub seed: u64,
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Picks the benchmark to measure: the largest shipped artifact by
/// full-scale work (`num_slices * slice_size`) — or the smallest in quick
/// mode. Falls back to a fixed choice when no artifact decodes.
pub fn select_benchmark(store: &ArtifactStore, quick: bool) -> String {
    let mut best: Option<(u128, String)> = None;
    for key in store.keys() {
        let Some(r) = store.load::<BenchResult>(&key) else {
            continue;
        };
        let work = u128::from(r.num_slices) * u128::from(r.slice_size);
        let better = match &best {
            None => true,
            Some((w, _)) => {
                if quick {
                    work < *w
                } else {
                    work > *w
                }
            }
        };
        if better {
            best = Some((work, r.name));
        }
    }
    best.map_or_else(
        || (if quick { "505.mcf_r" } else { "503.bwaves_r" }).to_string(),
        |(_, name)| name,
    )
}

/// Regenerates the BBV input set for the selected benchmark.
///
/// Slice size scales with `options.scale`, so the slice *count* equals the
/// full-scale benchmark's; quick mode coarsens slices 16x on top of that.
///
/// # Errors
///
/// [`PerfError::Store`] when the artifact directory cannot be opened,
/// [`PerfError::NoBenchmark`] when the selected name is not in the suite.
pub fn prepare_input(options: &PerfOptions) -> Result<PerfInput, PerfError> {
    let store = ArtifactStore::open(options.artifacts_dir.clone())
        .map_err(|e| PerfError::Store(e.to_string()))?;
    let name = select_benchmark(&store, options.quick);
    let id = BenchmarkId::from_name(&name).ok_or_else(|| PerfError::NoBenchmark(name.clone()))?;
    let program = benchmark(id).scaled(options.scale).build();
    let full_slice: u64 = if options.quick { 160_000 } else { 10_000 };
    let config = PinPointsConfig {
        slice_size: options.scale.apply(full_slice).max(1),
        ..PinPointsConfig::default()
    };
    let (bbvs, _, _) = Pipeline::new(config).profile(&program);
    let sp = SimPointOptions::default();
    // Quick mode sweeps a few small k's as a smoke test; measurement mode
    // runs the restart sweep at MaxK itself, where the paper's pipeline
    // spends its clustering time.
    let ks: Vec<usize> = if options.quick {
        vec![2, 5, 8]
    } else {
        vec![sp.max_k]
    };
    let n = bbvs.len();
    let mut ks: Vec<usize> = ks.into_iter().filter(|&k| k <= n).collect();
    if ks.is_empty() {
        ks.push(1);
    }
    Ok(PerfInput {
        benchmark: name,
        bbvs,
        dim: sp.dim,
        ks,
        n_init: sp.n_init,
        max_iter: sp.max_iter,
        seed: sp.seed,
    })
}

fn ensure_identical(a: &KmeansResult, b: &KmeansResult, what: &str) -> Result<(), PerfError> {
    let same = a.k == b.k
        && a.iterations == b.iterations
        && a.assignments == b.assignments
        && a.inertia.to_bits() == b.inertia.to_bits()
        && a.centroids.len() == b.centroids.len()
        && a.centroids
            .iter()
            .zip(&b.centroids)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    if same {
        Ok(())
    } else {
        Err(PerfError::Mismatch(format!("kmeans {what}")))
    }
}

/// Times the full clustering sweep — naive serial
/// [`kmeans_best_of_reference`] vs the bounds-pruned parallel-restart
/// [`kmeans_best_of_jobs`] — over every `k` in `input.ks`, asserting
/// each pair of winners bit-identical. The assertion doubles as the
/// determinism proof for `jobs`: whatever the worker count, the
/// optimized side must reproduce the serial naive result bit for bit.
///
/// # Errors
///
/// [`PerfError::Kmeans`] on invalid input, [`PerfError::Mismatch`] if the
/// pruned kernel ever diverges.
pub fn kmeans_sweep_kernel(
    data: &[f64],
    input: &PerfInput,
    reps: u32,
    jobs: Jobs,
) -> Result<KernelTiming, PerfError> {
    let n = input.bbvs.len();
    let dim = input.dim;
    // Each side is timed `reps` times and the minimum kept — the runs are
    // deterministic, so the minimum is the least-perturbed measurement.
    let mut naive = Vec::new();
    let mut reference_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| -> Result<Vec<KmeansResult>, KmeansError> {
            input
                .ks
                .iter()
                .map(|&k| {
                    kmeans_best_of_reference(
                        data,
                        n,
                        dim,
                        k,
                        input.max_iter,
                        input.seed,
                        input.n_init,
                    )
                })
                .collect()
        });
        naive = r?;
        reference_ms = reference_ms.min(ms);
    }
    let mut pruned = Vec::new();
    let mut optimized_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| -> Result<Vec<KmeansResult>, KmeansError> {
            input
                .ks
                .iter()
                .map(|&k| {
                    kmeans_best_of_jobs(
                        data,
                        n,
                        dim,
                        k,
                        input.max_iter,
                        input.seed,
                        input.n_init,
                        jobs,
                    )
                })
                .collect()
        });
        pruned = r?;
        optimized_ms = optimized_ms.min(ms);
    }
    for ((a, b), &k) in naive.iter().zip(&pruned).zip(&input.ks) {
        ensure_identical(a, b, &format!("k={k}"))?;
    }
    let last_inertia = pruned.last().map_or(0.0, |r| r.inertia);
    Ok(KernelTiming {
        name: "kmeans_sweep",
        reference_ms: Some(reference_ms),
        optimized_ms,
        speedup: Some(reference_ms / optimized_ms),
        details: vec![
            ("points", n as f64),
            ("dim", dim as f64),
            ("max_k", input.ks.iter().copied().max().unwrap_or(0) as f64),
            ("sweep_len", input.ks.len() as f64),
            ("n_init", f64::from(input.n_init)),
            ("final_inertia", last_inertia),
        ],
    })
}

/// Times BBV projection — the per-slice clone-and-project baseline vs the
/// sparse batched [`RandomProjection::project_all_normalized`] — and
/// asserts the outputs bit-identical.
///
/// # Errors
///
/// [`PerfError::Mismatch`] if the batched path diverges.
pub fn projection_kernel(input: &PerfInput, reps: u32) -> Result<KernelTiming, PerfError> {
    let projection = RandomProjection::new(input.dim, input.seed);
    // Min-of-reps on both sides: every rep is the same deterministic pass,
    // so the minimum is the least-perturbed measurement on a noisy host and
    // the reported ns/BBV stays comparable across runs.
    let mut baseline = Vec::new();
    let mut reference_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (_, ms) = time_ms(|| {
            baseline.clear();
            for bbv in &input.bbvs {
                baseline.extend(projection.project(&bbv.normalized()));
            }
        });
        reference_ms = reference_ms.min(ms);
    }
    let mut batched = Vec::new();
    let mut optimized_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (out, ms) = time_ms(|| projection.project_all_normalized(&input.bbvs));
        batched = out;
        optimized_ms = optimized_ms.min(ms);
    }
    if baseline.len() != batched.len()
        || baseline
            .iter()
            .zip(&batched)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(PerfError::Mismatch("bbv projection".to_string()));
    }
    let checksum: f64 = batched.iter().sum();
    Ok(KernelTiming {
        name: "bbv_projection",
        reference_ms: Some(reference_ms),
        optimized_ms,
        speedup: Some(reference_ms / optimized_ms),
        details: vec![
            ("bbvs", input.bbvs.len() as f64),
            ("dim", input.dim as f64),
            ("reps", f64::from(reps)),
            (
                "ns_per_bbv",
                optimized_ms * 1e6 / input.bbvs.len().max(1) as f64,
            ),
            ("checksum", checksum),
        ],
    })
}

/// Times the [`Cache::access_rw`] probe loop: a seeded random
/// read/write stream over a 128 KiB working set against a 32 KiB 8-way
/// LRU cache (misses exercise the victim path). The packed kernel is
/// timed against the frozen pre-optimization [`ReferenceCache`] on the
/// identical access stream, with the hit counters asserted equal — the
/// fast path's counters are bit-identical by contract.
///
/// Each side is timed `reps` times (fresh simulator, identical stream)
/// and the minimum kept — the loops are deterministic, so the minimum is
/// the least-perturbed measurement.
///
/// # Errors
///
/// [`PerfError::Mismatch`] if the packed cache's hit count ever differs
/// from the reference model's.
pub fn cache_kernel(accesses: u64, reps: u32) -> Result<KernelTiming, PerfError> {
    let config = CacheConfig::new(32 << 10, 8, 64, 1);
    let mut reference_ms = f64::INFINITY;
    let mut ref_hits = 0u64;
    for _ in 0..reps.max(1) {
        let mut reference = ReferenceCache::new(config);
        let mut rng = SplitMix64::new(0xC0FF_EE00);
        let mut run_hits = 0u64;
        let (_, ms) = time_ms(|| {
            for i in 0..accesses {
                let addr = rng.next_u64() & 0x1_FFFF;
                run_hits += u64::from(reference.access_rw(addr, i % 4 == 0, true));
            }
        });
        reference_ms = reference_ms.min(ms);
        ref_hits = run_hits;
    }
    let mut optimized_ms = f64::INFINITY;
    let mut hits = 0u64;
    for _ in 0..reps.max(1) {
        let mut cache = Cache::new(config);
        let mut rng = SplitMix64::new(0xC0FF_EE00);
        let mut run_hits = 0u64;
        let (_, ms) = time_ms(|| {
            for i in 0..accesses {
                let addr = rng.next_u64() & 0x1_FFFF;
                // Branchless accumulation: a data-dependent branch here
                // would mispredict on every fourth access and dominate
                // the timing.
                run_hits += u64::from(cache.access_rw(addr, i % 4 == 0, true));
            }
        });
        optimized_ms = optimized_ms.min(ms);
        hits = run_hits;
    }
    if hits != ref_hits {
        return Err(PerfError::Mismatch(format!(
            "cache hits: packed {hits}, reference {ref_hits}"
        )));
    }
    Ok(KernelTiming {
        name: "cache_access_rw",
        reference_ms: Some(reference_ms),
        optimized_ms,
        speedup: Some(reference_ms / optimized_ms),
        details: vec![
            ("accesses", accesses as f64),
            ("ns_per_access", optimized_ms * 1e6 / accesses as f64),
            ("hits", hits as f64),
        ],
    })
}

/// Current peak resident-set size (`VmHWM`) in bytes, from
/// `/proc/self/status`. `None` on platforms without procfs; the scaling
/// assertion is skipped there.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Deterministic synthetic BBV for the scaling grid: eight phases of 64
/// slices each cycling through disjoint block bases, 16 blocks per slice
/// with seeded counts. The block universe stays ≤ 512, so the projector's
/// per-block row work is bounded and the grid measures streaming
/// throughput rather than hash-table growth.
pub fn synthetic_bbv(seed: u64, i: u64) -> Bbv {
    let mut rng = SplitMix64::new(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let phase = (i / 64) % 8;
    let base = (phase as u32) * 64;
    let counts: Vec<(u32, u32)> = (0..16)
        .map(|j| (base + j * 4, 1 + (rng.next_u64() % 100) as u32))
        .collect();
    Bbv::from_counts(counts)
}

/// Runs one scaling-grid point: streams `slices` synthetic BBVs through
/// per-row projection into [`MiniBatchKmeans`], one pass, discarding each
/// row after it is pushed. Peak memory is O(dim · `max_k` + batch) — the
/// per-slice profile is never materialized, which is the whole contract.
///
/// # Errors
///
/// [`PerfError::Kmeans`] if the mini-batch kernel rejects its shape,
/// [`PerfError::Memory`] if the measured peak-RSS delta exceeds
/// [`MAX_STREAMING_RSS_DELTA_BYTES`].
pub fn scaling_point(
    slices: u64,
    max_k: usize,
    dim: usize,
    seed: u64,
    reps: u32,
) -> Result<ScalingPoint, PerfError> {
    let rss_before = peak_rss_bytes();
    let projection = RandomProjection::new(dim, seed);
    let batch = MINIBATCH_BATCH.min(usize::try_from(slices).unwrap_or(usize::MAX).max(1));
    // Each rep is a complete, independent streaming pass; the minimum wall
    // time is the rate the baseline gate compares, and every rep must land
    // on bit-identical centroids (the pass is fully deterministic).
    let mut wall_ms = f64::INFINITY;
    let mut centroids: Vec<f64> = Vec::new();
    for rep in 0..reps.max(1) {
        let mut mb = MiniBatchKmeans::new(dim, max_k, batch, seed)?;
        let (out, ms) = time_ms(|| -> Result<Vec<f64>, KmeansError> {
            for i in 0..slices {
                let bbv = synthetic_bbv(seed, i);
                let row = projection.project(&bbv.normalized());
                mb.push(&row);
            }
            mb.finish()
        });
        let out = out?;
        if rep > 0
            && (out.len() != centroids.len()
                || out
                    .iter()
                    .zip(&centroids)
                    .any(|(a, b)| a.to_bits() != b.to_bits()))
        {
            return Err(PerfError::Mismatch(format!(
                "streaming pass diverged across reps at {slices} slices, k={max_k}"
            )));
        }
        centroids = out;
        wall_ms = wall_ms.min(ms);
    }
    // VmHWM is a monotonic high-water mark, so the delta is exactly the
    // growth this point caused (saturating: another thread cannot shrink
    // it, but a prior phase may already have raised it past us).
    let streamed_rss_delta_bytes = match (rss_before, peak_rss_bytes()) {
        (Some(before), Some(after)) => Some(after.saturating_sub(before)),
        _ => None,
    };
    if let Some(delta) = streamed_rss_delta_bytes {
        if delta > MAX_STREAMING_RSS_DELTA_BYTES {
            return Err(PerfError::Memory(format!(
                "{slices} slices at k={max_k} grew peak RSS by {delta} bytes \
                 (limit {MAX_STREAMING_RSS_DELTA_BYTES})"
            )));
        }
    }
    Ok(ScalingPoint {
        slices,
        max_k,
        wall_ms,
        ns_per_slice: wall_ms * 1e6 / slices.max(1) as f64,
        centroid_checksum: centroids.iter().sum(),
        streamed_rss_delta_bytes,
        materialized_estimate_bytes: sampsim_analyze::materialized_bytes_estimate(slices, dim),
    })
}

/// The slices × MaxK grid a full run sweeps; quick mode keeps only the
/// smallest point (which the full grid shares, so quick runs remain
/// comparable to a full baseline).
pub fn scaling_grid(quick: bool) -> Vec<(u64, usize)> {
    if quick {
        vec![(10_000, 8)]
    } else {
        vec![
            (10_000, 8),
            (10_000, 35),
            (100_000, 8),
            (100_000, 35),
            (1_000_000, 8),
            (1_000_000, 35),
        ]
    }
}

/// Runs the whole harness: input regeneration, all three kernels and the
/// streaming scaling grid. `progress` receives one human-readable line
/// per completed stage.
///
/// # Errors
///
/// As the individual stages.
pub fn run_kernels(
    options: &PerfOptions,
    mut progress: impl FnMut(&str),
) -> Result<PerfReport, PerfError> {
    let input = prepare_input(options)?;
    progress(&format!(
        "regenerated {} BBV slices from {} (sweep ks = {:?}, {} restarts, {} jobs)",
        input.bbvs.len(),
        input.benchmark,
        input.ks,
        input.n_init,
        options.jobs.get()
    ));
    let projection = RandomProjection::new(input.dim, input.seed);
    let data = projection.project_all_normalized(&input.bbvs);

    let kmeans = kmeans_sweep_kernel(
        &data,
        &input,
        if options.quick { 1 } else { 3 },
        options.jobs,
    )?;
    progress(&format!(
        "kmeans_sweep: {:.1} ms reference, {:.1} ms pruned ({:.2}x)",
        kmeans.reference_ms.unwrap_or(0.0),
        kmeans.optimized_ms,
        kmeans.speedup.unwrap_or(0.0)
    ));

    let reps = if options.quick { 5 } else { 3 };
    let proj = projection_kernel(&input, reps)?;
    progress(&format!(
        "bbv_projection: {:.1} ms baseline, {:.1} ms sparse ({:.2}x)",
        proj.reference_ms.unwrap_or(0.0),
        proj.optimized_ms,
        proj.speedup.unwrap_or(0.0)
    ));

    let accesses = if options.quick { 1_000_000 } else { 16_000_000 };
    let cache = cache_kernel(accesses, if options.quick { 3 } else { 5 })?;
    progress(&format!(
        "cache_access_rw: {:.1} ms packed vs {:.1} ms reference model for {} accesses ({:.2}x)",
        cache.optimized_ms,
        cache.reference_ms.unwrap_or(0.0),
        accesses,
        cache.speedup.unwrap_or(0.0)
    ));

    let mut scaling = Vec::new();
    for (slices, max_k) in scaling_grid(options.quick) {
        // Small points are cheap enough to repeat aggressively; the
        // million-slice passes are long enough to be stable with fewer.
        let point_reps = if slices >= 1_000_000 { 3 } else { 7 };
        let point = scaling_point(slices, max_k, input.dim, input.seed, point_reps)?;
        progress(&format!(
            "scaling: {} slices at k={}: {:.1} ms ({:.0} ns/slice), \
             rss delta {}, materialized would need {} MiB",
            point.slices,
            point.max_k,
            point.wall_ms,
            point.ns_per_slice,
            point
                .streamed_rss_delta_bytes
                .map_or("n/a".to_string(), |b| format!("{} KiB", b >> 10)),
            point.materialized_estimate_bytes >> 20
        ));
        scaling.push(point);
    }

    Ok(PerfReport {
        benchmark: input.benchmark,
        quick: options.quick,
        num_slices: input.bbvs.len() as u64,
        dim: input.dim,
        kernels: vec![kmeans, proj, cache],
        scaling,
    })
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

impl PerfReport {
    /// Renders the report as a JSON document (hand-assembled; floats use
    /// Rust's shortest-round-trip `{:?}` like every sampsim writer).
    pub fn to_json(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                let mut fields = vec![format!("\"name\":\"{}\"", k.name)];
                if let Some(r) = k.reference_ms {
                    fields.push(format!("\"reference_ms\":{}", json_f(r)));
                }
                fields.push(format!("\"optimized_ms\":{}", json_f(k.optimized_ms)));
                if let Some(s) = k.speedup {
                    fields.push(format!("\"speedup\":{}", json_f(s)));
                }
                let details: Vec<String> = k
                    .details
                    .iter()
                    .map(|(name, v)| format!("\"{name}\":{}", json_f(*v)))
                    .collect();
                fields.push(format!("\"details\":{{{}}}", details.join(",")));
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        let scaling: Vec<String> = self
            .scaling
            .iter()
            .map(|p| {
                let rss = p
                    .streamed_rss_delta_bytes
                    .map_or("null".to_string(), |b| b.to_string());
                format!(
                    "{{\"slices\":{},\"max_k\":{},\"wall_ms\":{},\"ns_per_slice\":{},\
                     \"centroid_checksum\":{},\"streamed_rss_delta_bytes\":{},\
                     \"materialized_estimate_bytes\":{}}}",
                    p.slices,
                    p.max_k,
                    json_f(p.wall_ms),
                    json_f(p.ns_per_slice),
                    json_f(p.centroid_checksum),
                    rss,
                    p.materialized_estimate_bytes
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"benchmark\":\"{}\",\"quick\":{},\"num_slices\":{},\"dim\":{},\"kernels\":[{}],\"scaling\":[{}]}}\n",
            SCHEMA,
            self.benchmark,
            self.quick,
            self.num_slices,
            self.dim,
            kernels.join(","),
            scaling.join(",")
        )
    }
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{what}: missing \"{key}\""))
}

/// Validates a `BENCH_kernels.json` document against the v2 schema:
/// schema tag, benchmark name, the three kernels each with a finite
/// reference timing and speedup, and a non-empty scaling grid whose
/// points carry valid rates and the materialized-path estimate.
///
/// # Errors
///
/// A description of the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = field(&doc, "schema", "report")?
        .as_str()
        .ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema is '{schema}', expected '{SCHEMA}'"));
    }
    field(&doc, "benchmark", "report")?
        .as_str()
        .ok_or("benchmark is not a string")?;
    field(&doc, "num_slices", "report")?
        .as_f64()
        .ok_or("num_slices is not a number")?;
    let kernels = field(&doc, "kernels", "report")?
        .as_array()
        .ok_or("kernels is not an array")?;
    let mut seen = Vec::new();
    for kernel in kernels {
        let name = field(kernel, "name", "kernel")?
            .as_str()
            .ok_or("kernel name is not a string")?;
        let ms = field(kernel, "optimized_ms", name)?
            .as_f64()
            .ok_or_else(|| format!("{name}: optimized_ms is not a number"))?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("{name}: optimized_ms {ms} is not a valid timing"));
        }
        // v2: every kernel carries a reference and a speedup — the cache
        // probe included, timed against the frozen reference model.
        let speedup = field(kernel, "speedup", name)?
            .as_f64()
            .ok_or_else(|| format!("{name}: speedup is not a number"))?;
        if !speedup.is_finite() || speedup <= 0.0 {
            return Err(format!("{name}: speedup {speedup} is not valid"));
        }
        field(kernel, "reference_ms", name)?
            .as_f64()
            .ok_or_else(|| format!("{name}: reference_ms is not a number"))?;
        field(kernel, "details", name)?;
        seen.push(name.to_string());
    }
    for required in ["kmeans_sweep", "bbv_projection", "cache_access_rw"] {
        if !seen.iter().any(|s| s == required) {
            return Err(format!("kernel \"{required}\" is missing"));
        }
    }
    let scaling = field(&doc, "scaling", "report")?
        .as_array()
        .ok_or("scaling is not an array")?;
    if scaling.is_empty() {
        return Err("scaling grid is empty".to_string());
    }
    for point in scaling {
        let slices = field(point, "slices", "scaling point")?
            .as_f64()
            .ok_or("scaling point: slices is not a number")?;
        if slices < 1.0 {
            return Err(format!("scaling point: slices {slices} is not positive"));
        }
        field(point, "max_k", "scaling point")?
            .as_f64()
            .ok_or("scaling point: max_k is not a number")?;
        for key in ["wall_ms", "ns_per_slice", "centroid_checksum"] {
            let v = field(point, key, "scaling point")?
                .as_f64()
                .ok_or_else(|| format!("scaling point: {key} is not a number"))?;
            if !v.is_finite() {
                return Err(format!("scaling point: {key} {v} is not finite"));
            }
        }
        field(point, "materialized_estimate_bytes", "scaling point")?
            .as_f64()
            .ok_or("scaling point: materialized_estimate_bytes is not a number")?;
    }
    Ok(())
}

fn detail(kernel: &Value, key: &str) -> Option<f64> {
    kernel.get("details")?.get(key)?.as_f64()
}

fn kernel_by_name<'a>(doc: &'a Value, name: &str) -> Option<&'a Value> {
    doc.get("kernels")?
        .as_array()?
        .iter()
        .find(|k| k.get("name").and_then(Value::as_str) == Some(name))
}

fn check_rate(
    what: &str,
    new_rate: f64,
    base_rate: f64,
    compared: &mut Vec<String>,
    failures: &mut Vec<String>,
) {
    if !(new_rate.is_finite() && base_rate.is_finite() && base_rate > 0.0) {
        return;
    }
    let ratio = new_rate / base_rate;
    if ratio > REGRESSION_TOLERANCE {
        failures.push(format!(
            "{what}: {new_rate:.2} vs baseline {base_rate:.2} ({ratio:.2}x, \
             tolerance {REGRESSION_TOLERANCE:.2}x)"
        ));
    } else {
        compared.push(format!("{what}: {ratio:.2}x of baseline"));
    }
}

/// Compares a fresh report against a committed baseline and fails on any
/// size-normalized rate regressing by more than [`REGRESSION_TOLERANCE`].
///
/// Only *rates* are compared (ns per access, ns per projected BBV, ns
/// per streamed slice), so a quick run can be gated against a full
/// baseline: the quick scaling grid is a subset of the full grid and the
/// per-unit kernel rates are size-independent. The k-means sweep is only
/// compared when both reports ran the same shape (same benchmark, slice
/// count and sweep), since its cost is superlinear in both.
///
/// # Errors
///
/// A parse/shape problem in either document, every regressing metric
/// (joined), or "nothing comparable" when no metric matched — a silently
/// green gate that compared nothing would be worse than a red one.
pub fn compare_reports(new_text: &str, baseline_text: &str) -> Result<Vec<String>, String> {
    let new_doc = json::parse(new_text).map_err(|e| format!("new report: {e}"))?;
    let base_doc = json::parse(baseline_text).map_err(|e| format!("baseline report: {e}"))?;
    let mut compared = Vec::new();
    let mut failures = Vec::new();

    if let (Some(n), Some(b)) = (
        kernel_by_name(&new_doc, "cache_access_rw"),
        kernel_by_name(&base_doc, "cache_access_rw"),
    ) {
        if let (Some(nr), Some(br)) = (detail(n, "ns_per_access"), detail(b, "ns_per_access")) {
            check_rate("cache ns_per_access", nr, br, &mut compared, &mut failures);
        }
    }

    if let (Some(n), Some(b)) = (
        kernel_by_name(&new_doc, "bbv_projection"),
        kernel_by_name(&base_doc, "bbv_projection"),
    ) {
        // Per-BBV cost is size-dependent (fixed overhead dominates small
        // inputs), so only same-sized runs are comparable — a quick run
        // against a full baseline skips this rate.
        if detail(n, "bbvs").is_some() && detail(n, "bbvs") == detail(b, "bbvs") {
            if let (Some(nr), Some(br)) = (detail(n, "ns_per_bbv"), detail(b, "ns_per_bbv")) {
                check_rate(
                    "projection ns_per_bbv",
                    nr,
                    br,
                    &mut compared,
                    &mut failures,
                );
            }
        }
    }

    if let (Some(n), Some(b)) = (
        kernel_by_name(&new_doc, "kmeans_sweep"),
        kernel_by_name(&base_doc, "kmeans_sweep"),
    ) {
        let shape = |k: &Value| -> Option<(u64, u64, u64, u64)> {
            Some((
                detail(k, "points")? as u64,
                detail(k, "max_k")? as u64,
                detail(k, "sweep_len")? as u64,
                detail(k, "n_init")? as u64,
            ))
        };
        if shape(n).is_some() && shape(n) == shape(b) {
            if let (Some(nm), Some(bm)) = (
                n.get("optimized_ms").and_then(Value::as_f64),
                b.get("optimized_ms").and_then(Value::as_f64),
            ) {
                check_rate("kmeans_sweep ms", nm, bm, &mut compared, &mut failures);
            }
        }
    }

    let points = |doc: &Value| -> Vec<(u64, u64, f64)> {
        doc.get("scaling")
            .and_then(Value::as_array)
            .map(|arr| {
                arr.iter()
                    .filter_map(|p| {
                        Some((
                            p.get("slices")?.as_f64()? as u64,
                            p.get("max_k")?.as_f64()? as u64,
                            p.get("ns_per_slice")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_points = points(&base_doc);
    for (slices, max_k, nr) in points(&new_doc) {
        if let Some((_, _, br)) = base_points
            .iter()
            .find(|(s, k, _)| (*s, *k) == (slices, max_k))
        {
            check_rate(
                &format!("scaling {slices}x{max_k} ns_per_slice"),
                nr,
                *br,
                &mut compared,
                &mut failures,
            );
        }
    }

    if !failures.is_empty() {
        return Err(format!("perf regression:\n  {}", failures.join("\n  ")));
    }
    if compared.is_empty() {
        return Err("nothing comparable between the reports".to_string());
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_util::rng::Xoshiro256StarStar;

    fn tiny_input() -> PerfInput {
        // Synthetic BBVs: enough phase structure for clustering to do
        // real work, small enough to keep the test fast.
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let bbvs: Vec<Bbv> = (0..60)
            .map(|i| {
                let base = (i / 20) * 50;
                let counts: Vec<(u32, u32)> = (0..10)
                    .map(|j| (base + j * 3, 1 + (rng.next_u64() % 40) as u32))
                    .collect();
                Bbv::from_counts(counts)
            })
            .collect();
        PerfInput {
            benchmark: "synthetic".to_string(),
            bbvs,
            dim: 8,
            ks: vec![2, 3],
            n_init: 2,
            max_iter: 40,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn kernels_run_and_report_validates() {
        let input = tiny_input();
        let projection = RandomProjection::new(input.dim, input.seed);
        let data = projection.project_all_normalized(&input.bbvs);
        let kmeans = kmeans_sweep_kernel(&data, &input, 2, Jobs::Auto).unwrap();
        assert!(kmeans.speedup.is_some());
        let proj = projection_kernel(&input, 2).unwrap();
        assert!(proj.reference_ms.is_some());
        let cache = cache_kernel(50_000, 2).unwrap();
        assert!(cache.reference_ms.is_some());
        assert!(cache.speedup.is_some());
        let hits = cache
            .details
            .iter()
            .find(|(n, _)| *n == "hits")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(hits > 0.0, "some accesses must hit");

        let point = scaling_point(2_000, 4, input.dim, input.seed, 2).unwrap();
        assert_eq!(point.slices, 2_000);
        assert!(point.ns_per_slice.is_finite());
        assert_eq!(
            point.materialized_estimate_bytes,
            sampsim_analyze::materialized_bytes_estimate(2_000, input.dim)
        );

        let report = PerfReport {
            benchmark: input.benchmark.clone(),
            quick: true,
            num_slices: input.bbvs.len() as u64,
            dim: input.dim,
            kernels: vec![kmeans, proj, cache],
            scaling: vec![point],
        };
        let text = report.to_json();
        validate_report(&text).unwrap();
        // A report is always within tolerance of itself, and every grid
        // point must match.
        let compared = compare_reports(&text, &text).unwrap();
        assert!(compared.iter().any(|c| c.contains("cache")));
        assert!(compared.iter().any(|c| c.contains("scaling")));
    }

    #[test]
    fn kmeans_sweep_is_job_count_invariant() {
        // The sweep asserts the parallel winner bit-identical to the
        // serial naive reference internally; running it at two explicit
        // worker counts proves the jobs knob cannot perturb results.
        let input = tiny_input();
        let projection = RandomProjection::new(input.dim, input.seed);
        let data = projection.project_all_normalized(&input.bbvs);
        for jobs in [sampsim_exec::SERIAL, Jobs::new(2).unwrap(), Jobs::Auto] {
            kmeans_sweep_kernel(&data, &input, 1, jobs).unwrap();
        }
    }

    #[test]
    fn cache_kernel_checksum_is_deterministic() {
        let a = cache_kernel(20_000, 1).unwrap();
        let b = cache_kernel(20_000, 1).unwrap();
        let hits = |k: &KernelTiming| {
            k.details
                .iter()
                .find(|(n, _)| *n == "hits")
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(hits(&a).to_bits(), hits(&b).to_bits());
    }

    #[test]
    fn scaling_point_checksum_is_deterministic_and_streamed() {
        let a = scaling_point(3_000, 5, 8, 42, 2).unwrap();
        let b = scaling_point(3_000, 5, 8, 42, 1).unwrap();
        assert_eq!(a.centroid_checksum.to_bits(), b.centroid_checksum.to_bits());
        // On Linux the harness must actually measure the footprint.
        if peak_rss_bytes().is_some() {
            assert!(a.streamed_rss_delta_bytes.is_some());
        }
    }

    #[test]
    fn validate_rejects_broken_reports() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let wrong_schema = r#"{"schema":"other/v9","benchmark":"x","num_slices":1,"kernels":[]}"#;
        assert!(validate_report(wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let kernel = |name: &str| {
            format!(
                r#"{{"name":"{name}","reference_ms":2.0,"optimized_ms":1.0,"speedup":2.0,"details":{{}}}}"#
            )
        };
        let point = r#"{"slices":10,"max_k":2,"wall_ms":1.0,"ns_per_slice":100.0,"centroid_checksum":0.5,"streamed_rss_delta_bytes":null,"materialized_estimate_bytes":1920}"#;
        let missing_kernel = format!(
            r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[{}],"scaling":[{point}]}}"#,
            kernel("cache_access_rw")
        );
        assert!(validate_report(&missing_kernel)
            .unwrap_err()
            .contains("kmeans_sweep"));
        // v2 demands a speedup on *every* kernel, the cache probe
        // included.
        let no_speedup = format!(
            r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[
                {},{},
                {{"name":"cache_access_rw","optimized_ms":1.0,"details":{{}}}}],"scaling":[{point}]}}"#,
            kernel("kmeans_sweep"),
            kernel("bbv_projection"),
        );
        assert!(validate_report(&no_speedup)
            .unwrap_err()
            .contains("speedup"));
        // ...and a non-empty scaling grid.
        let no_scaling = format!(
            r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[{},{},{}],"scaling":[]}}"#,
            kernel("kmeans_sweep"),
            kernel("bbv_projection"),
            kernel("cache_access_rw"),
        );
        assert!(validate_report(&no_scaling)
            .unwrap_err()
            .contains("scaling"));
    }

    #[test]
    fn compare_reports_gates_regressions() {
        let doc = |cache_ns: f64, scale_ns: f64| {
            format!(
                r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[
                    {{"name":"cache_access_rw","reference_ms":2.0,"optimized_ms":1.0,"speedup":2.0,
                      "details":{{"accesses":1000,"ns_per_access":{cache_ns},"hits":10}}}}],
                  "scaling":[{{"slices":10,"max_k":2,"wall_ms":1.0,"ns_per_slice":{scale_ns},
                    "centroid_checksum":0.5,"streamed_rss_delta_bytes":null,
                    "materialized_estimate_bytes":1920}}]}}"#
            )
        };
        // Identical and slightly-faster reports pass...
        compare_reports(&doc(13.0, 900.0), &doc(13.0, 900.0)).unwrap();
        compare_reports(&doc(12.0, 800.0), &doc(13.0, 900.0)).unwrap();
        // ...a >10% slowdown on either rate fails...
        let err = compare_reports(&doc(15.0, 900.0), &doc(13.0, 900.0)).unwrap_err();
        assert!(err.contains("cache ns_per_access"), "{err}");
        let err = compare_reports(&doc(13.0, 1100.0), &doc(13.0, 900.0)).unwrap_err();
        assert!(err.contains("scaling 10x2"), "{err}");
        // ...and a baseline sharing no metric is an error, not a silent
        // pass.
        let other = format!(
            r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[],"scaling":[]}}"#
        );
        assert!(compare_reports(&doc(13.0, 900.0), &other)
            .unwrap_err()
            .contains("nothing comparable"));
    }

    #[test]
    fn select_benchmark_falls_back_without_artifacts() {
        let dir = std::env::temp_dir().join(format!("sampsim-perf-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(select_benchmark(&store, false), "503.bwaves_r");
        assert_eq!(select_benchmark(&store, true), "505.mcf_r");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

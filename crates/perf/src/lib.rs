//! In-repo microbenchmark harness for the hot kernels.
//!
//! The optimized kernels this repo ships — bounds-pruned k-means
//! ([`sampsim_simpoint::kmeans`]), sparse cached-row BBV projection
//! ([`sampsim_simpoint::project`]) and the single-pass cache probe
//! ([`sampsim_cache::Cache::access_rw`]) — all promise *bit-identical*
//! results to their naive counterparts. This crate times them against
//! those counterparts on real pipeline inputs (BBVs regenerated from the
//! shipped `artifacts/*.art` benchmarks) and emits a machine-checkable
//! `BENCH_kernels.json` report. Every timed pair is also asserted
//! bit-identical, so a perf run doubles as a differential test.
//!
//! No external crates: timing is `std::time::Instant`, the report is a
//! hand-assembled JSON document, and validation reuses
//! [`sampsim_util::json`].
//!
//! Wall-clock numbers are inherently machine-dependent; the report is for
//! trend tracking, not for byte-stable comparison. Everything *other*
//! than the `*_ms` fields is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sampsim_cache::{Cache, CacheConfig};
use sampsim_core::artifacts::ArtifactStore;
use sampsim_core::pipeline::{PinPointsConfig, Pipeline};
use sampsim_core::BenchResult;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::kmeans::KmeansResult;
use sampsim_simpoint::project::RandomProjection;
use sampsim_simpoint::{kmeans_best_of, kmeans_best_of_reference, KmeansError, SimPointOptions};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::json::{self, Value};
use sampsim_util::rng::SplitMix64;
use sampsim_util::scale::Scale;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Schema identifier written into (and required of) every report.
pub const SCHEMA: &str = "sampsim-perf-kernels/v1";

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Quick mode: smallest shipped benchmark, coarser slices, reduced
    /// `k` sweep — a CI smoke test rather than a measurement.
    pub quick: bool,
    /// Directory holding the shipped `*.art` benchmark artifacts.
    pub artifacts_dir: PathBuf,
    /// Workload scale used when regenerating BBVs. The slice size scales
    /// with it, so the *number* of slices (the clustering input size)
    /// matches the full-scale benchmark either way.
    pub scale: Scale,
}

impl Default for PerfOptions {
    fn default() -> Self {
        Self {
            quick: false,
            artifacts_dir: PathBuf::from("artifacts"),
            scale: Scale::TEST,
        }
    }
}

/// Harness failure.
#[derive(Debug)]
pub enum PerfError {
    /// The selected benchmark name is unknown to the suite.
    NoBenchmark(String),
    /// A k-means kernel rejected its input.
    Kmeans(KmeansError),
    /// An optimized kernel diverged from its reference — a correctness
    /// bug, not a measurement problem.
    Mismatch(String),
    /// Artifact store or filesystem failure.
    Store(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::NoBenchmark(name) => write!(f, "unknown benchmark '{name}'"),
            PerfError::Kmeans(e) => write!(f, "k-means failed: {e}"),
            PerfError::Mismatch(what) => {
                write!(f, "optimized kernel diverged from reference: {what}")
            }
            PerfError::Store(e) => write!(f, "artifact store: {e}"),
        }
    }
}

impl std::error::Error for PerfError {}

impl From<KmeansError> for PerfError {
    fn from(e: KmeansError) -> Self {
        PerfError::Kmeans(e)
    }
}

/// One timed kernel in the report.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (`kmeans_sweep`, `bbv_projection`, `cache_access_rw`).
    pub name: &'static str,
    /// Naive-baseline wall time, when the baseline is kept in-tree.
    pub reference_ms: Option<f64>,
    /// Optimized-kernel wall time.
    pub optimized_ms: f64,
    /// `reference_ms / optimized_ms`, when a reference exists.
    pub speedup: Option<f64>,
    /// Deterministic work/checksum numbers (sizes, counts, inertia…).
    pub details: Vec<(&'static str, f64)>,
}

/// A full harness run, serializable with [`PerfReport::to_json`].
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Benchmark the BBVs were regenerated from.
    pub benchmark: String,
    /// Whether this was a quick (smoke) run.
    pub quick: bool,
    /// Number of BBV slices fed to the clustering kernels.
    pub num_slices: u64,
    /// Projected dimensionality.
    pub dim: usize,
    /// The timed kernels.
    pub kernels: Vec<KernelTiming>,
}

/// The regenerated input set the kernels run over.
#[derive(Debug)]
pub struct PerfInput {
    /// Benchmark name the BBVs come from.
    pub benchmark: String,
    /// One BBV per slice.
    pub bbvs: Vec<Bbv>,
    /// Projected dimensionality for the clustering kernels.
    pub dim: usize,
    /// Cluster counts the sweep visits.
    pub ks: Vec<usize>,
    /// Restarts per `k`.
    pub n_init: u32,
    /// Lloyd iteration cap.
    pub max_iter: u32,
    /// Master seed (projection and clustering).
    pub seed: u64,
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Picks the benchmark to measure: the largest shipped artifact by
/// full-scale work (`num_slices * slice_size`) — or the smallest in quick
/// mode. Falls back to a fixed choice when no artifact decodes.
pub fn select_benchmark(store: &ArtifactStore, quick: bool) -> String {
    let mut best: Option<(u128, String)> = None;
    for key in store.keys() {
        let Some(r) = store.load::<BenchResult>(&key) else {
            continue;
        };
        let work = u128::from(r.num_slices) * u128::from(r.slice_size);
        let better = match &best {
            None => true,
            Some((w, _)) => {
                if quick {
                    work < *w
                } else {
                    work > *w
                }
            }
        };
        if better {
            best = Some((work, r.name));
        }
    }
    best.map_or_else(
        || (if quick { "505.mcf_r" } else { "503.bwaves_r" }).to_string(),
        |(_, name)| name,
    )
}

/// Regenerates the BBV input set for the selected benchmark.
///
/// Slice size scales with `options.scale`, so the slice *count* equals the
/// full-scale benchmark's; quick mode coarsens slices 16x on top of that.
///
/// # Errors
///
/// [`PerfError::Store`] when the artifact directory cannot be opened,
/// [`PerfError::NoBenchmark`] when the selected name is not in the suite.
pub fn prepare_input(options: &PerfOptions) -> Result<PerfInput, PerfError> {
    let store = ArtifactStore::open(options.artifacts_dir.clone())
        .map_err(|e| PerfError::Store(e.to_string()))?;
    let name = select_benchmark(&store, options.quick);
    let id = BenchmarkId::from_name(&name).ok_or_else(|| PerfError::NoBenchmark(name.clone()))?;
    let program = benchmark(id).scaled(options.scale).build();
    let full_slice: u64 = if options.quick { 160_000 } else { 10_000 };
    let config = PinPointsConfig {
        slice_size: options.scale.apply(full_slice).max(1),
        ..PinPointsConfig::default()
    };
    let (bbvs, _, _) = Pipeline::new(config).profile(&program);
    let sp = SimPointOptions::default();
    // Quick mode sweeps a few small k's as a smoke test; measurement mode
    // runs the restart sweep at MaxK itself, where the paper's pipeline
    // spends its clustering time.
    let ks: Vec<usize> = if options.quick {
        vec![2, 5, 8]
    } else {
        vec![sp.max_k]
    };
    let n = bbvs.len();
    let mut ks: Vec<usize> = ks.into_iter().filter(|&k| k <= n).collect();
    if ks.is_empty() {
        ks.push(1);
    }
    Ok(PerfInput {
        benchmark: name,
        bbvs,
        dim: sp.dim,
        ks,
        n_init: sp.n_init,
        max_iter: sp.max_iter,
        seed: sp.seed,
    })
}

fn ensure_identical(a: &KmeansResult, b: &KmeansResult, what: &str) -> Result<(), PerfError> {
    let same = a.k == b.k
        && a.iterations == b.iterations
        && a.assignments == b.assignments
        && a.inertia.to_bits() == b.inertia.to_bits()
        && a.centroids.len() == b.centroids.len()
        && a.centroids
            .iter()
            .zip(&b.centroids)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    if same {
        Ok(())
    } else {
        Err(PerfError::Mismatch(format!("kmeans {what}")))
    }
}

/// Times the full clustering sweep — naive [`kmeans_best_of_reference`]
/// vs the bounds-pruned [`kmeans_best_of`] — over every `k` in
/// `input.ks`, asserting each pair of winners bit-identical.
///
/// # Errors
///
/// [`PerfError::Kmeans`] on invalid input, [`PerfError::Mismatch`] if the
/// pruned kernel ever diverges.
pub fn kmeans_sweep_kernel(
    data: &[f64],
    input: &PerfInput,
    reps: u32,
) -> Result<KernelTiming, PerfError> {
    let n = input.bbvs.len();
    let dim = input.dim;
    // Each side is timed `reps` times and the minimum kept — the runs are
    // deterministic, so the minimum is the least-perturbed measurement.
    let mut naive = Vec::new();
    let mut reference_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| -> Result<Vec<KmeansResult>, KmeansError> {
            input
                .ks
                .iter()
                .map(|&k| {
                    kmeans_best_of_reference(
                        data,
                        n,
                        dim,
                        k,
                        input.max_iter,
                        input.seed,
                        input.n_init,
                    )
                })
                .collect()
        });
        naive = r?;
        reference_ms = reference_ms.min(ms);
    }
    let mut pruned = Vec::new();
    let mut optimized_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (r, ms) = time_ms(|| -> Result<Vec<KmeansResult>, KmeansError> {
            input
                .ks
                .iter()
                .map(|&k| kmeans_best_of(data, n, dim, k, input.max_iter, input.seed, input.n_init))
                .collect()
        });
        pruned = r?;
        optimized_ms = optimized_ms.min(ms);
    }
    for ((a, b), &k) in naive.iter().zip(&pruned).zip(&input.ks) {
        ensure_identical(a, b, &format!("k={k}"))?;
    }
    let last_inertia = pruned.last().map_or(0.0, |r| r.inertia);
    Ok(KernelTiming {
        name: "kmeans_sweep",
        reference_ms: Some(reference_ms),
        optimized_ms,
        speedup: Some(reference_ms / optimized_ms),
        details: vec![
            ("points", n as f64),
            ("dim", dim as f64),
            ("max_k", input.ks.iter().copied().max().unwrap_or(0) as f64),
            ("sweep_len", input.ks.len() as f64),
            ("n_init", f64::from(input.n_init)),
            ("final_inertia", last_inertia),
        ],
    })
}

/// Times BBV projection — the per-slice clone-and-project baseline vs the
/// sparse batched [`RandomProjection::project_all_normalized`] — and
/// asserts the outputs bit-identical.
///
/// # Errors
///
/// [`PerfError::Mismatch`] if the batched path diverges.
pub fn projection_kernel(input: &PerfInput, reps: u32) -> Result<KernelTiming, PerfError> {
    let projection = RandomProjection::new(input.dim, input.seed);
    let mut baseline = Vec::new();
    let (_, reference_ms) = time_ms(|| {
        for _ in 0..reps {
            baseline.clear();
            for bbv in &input.bbvs {
                baseline.extend(projection.project(&bbv.normalized()));
            }
        }
    });
    let mut batched = Vec::new();
    let (_, optimized_ms) = time_ms(|| {
        for _ in 0..reps {
            batched = projection.project_all_normalized(&input.bbvs);
        }
    });
    if baseline.len() != batched.len()
        || baseline
            .iter()
            .zip(&batched)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(PerfError::Mismatch("bbv projection".to_string()));
    }
    let checksum: f64 = batched.iter().sum();
    Ok(KernelTiming {
        name: "bbv_projection",
        reference_ms: Some(reference_ms),
        optimized_ms,
        speedup: Some(reference_ms / optimized_ms),
        details: vec![
            ("bbvs", input.bbvs.len() as f64),
            ("dim", input.dim as f64),
            ("reps", f64::from(reps)),
            ("checksum", checksum),
        ],
    })
}

/// Times the [`Cache::access_rw`] probe loop: a seeded random
/// read/write stream over a 128 KiB working set against a 32 KiB 8-way
/// LRU cache (misses exercise the victim path). There is no kept naive
/// baseline, so only the optimized time is reported; the hit count is a
/// deterministic checksum.
pub fn cache_kernel(accesses: u64) -> KernelTiming {
    let mut cache = Cache::new(CacheConfig::new(32 << 10, 8, 64, 1));
    let mut rng = SplitMix64::new(0xC0FF_EE00);
    let mut hits = 0u64;
    let (_, optimized_ms) = time_ms(|| {
        for i in 0..accesses {
            let addr = rng.next_u64() & 0x1_FFFF;
            if cache.access_rw(addr, i % 4 == 0, true) {
                hits += 1;
            }
        }
    });
    KernelTiming {
        name: "cache_access_rw",
        reference_ms: None,
        optimized_ms,
        speedup: None,
        details: vec![
            ("accesses", accesses as f64),
            ("ns_per_access", optimized_ms * 1e6 / accesses as f64),
            ("hits", hits as f64),
        ],
    }
}

/// Runs the whole harness: input regeneration plus all three kernels.
/// `progress` receives one human-readable line per completed stage.
///
/// # Errors
///
/// As the individual stages.
pub fn run_kernels(
    options: &PerfOptions,
    mut progress: impl FnMut(&str),
) -> Result<PerfReport, PerfError> {
    let input = prepare_input(options)?;
    progress(&format!(
        "regenerated {} BBV slices from {} (sweep ks = {:?}, {} restarts)",
        input.bbvs.len(),
        input.benchmark,
        input.ks,
        input.n_init
    ));
    let projection = RandomProjection::new(input.dim, input.seed);
    let data = projection.project_all_normalized(&input.bbvs);

    let kmeans = kmeans_sweep_kernel(&data, &input, if options.quick { 1 } else { 3 })?;
    progress(&format!(
        "kmeans_sweep: {:.1} ms reference, {:.1} ms pruned ({:.2}x)",
        kmeans.reference_ms.unwrap_or(0.0),
        kmeans.optimized_ms,
        kmeans.speedup.unwrap_or(0.0)
    ));

    let reps = if options.quick { 5 } else { 3 };
    let proj = projection_kernel(&input, reps)?;
    progress(&format!(
        "bbv_projection: {:.1} ms baseline, {:.1} ms sparse ({:.2}x)",
        proj.reference_ms.unwrap_or(0.0),
        proj.optimized_ms,
        proj.speedup.unwrap_or(0.0)
    ));

    let accesses = if options.quick { 1_000_000 } else { 16_000_000 };
    let cache = cache_kernel(accesses);
    progress(&format!(
        "cache_access_rw: {:.1} ms for {} accesses",
        cache.optimized_ms, accesses
    ));

    Ok(PerfReport {
        benchmark: input.benchmark,
        quick: options.quick,
        num_slices: input.bbvs.len() as u64,
        dim: input.dim,
        kernels: vec![kmeans, proj, cache],
    })
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

impl PerfReport {
    /// Renders the report as a JSON document (hand-assembled; floats use
    /// Rust's shortest-round-trip `{:?}` like every sampsim writer).
    pub fn to_json(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                let mut fields = vec![format!("\"name\":\"{}\"", k.name)];
                if let Some(r) = k.reference_ms {
                    fields.push(format!("\"reference_ms\":{}", json_f(r)));
                }
                fields.push(format!("\"optimized_ms\":{}", json_f(k.optimized_ms)));
                if let Some(s) = k.speedup {
                    fields.push(format!("\"speedup\":{}", json_f(s)));
                }
                let details: Vec<String> = k
                    .details
                    .iter()
                    .map(|(name, v)| format!("\"{name}\":{}", json_f(*v)))
                    .collect();
                fields.push(format!("\"details\":{{{}}}", details.join(",")));
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"benchmark\":\"{}\",\"quick\":{},\"num_slices\":{},\"dim\":{},\"kernels\":[{}]}}\n",
            SCHEMA,
            self.benchmark,
            self.quick,
            self.num_slices,
            self.dim,
            kernels.join(",")
        )
    }
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{what}: missing \"{key}\""))
}

/// Validates a `BENCH_kernels.json` document against the v1 schema:
/// schema tag, benchmark name, and the three kernels with finite
/// non-negative timings (speedups required where a reference exists).
///
/// # Errors
///
/// A description of the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = field(&doc, "schema", "report")?
        .as_str()
        .ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema is '{schema}', expected '{SCHEMA}'"));
    }
    field(&doc, "benchmark", "report")?
        .as_str()
        .ok_or("benchmark is not a string")?;
    field(&doc, "num_slices", "report")?
        .as_f64()
        .ok_or("num_slices is not a number")?;
    let kernels = field(&doc, "kernels", "report")?
        .as_array()
        .ok_or("kernels is not an array")?;
    let mut seen = Vec::new();
    for kernel in kernels {
        let name = field(kernel, "name", "kernel")?
            .as_str()
            .ok_or("kernel name is not a string")?;
        let ms = field(kernel, "optimized_ms", name)?
            .as_f64()
            .ok_or_else(|| format!("{name}: optimized_ms is not a number"))?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("{name}: optimized_ms {ms} is not a valid timing"));
        }
        field(kernel, "details", name)?;
        seen.push(name.to_string());
    }
    for required in ["kmeans_sweep", "bbv_projection", "cache_access_rw"] {
        if !seen.iter().any(|s| s == required) {
            return Err(format!("kernel \"{required}\" is missing"));
        }
    }
    for kernel in kernels {
        let name = kernel.get("name").and_then(Value::as_str).unwrap_or("");
        if name == "kmeans_sweep" || name == "bbv_projection" {
            let speedup = field(kernel, "speedup", name)?
                .as_f64()
                .ok_or_else(|| format!("{name}: speedup is not a number"))?;
            if !speedup.is_finite() || speedup <= 0.0 {
                return Err(format!("{name}: speedup {speedup} is not valid"));
            }
            field(kernel, "reference_ms", name)?
                .as_f64()
                .ok_or_else(|| format!("{name}: reference_ms is not a number"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_util::rng::Xoshiro256StarStar;

    fn tiny_input() -> PerfInput {
        // Synthetic BBVs: enough phase structure for clustering to do
        // real work, small enough to keep the test fast.
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let bbvs: Vec<Bbv> = (0..60)
            .map(|i| {
                let base = (i / 20) * 50;
                let counts: Vec<(u32, u32)> = (0..10)
                    .map(|j| (base + j * 3, 1 + (rng.next_u64() % 40) as u32))
                    .collect();
                Bbv::from_counts(counts)
            })
            .collect();
        PerfInput {
            benchmark: "synthetic".to_string(),
            bbvs,
            dim: 8,
            ks: vec![2, 3],
            n_init: 2,
            max_iter: 40,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn kernels_run_and_report_validates() {
        let input = tiny_input();
        let projection = RandomProjection::new(input.dim, input.seed);
        let data = projection.project_all_normalized(&input.bbvs);
        let kmeans = kmeans_sweep_kernel(&data, &input, 2).unwrap();
        assert!(kmeans.speedup.is_some());
        let proj = projection_kernel(&input, 2).unwrap();
        assert!(proj.reference_ms.is_some());
        let cache = cache_kernel(50_000);
        assert_eq!(cache.reference_ms, None);
        let hits = cache
            .details
            .iter()
            .find(|(n, _)| *n == "hits")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(hits > 0.0, "some accesses must hit");

        let report = PerfReport {
            benchmark: input.benchmark.clone(),
            quick: true,
            num_slices: input.bbvs.len() as u64,
            dim: input.dim,
            kernels: vec![kmeans, proj, cache],
        };
        let text = report.to_json();
        validate_report(&text).unwrap();
    }

    #[test]
    fn cache_kernel_checksum_is_deterministic() {
        let a = cache_kernel(20_000);
        let b = cache_kernel(20_000);
        let hits = |k: &KernelTiming| {
            k.details
                .iter()
                .find(|(n, _)| *n == "hits")
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(hits(&a).to_bits(), hits(&b).to_bits());
    }

    #[test]
    fn validate_rejects_broken_reports() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let wrong_schema = r#"{"schema":"other/v9","benchmark":"x","num_slices":1,"kernels":[]}"#;
        assert!(validate_report(wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let missing_kernel = format!(
            r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[{{"name":"cache_access_rw","optimized_ms":1.0,"details":{{}}}}]}}"#
        );
        assert!(validate_report(&missing_kernel)
            .unwrap_err()
            .contains("kmeans_sweep"));
        let no_speedup = format!(
            r#"{{"schema":"{SCHEMA}","benchmark":"x","num_slices":1,"kernels":[
                {{"name":"kmeans_sweep","optimized_ms":1.0,"details":{{}}}},
                {{"name":"bbv_projection","reference_ms":2.0,"optimized_ms":1.0,"speedup":2.0,"details":{{}}}},
                {{"name":"cache_access_rw","optimized_ms":1.0,"details":{{}}}}]}}"#
        );
        assert!(validate_report(&no_speedup)
            .unwrap_err()
            .contains("speedup"));
    }

    #[test]
    fn select_benchmark_falls_back_without_artifacts() {
        let dir = std::env::temp_dir().join(format!("sampsim-perf-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(select_benchmark(&store, false), "503.bwaves_r");
        assert_eq!(select_benchmark(&store, true), "505.mcf_r");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Request coalescing: N concurrent identical requests, one execution.
//!
//! The first thread to claim a response key becomes the *leader* and runs
//! the pipeline; threads claiming the same key while the flight is open
//! become *followers* and block until the leader publishes the reply line.
//! The leader's claim is a guard: if the leader unwinds without
//! completing (a panic inside the pipeline), the guard's `Drop` publishes
//! an internal-error reply so followers can never hang.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight computation for a response key.
pub struct Flight {
    result: Mutex<Option<String>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes the reply line.
    pub fn wait(&self) -> String {
        let guard = self.result.lock().unwrap();
        let guard = self.ready.wait_while(guard, |slot| slot.is_none()).unwrap();
        guard.clone().expect("wait_while guarantees a value")
    }

    fn publish(&self, line: String) {
        *self.result.lock().unwrap() = Some(line);
        self.ready.notify_all();
    }
}

/// The claim table mapping open response keys to flights.
#[derive(Default)]
pub struct Coalescer {
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

/// The outcome of claiming a key.
pub enum Claim<'a> {
    /// This thread owns the computation; it must call
    /// [`LeaderGuard::complete`].
    Leader(LeaderGuard<'a>),
    /// Another thread is already computing; wait on the flight.
    Follower(Arc<Flight>),
}

impl Coalescer {
    /// Creates an empty coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `key`: the first claimant becomes the leader, later
    /// claimants (while the flight is open) become followers.
    pub fn claim(&self, key: u64) -> Claim<'_> {
        let mut flights = self.flights.lock().unwrap();
        if let Some(flight) = flights.get(&key) {
            return Claim::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&flight));
        Claim::Leader(LeaderGuard {
            coalescer: self,
            key,
            flight,
            completed: false,
        })
    }

    /// Number of open flights (for tests).
    pub fn open_flights(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    fn close(&self, key: u64) {
        self.flights.lock().unwrap().remove(&key);
    }
}

/// Proof of leadership for one key. Completing publishes the reply to
/// every follower and closes the flight; dropping without completing
/// publishes `fallback_reply` instead (panic safety).
pub struct LeaderGuard<'a> {
    coalescer: &'a Coalescer,
    key: u64,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeaderGuard<'_> {
    /// Publishes the reply line and closes the flight.
    ///
    /// Callers that cache responses must insert into the cache *before*
    /// calling this: once the flight closes, a new claimant for the key
    /// becomes a fresh leader, and only a cache hit stops it from
    /// recomputing.
    pub fn complete(mut self, line: String) {
        self.completed = true;
        self.flight.publish(line);
        self.coalescer.close(self.key);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.flight.publish(crate::protocol::error_reply(
                "internal",
                "worker failed before completing the request",
            ));
            self.coalescer.close(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_leader_many_followers() {
        let coalescer = Coalescer::new();
        let executions = AtomicUsize::new(0);
        let replies: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| match coalescer.claim(99) {
                        Claim::Leader(guard) => {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Give followers time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            guard.complete("result".into());
                            "result".to_string()
                        }
                        Claim::Follower(flight) => flight.wait(),
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        assert!(replies.iter().all(|r| r == "result"));
        assert_eq!(coalescer.open_flights(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let coalescer = Coalescer::new();
        let Claim::Leader(a) = coalescer.claim(1) else {
            panic!("first claim must lead");
        };
        let Claim::Leader(b) = coalescer.claim(2) else {
            panic!("distinct key must lead");
        };
        assert_eq!(coalescer.open_flights(), 2);
        a.complete("a".into());
        b.complete("b".into());
        assert_eq!(coalescer.open_flights(), 0);
    }

    #[test]
    fn sequential_claims_after_completion_lead_again() {
        let coalescer = Coalescer::new();
        let Claim::Leader(guard) = coalescer.claim(5) else {
            panic!("first claim must lead");
        };
        guard.complete("first".into());
        // The flight is closed; a new claim starts fresh.
        assert!(matches!(coalescer.claim(5), Claim::Leader(_)));
    }

    #[test]
    fn dropped_leader_releases_followers_with_an_error() {
        let coalescer = Coalescer::new();
        let flight = {
            let Claim::Leader(guard) = coalescer.claim(7) else {
                panic!("first claim must lead");
            };
            let Claim::Follower(flight) = coalescer.claim(7) else {
                panic!("second claim must follow");
            };
            drop(guard); // leader dies without completing
            flight
        };
        let line = flight.wait();
        assert!(line.contains("\"internal\""), "{line}");
        assert_eq!(coalescer.open_flights(), 0);
    }
}

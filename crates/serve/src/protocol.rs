//! The wire protocol: line-delimited JSON over TCP.
//!
//! One connection carries exactly one request line and receives exactly one
//! reply line. Requests are parsed with the hardened `sampsim_util::json`
//! parser (depth-limited, strict trailing-garbage rejection, full surrogate
//! decoding) and validated strictly: unknown keys are rejected so a typo'd
//! field can never be silently ignored.
//!
//! # Requests
//!
//! ```text
//! {"op":"run","bench":"omnetpp_s","scale":0.002,"slice":20,"maxk":6}
//! {"op":"run","bench":"omnetpp_s","scale":0.002,"strategy":"rss"}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `bench` is required for `run`; `scale` (default 1.0), `slice`, `maxk`
//! and `strategy` (a sampling-strategy name; default `simpoint`) are
//! optional. Degenerate values such as `"slice":0`, `"maxk":0` or an
//! unregistered strategy name pass protocol validation on purpose: they
//! flow into the `sampsim-analyze` lint pass, which reports them as
//! structured `invalid-config` replies with rule codes (`SA020`, `SA021`,
//! `SA130`) instead of a blunt parse error.
//!
//! # Replies
//!
//! A successful `run` reply is the exact `sampsim run` stdout document
//! (starts `{"benchmark":...`). Every failure is an object:
//!
//! ```text
//! {"error":{"code":"busy","message":"queue full (depth 32)"}}
//! {"error":{"code":"invalid-config","message":"...","rules":[...]}}
//! ```

use crate::service::RunRequest;
use sampsim_analyze::{diagnostic_json, Diagnostic};
use sampsim_util::json::{self, Value};

/// Maximum accepted request-line length in bytes. Longer lines get a
/// `bad-request` reply instead of unbounded buffering.
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch from cache) a full sampling study.
    Run(RunRequest),
    /// Liveness check.
    Ping,
    /// Server counter snapshot.
    Stats,
    /// Drain queued work and stop the server.
    Shutdown,
}

/// Parses and strictly validates one request line.
///
/// # Errors
///
/// Returns a human-readable message (for a `bad-request` reply) on
/// malformed JSON, missing/mistyped fields, or unknown keys.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let Value::Object(fields) = &value else {
        return Err("request must be a JSON object".into());
    };
    let op = value
        .get("op")
        .ok_or("missing \"op\"")?
        .as_str()
        .ok_or("\"op\" must be a string")?;
    let allowed: &[&str] = match op {
        "run" => &[
            "op", "bench", "scale", "slice", "maxk", "strategy", "kmeans",
        ],
        "ping" | "stats" | "shutdown" => &["op"],
        other => return Err(format!("unknown op {other:?}")),
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?} for op {op:?}"));
        }
    }
    match op {
        "run" => {
            let bench = value
                .get("bench")
                .ok_or("run needs \"bench\"")?
                .as_str()
                .ok_or("\"bench\" must be a string")?
                .to_string();
            let scale = match value.get("scale") {
                None => 1.0,
                Some(v) => {
                    let f = v.as_f64().ok_or("\"scale\" must be a number")?;
                    if !(f.is_finite() && f > 0.0) {
                        return Err("\"scale\" must be finite and positive".into());
                    }
                    f
                }
            };
            let slice = match value.get("slice") {
                None => None,
                Some(v) => Some(non_negative_integer(v, "slice")?),
            };
            let maxk = match value.get("maxk") {
                None => None,
                Some(v) => Some(non_negative_integer(v, "maxk")? as usize),
            };
            let strategy = match value.get("strategy") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or("\"strategy\" must be a string")?
                        .to_string(),
                ),
            };
            let kmeans = match value.get("kmeans") {
                None => None,
                Some(v) => Some(v.as_str().ok_or("\"kmeans\" must be a string")?.to_string()),
            };
            Ok(Request::Run(RunRequest {
                bench,
                scale,
                slice,
                maxk,
                strategy,
                kmeans,
            }))
        }
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        _ => unreachable!("op validated above"),
    }
}

/// Extracts a non-negative integer that fits a `u64` exactly.
fn non_negative_integer(v: &Value, name: &str) -> Result<u64, String> {
    let f = v
        .as_f64()
        .ok_or_else(|| format!("\"{name}\" must be a number"))?;
    if !(f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64) {
        return Err(format!("\"{name}\" must be a non-negative integer"));
    }
    Ok(f as u64)
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a typed failure reply.
pub fn error_reply(code: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":{},\"message\":{}}}}}",
        json_string(code),
        json_string(message)
    )
}

/// Renders the `invalid-config` reply: the summary message plus one
/// structured rule object per diagnostic (`sampsim lint --format json`
/// shape).
pub fn invalid_config_reply(message: &str, diagnostics: &[Diagnostic]) -> String {
    let rules: Vec<String> = diagnostics.iter().map(diagnostic_json).collect();
    format!(
        "{{\"error\":{{\"code\":\"invalid-config\",\"message\":{},\"rules\":[{}]}}}}",
        json_string(message),
        rules.join(",")
    )
}

/// The reply sent when the admission queue is full.
pub fn busy_reply(queue_depth: usize) -> String {
    error_reply("busy", &format!("queue full (depth {queue_depth})"))
}

/// Reply to `ping`.
pub fn pong_reply() -> String {
    "{\"ok\":\"pong\"}".to_string()
}

/// Reply to `shutdown`.
pub fn shutdown_reply() -> String {
    "{\"ok\":\"shutdown\"}".to_string()
}

/// Whether a reply line is a failure reply (`{"error":...}`).
pub fn is_error_reply(line: &str) -> bool {
    json::parse(line)
        .map(|v| v.get("error").is_some())
        .unwrap_or(true)
}

/// Builds the request line the `sampsim request` client sends for a run.
pub fn run_request_line(
    bench: &str,
    scale: f64,
    slice: Option<u64>,
    maxk: Option<usize>,
    strategy: Option<&str>,
    kmeans: Option<&str>,
) -> String {
    let mut fields = vec![
        "\"op\":\"run\"".to_string(),
        format!("\"bench\":{}", json_string(bench)),
        format!("\"scale\":{scale:?}"),
    ];
    if let Some(s) = slice {
        fields.push(format!("\"slice\":{s}"));
    }
    if let Some(k) = maxk {
        fields.push(format!("\"maxk\":{k}"));
    }
    if let Some(name) = strategy {
        fields.push(format!("\"strategy\":{}", json_string(name)));
    }
    if let Some(mode) = kmeans {
        fields.push(format!("\"kmeans\":{}", json_string(mode)));
    }
    format!("{{{}}}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_requests() {
        let r = parse_request(r#"{"op":"run","bench":"mcf_r","scale":0.5,"slice":20,"maxk":6}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "mcf_r".into(),
                scale: 0.5,
                slice: Some(20),
                maxk: Some(6),
                strategy: None,
                kmeans: None,
            })
        );
        // Optional fields default.
        let r = parse_request(r#"{"op":"run","bench":"mcf_r"}"#).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "mcf_r".into(),
                scale: 1.0,
                slice: None,
                maxk: None,
                strategy: None,
                kmeans: None,
            })
        );
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn degenerate_lintable_values_pass_protocol_validation() {
        // slice 0 / maxk 0 are the analyze pass's job (SA020/SA021), not
        // the protocol's: they must parse so the client gets rule codes.
        let r = parse_request(r#"{"op":"run","bench":"mcf_r","slice":0,"maxk":0}"#).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "mcf_r".into(),
                scale: 1.0,
                slice: Some(0),
                maxk: Some(0),
                strategy: None,
                kmeans: None,
            })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, why) in [
            ("", "empty"),
            ("[]", "not an object"),
            ("{\"op\":\"run\"}", "missing bench"),
            ("{\"bench\":\"mcf_r\"}", "missing op"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"ping\",\"bench\":\"x\"}", "unknown key for ping"),
            ("{\"op\":\"run\",\"bench\":\"x\",\"wat\":1}", "unknown key"),
            ("{\"op\":\"run\",\"bench\":7}", "bench not a string"),
            ("{\"op\":\"run\",\"bench\":\"x\",\"scale\":0}", "scale 0"),
            ("{\"op\":\"run\",\"bench\":\"x\",\"scale\":-1}", "scale < 0"),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"slice\":1.5}",
                "fractional slice",
            ),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"maxk\":-2}",
                "negative maxk",
            ),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"strategy\":3}",
                "strategy not a string",
            ),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"kmeans\":3}",
                "kmeans not a string",
            ),
            ("{\"op\":\"ping\"} trailing", "trailing garbage"),
        ] {
            assert!(parse_request(line).is_err(), "{why}: {line}");
        }
    }

    #[test]
    fn request_line_roundtrips_through_the_parser() {
        let line = run_request_line("omnetpp_s", 0.002, None, Some(6), None, None);
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "omnetpp_s".into(),
                scale: 0.002,
                slice: None,
                maxk: Some(6),
                strategy: None,
                kmeans: None,
            })
        );
        let line = run_request_line(
            "omnetpp_s",
            0.002,
            Some(20),
            None,
            Some("rss"),
            Some("minibatch"),
        );
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "omnetpp_s".into(),
                scale: 0.002,
                slice: Some(20),
                maxk: None,
                strategy: Some("rss".into()),
                kmeans: Some("minibatch".into()),
            })
        );
    }

    #[test]
    fn error_replies_are_valid_json() {
        for line in [
            error_reply("bad-request", "uh \"oh\"\nnewline"),
            busy_reply(32),
            pong_reply(),
            shutdown_reply(),
        ] {
            let v = sampsim_util::json::parse(&line).unwrap();
            assert!(v.get("error").is_some() || v.get("ok").is_some());
        }
        assert!(is_error_reply(&busy_reply(1)));
        assert!(!is_error_reply(&pong_reply()));
        assert!(is_error_reply("not json at all"));
    }
}

//! The wire protocol: line-delimited JSON over TCP.
//!
//! One connection carries exactly one request line and receives exactly one
//! reply line. Requests are parsed with the hardened `sampsim_util::json`
//! parser (depth-limited, strict trailing-garbage rejection, full surrogate
//! decoding) and validated strictly: unknown keys are rejected so a typo'd
//! field can never be silently ignored.
//!
//! # Requests
//!
//! ```text
//! {"op":"run","bench":"omnetpp_s","scale":0.002,"slice":20,"maxk":6}
//! {"op":"run","bench":"omnetpp_s","scale":0.002,"strategy":"rss"}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `bench` is required for `run`; `scale` (default 1.0), `slice`, `maxk`
//! and `strategy` (a sampling-strategy name; default `simpoint`) are
//! optional. Degenerate values such as `"slice":0`, `"maxk":0` or an
//! unregistered strategy name pass protocol validation on purpose: they
//! flow into the `sampsim-analyze` lint pass, which reports them as
//! structured `invalid-config` replies with rule codes (`SA020`, `SA021`,
//! `SA130`) instead of a blunt parse error.
//!
//! # Replies
//!
//! A successful `run` reply is the exact `sampsim run` stdout document
//! (starts `{"benchmark":...`). Every failure is an object:
//!
//! ```text
//! {"error":{"code":"busy","message":"queue full (depth 32)"}}
//! {"error":{"code":"invalid-config","message":"...","rules":[...]}}
//! ```

use crate::service::RunRequest;
use sampsim_analyze::{diagnostic_json, Diagnostic};
use sampsim_util::json::{self, Value};

/// Maximum accepted request-line length in bytes. Longer lines get a
/// `bad-request` reply instead of unbounded buffering.
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch from cache) a full sampling study.
    Run(RunRequest),
    /// Liveness check.
    Ping,
    /// Server counter snapshot.
    Stats,
    /// Drain queued work and stop the server.
    Shutdown,
    /// Fleet peer protocol: warm this server's response cache with an
    /// already-rendered reply document under a content-addressed key.
    /// Sent by the fleet router after it serves a key, so the key's
    /// next-preference shard already holds the bytes when a rebalance
    /// moves the key there.
    PeerPut {
        /// The 64-bit response key (wire format: 16 hex digits).
        key: u64,
        /// The exact reply document to store.
        doc: String,
    },
    /// Batch study op (fleet router): one run per benchmark, fanned
    /// across the shard pool, streamed back as one envelope line per
    /// benchmark (in request order) followed by a summary line. The
    /// single daemon answers it with a typed refusal — batch fan-out is
    /// the router's job.
    Suite {
        /// Benchmark names/patterns; empty means the whole suite.
        benches: Vec<String>,
        /// The shared run template applied to every benchmark (its
        /// `bench` field is replaced per item).
        template: RunRequest,
    },
}

/// Parses and strictly validates one request line.
///
/// # Errors
///
/// Returns a human-readable message (for a `bad-request` reply) on
/// malformed JSON, missing/mistyped fields, or unknown keys.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let Value::Object(fields) = &value else {
        return Err("request must be a JSON object".into());
    };
    let op = value
        .get("op")
        .ok_or("missing \"op\"")?
        .as_str()
        .ok_or("\"op\" must be a string")?;
    let allowed: &[&str] = match op {
        "run" => &[
            "op", "bench", "scale", "slice", "maxk", "strategy", "kmeans",
        ],
        "ping" | "stats" | "shutdown" => &["op"],
        "peer-put" => &["op", "key", "doc"],
        "suite" => &[
            "op", "benches", "scale", "slice", "maxk", "strategy", "kmeans",
        ],
        other => return Err(format!("unknown op {other:?}")),
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?} for op {op:?}"));
        }
    }
    match op {
        "run" => {
            let bench = value
                .get("bench")
                .ok_or("run needs \"bench\"")?
                .as_str()
                .ok_or("\"bench\" must be a string")?
                .to_string();
            let template = parse_run_template(&value)?;
            Ok(Request::Run(RunRequest { bench, ..template }))
        }
        "suite" => {
            let benches = match value.get("benches") {
                None => Vec::new(),
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or("\"benches\" entries must be strings".to_string())
                    })
                    .collect::<Result<Vec<String>, String>>()?,
                Some(_) => return Err("\"benches\" must be an array".into()),
            };
            let template = parse_run_template(&value)?;
            Ok(Request::Suite { benches, template })
        }
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "peer-put" => {
            let key = value
                .get("key")
                .ok_or("peer-put needs \"key\"")?
                .as_str()
                .ok_or("\"key\" must be a string")?;
            let key = parse_key_hex(key)?;
            let doc = value
                .get("doc")
                .ok_or("peer-put needs \"doc\"")?
                .as_str()
                .ok_or("\"doc\" must be a string")?
                .to_string();
            // Only well-formed reply documents may enter the cache: a
            // corrupt peer can waste space but never poison a reply with
            // bytes that do not parse.
            if json::parse(&doc).is_err() {
                return Err("\"doc\" must be a JSON document".into());
            }
            Ok(Request::PeerPut { key, doc })
        }
        _ => unreachable!("op validated above"),
    }
}

/// Parses the run-template fields shared by `run` and `suite` (`scale`,
/// `slice`, `maxk`, `strategy`, `kmeans`); the returned request carries
/// an empty `bench` for the caller to fill.
fn parse_run_template(value: &Value) -> Result<RunRequest, String> {
    let scale = match value.get("scale") {
        None => 1.0,
        Some(v) => {
            let f = v.as_f64().ok_or("\"scale\" must be a number")?;
            if !(f.is_finite() && f > 0.0) {
                return Err("\"scale\" must be finite and positive".into());
            }
            f
        }
    };
    let slice = match value.get("slice") {
        None => None,
        Some(v) => Some(non_negative_integer(v, "slice")?),
    };
    let maxk = match value.get("maxk") {
        None => None,
        Some(v) => Some(non_negative_integer(v, "maxk")? as usize),
    };
    let strategy = match value.get("strategy") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or("\"strategy\" must be a string")?
                .to_string(),
        ),
    };
    let kmeans = match value.get("kmeans") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("\"kmeans\" must be a string")?.to_string()),
    };
    Ok(RunRequest {
        bench: String::new(),
        scale,
        slice,
        maxk,
        strategy,
        kmeans,
    })
}

/// Formats a 64-bit content-addressed key in its wire form: 16 lowercase
/// hex digits. JSON numbers are IEEE doubles and lose bits above 2^53,
/// so keys never travel as numbers.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses the 16-hex-digit wire form of a key.
///
/// # Errors
///
/// Returns a human-readable message when the digit count or alphabet is
/// wrong.
pub fn parse_key_hex(s: &str) -> Result<u64, String> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("\"key\" must be 16 hex digits, got {s:?}"));
    }
    u64::from_str_radix(s, 16).map_err(|e| format!("bad key {s:?}: {e}"))
}

/// Builds a `suite` batch request line: one run per benchmark with the
/// shared template (the template's `bench` field is ignored). An empty
/// `benches` slice requests the whole suite.
pub fn suite_request_line(benches: &[&str], template: &RunRequest) -> String {
    let run = run_request_line(
        "",
        template.scale,
        template.slice,
        template.maxk,
        template.strategy.as_deref(),
        template.kmeans.as_deref(),
    );
    // Rewrite the op and swap the bench field for the bench list.
    let tail = run
        .strip_prefix("{\"op\":\"run\",\"bench\":\"\",")
        .expect("run_request_line shape is stable");
    let names: Vec<String> = benches.iter().map(|b| json_string(b)).collect();
    format!(
        "{{\"op\":\"suite\",\"benches\":[{}],{}",
        names.join(","),
        tail
    )
}

/// One streamed item of a `suite` reply: the item index, the requested
/// benchmark name, and the verbatim per-benchmark reply (a run document
/// or a typed error object).
pub fn suite_item_line(item: usize, bench: &str, reply: &str) -> String {
    format!(
        "{{\"item\":{item},\"bench\":{},\"reply\":{reply}}}",
        json_string(bench)
    )
}

/// The terminating summary line of a `suite` reply stream.
pub fn suite_summary_line(items: usize, errors: usize) -> String {
    format!("{{\"ok\":\"suite\",\"items\":{items},\"errors\":{errors}}}")
}

/// Whether a line is a `suite` summary (terminates the reply stream).
pub fn is_suite_summary(line: &str) -> bool {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("ok")?.as_str().map(|s| s == "suite"))
        .unwrap_or(false)
}

/// The `errors` count of a `suite` summary line; `None` for every
/// other line. Clients use this to exit nonzero on partial failure.
pub fn suite_summary_errors(line: &str) -> Option<usize> {
    let value = json::parse(line).ok()?;
    if value.get("ok")?.as_str()? != "suite" {
        return None;
    }
    let errors = value.get("errors")?.as_f64()?;
    (errors.is_finite() && errors >= 0.0).then_some(errors as usize)
}

/// Builds the `peer-put` request line the fleet router sends to warm a
/// sibling shard.
pub fn peer_put_line(key: u64, doc: &str) -> String {
    format!(
        "{{\"op\":\"peer-put\",\"key\":\"{}\",\"doc\":{}}}",
        key_hex(key),
        json_string(doc)
    )
}

/// Reply to a stored `peer-put`.
pub fn peer_put_reply() -> String {
    "{\"ok\":\"peer-put\"}".to_string()
}

/// Extracts a non-negative integer that fits a `u64` exactly.
fn non_negative_integer(v: &Value, name: &str) -> Result<u64, String> {
    let f = v
        .as_f64()
        .ok_or_else(|| format!("\"{name}\" must be a number"))?;
    if !(f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64) {
        return Err(format!("\"{name}\" must be a non-negative integer"));
    }
    Ok(f as u64)
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a typed failure reply.
pub fn error_reply(code: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":{},\"message\":{}}}}}",
        json_string(code),
        json_string(message)
    )
}

/// Renders the `invalid-config` reply: the summary message plus one
/// structured rule object per diagnostic (`sampsim lint --format json`
/// shape).
pub fn invalid_config_reply(message: &str, diagnostics: &[Diagnostic]) -> String {
    let rules: Vec<String> = diagnostics.iter().map(diagnostic_json).collect();
    format!(
        "{{\"error\":{{\"code\":\"invalid-config\",\"message\":{},\"rules\":[{}]}}}}",
        json_string(message),
        rules.join(",")
    )
}

/// The reply sent when the admission queue is full. Carries a
/// `retry_after_ms` hint so clients back off a sensible amount instead
/// of guessing; the hint is a pure function of the queue depth
/// ([`busy_retry_hint_ms`]), so replies stay deterministic.
pub fn busy_reply(queue_depth: usize) -> String {
    format!(
        "{{\"error\":{{\"code\":\"busy\",\"message\":{},\"retry_after_ms\":{}}}}}",
        json_string(&format!("queue full (depth {queue_depth})")),
        busy_retry_hint_ms(queue_depth)
    )
}

/// The deterministic `retry_after_ms` hint for a given queue depth: a
/// deeper queue drains more slowly, so the hint scales with depth,
/// clamped to a sane [25, 500] ms window.
pub fn busy_retry_hint_ms(queue_depth: usize) -> u64 {
    (10 * queue_depth as u64).clamp(25, 500)
}

/// Extracts the `retry_after_ms` hint from a `busy` failure reply;
/// `None` for every other line (success, other errors, garbage).
pub fn busy_retry_after(line: &str) -> Option<u64> {
    let value = json::parse(line).ok()?;
    let error = value.get("error")?;
    if error.get("code")?.as_str()? != "busy" {
        return None;
    }
    let hint = error.get("retry_after_ms")?.as_f64()?;
    (hint.is_finite() && hint >= 0.0).then_some(hint as u64)
}

/// Reply to `ping`.
pub fn pong_reply() -> String {
    "{\"ok\":\"pong\"}".to_string()
}

/// Reply to `shutdown`.
pub fn shutdown_reply() -> String {
    "{\"ok\":\"shutdown\"}".to_string()
}

/// Whether a reply line is a failure reply (`{"error":...}`).
pub fn is_error_reply(line: &str) -> bool {
    json::parse(line)
        .map(|v| v.get("error").is_some())
        .unwrap_or(true)
}

/// Builds the request line the `sampsim request` client sends for a run.
pub fn run_request_line(
    bench: &str,
    scale: f64,
    slice: Option<u64>,
    maxk: Option<usize>,
    strategy: Option<&str>,
    kmeans: Option<&str>,
) -> String {
    let mut fields = vec![
        "\"op\":\"run\"".to_string(),
        format!("\"bench\":{}", json_string(bench)),
        format!("\"scale\":{scale:?}"),
    ];
    if let Some(s) = slice {
        fields.push(format!("\"slice\":{s}"));
    }
    if let Some(k) = maxk {
        fields.push(format!("\"maxk\":{k}"));
    }
    if let Some(name) = strategy {
        fields.push(format!("\"strategy\":{}", json_string(name)));
    }
    if let Some(mode) = kmeans {
        fields.push(format!("\"kmeans\":{}", json_string(mode)));
    }
    format!("{{{}}}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_requests() {
        let r = parse_request(r#"{"op":"run","bench":"mcf_r","scale":0.5,"slice":20,"maxk":6}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "mcf_r".into(),
                scale: 0.5,
                slice: Some(20),
                maxk: Some(6),
                strategy: None,
                kmeans: None,
            })
        );
        // Optional fields default.
        let r = parse_request(r#"{"op":"run","bench":"mcf_r"}"#).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "mcf_r".into(),
                scale: 1.0,
                slice: None,
                maxk: None,
                strategy: None,
                kmeans: None,
            })
        );
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn degenerate_lintable_values_pass_protocol_validation() {
        // slice 0 / maxk 0 are the analyze pass's job (SA020/SA021), not
        // the protocol's: they must parse so the client gets rule codes.
        let r = parse_request(r#"{"op":"run","bench":"mcf_r","slice":0,"maxk":0}"#).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "mcf_r".into(),
                scale: 1.0,
                slice: Some(0),
                maxk: Some(0),
                strategy: None,
                kmeans: None,
            })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, why) in [
            ("", "empty"),
            ("[]", "not an object"),
            ("{\"op\":\"run\"}", "missing bench"),
            ("{\"bench\":\"mcf_r\"}", "missing op"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"ping\",\"bench\":\"x\"}", "unknown key for ping"),
            ("{\"op\":\"run\",\"bench\":\"x\",\"wat\":1}", "unknown key"),
            ("{\"op\":\"run\",\"bench\":7}", "bench not a string"),
            ("{\"op\":\"run\",\"bench\":\"x\",\"scale\":0}", "scale 0"),
            ("{\"op\":\"run\",\"bench\":\"x\",\"scale\":-1}", "scale < 0"),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"slice\":1.5}",
                "fractional slice",
            ),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"maxk\":-2}",
                "negative maxk",
            ),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"strategy\":3}",
                "strategy not a string",
            ),
            (
                "{\"op\":\"run\",\"bench\":\"x\",\"kmeans\":3}",
                "kmeans not a string",
            ),
            ("{\"op\":\"ping\"} trailing", "trailing garbage"),
        ] {
            assert!(parse_request(line).is_err(), "{why}: {line}");
        }
    }

    #[test]
    fn request_line_roundtrips_through_the_parser() {
        let line = run_request_line("omnetpp_s", 0.002, None, Some(6), None, None);
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "omnetpp_s".into(),
                scale: 0.002,
                slice: None,
                maxk: Some(6),
                strategy: None,
                kmeans: None,
            })
        );
        let line = run_request_line(
            "omnetpp_s",
            0.002,
            Some(20),
            None,
            Some("rss"),
            Some("minibatch"),
        );
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                bench: "omnetpp_s".into(),
                scale: 0.002,
                slice: Some(20),
                maxk: None,
                strategy: Some("rss".into()),
                kmeans: Some("minibatch".into()),
            })
        );
    }

    #[test]
    fn peer_put_roundtrips_and_validates() {
        let doc = r#"{"benchmark":"620.omnetpp_s","k":3}"#;
        let line = peer_put_line(0x0123_4567_89ab_cdef, doc);
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::PeerPut {
                key: 0x0123_4567_89ab_cdef,
                doc: doc.to_string(),
            }
        );
        // Keys below 2^53 survive too (the hex form is lossless by
        // construction; this pins the padding).
        let line = peer_put_line(7, "{}");
        assert!(line.contains("\"key\":\"0000000000000007\""), "{line}");
        assert!(parse_request(&line).is_ok());

        for (line, why) in [
            (r#"{"op":"peer-put"}"#, "missing key"),
            (r#"{"op":"peer-put","key":"00","doc":"{}"}"#, "short key"),
            (
                r#"{"op":"peer-put","key":7,"doc":"{}"}"#,
                "numeric key (lossy above 2^53)",
            ),
            (
                r#"{"op":"peer-put","key":"zz23456789abcdef","doc":"{}"}"#,
                "non-hex key",
            ),
            (
                r#"{"op":"peer-put","key":"0123456789abcdef"}"#,
                "missing doc",
            ),
            (
                r#"{"op":"peer-put","key":"0123456789abcdef","doc":"not json"}"#,
                "doc must parse",
            ),
            (
                r#"{"op":"peer-put","key":"0123456789abcdef","doc":"{}","wat":1}"#,
                "unknown key",
            ),
        ] {
            assert!(parse_request(line).is_err(), "{why}: {line}");
        }
    }

    #[test]
    fn suite_requests_roundtrip_and_validate() {
        let template = RunRequest {
            bench: String::new(),
            scale: 0.002,
            slice: None,
            maxk: Some(6),
            strategy: None,
            kmeans: None,
        };
        let line = suite_request_line(&["omnetpp_s", "mcf_r"], &template);
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::Suite {
                benches: vec!["omnetpp_s".into(), "mcf_r".into()],
                template: template.clone(),
            }
        );
        // Empty benches = whole suite; omitted benches parses the same.
        let line = suite_request_line(&[], &template);
        let r = parse_request(&line).unwrap();
        assert_eq!(
            r,
            Request::Suite {
                benches: vec![],
                template: template.clone(),
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"suite","scale":0.002,"maxk":6}"#).unwrap(),
            Request::Suite {
                benches: vec![],
                template,
            }
        );
        for (line, why) in [
            (r#"{"op":"suite","benches":"omnetpp"}"#, "benches not array"),
            (r#"{"op":"suite","benches":[7]}"#, "entry not a string"),
            (r#"{"op":"suite","bench":"x"}"#, "run-only key"),
            (r#"{"op":"suite","scale":0}"#, "bad scale"),
        ] {
            assert!(parse_request(line).is_err(), "{why}: {line}");
        }
    }

    #[test]
    fn suite_stream_lines_are_valid_json() {
        let item = suite_item_line(3, "mcf_r", "{\"benchmark\":\"505.mcf_r\"}");
        let v = json::parse(&item).unwrap();
        assert_eq!(v.get("item").unwrap().as_f64().unwrap(), 3.0);
        assert_eq!(v.get("bench").unwrap().as_str().unwrap(), "mcf_r");
        assert!(v.get("reply").unwrap().get("benchmark").is_some());
        assert!(!is_suite_summary(&item));

        let summary = suite_summary_line(29, 2);
        assert!(is_suite_summary(&summary));
        let v = json::parse(&summary).unwrap();
        assert_eq!(v.get("items").unwrap().as_f64().unwrap(), 29.0);
        assert_eq!(v.get("errors").unwrap().as_f64().unwrap(), 2.0);
        assert!(!is_suite_summary(&pong_reply()));
        assert_eq!(suite_summary_errors(&summary), Some(2));
        assert_eq!(suite_summary_errors(&suite_summary_line(3, 0)), Some(0));
        assert_eq!(suite_summary_errors(&pong_reply()), None);
    }

    #[test]
    fn key_hex_roundtrips() {
        for key in [0u64, 7, u64::MAX, 0x8000_0000_0000_0001] {
            assert_eq!(parse_key_hex(&key_hex(key)).unwrap(), key);
        }
        assert!(parse_key_hex("123").is_err());
        assert!(parse_key_hex("0123456789abcdefg").is_err());
    }

    #[test]
    fn busy_reply_carries_a_deterministic_retry_hint() {
        let line = busy_reply(32);
        assert!(is_error_reply(&line));
        assert_eq!(busy_retry_after(&line), Some(busy_retry_hint_ms(32)));
        assert_eq!(busy_retry_hint_ms(32), 320);
        // Clamped at both ends.
        assert_eq!(busy_retry_hint_ms(1), 25);
        assert_eq!(busy_retry_hint_ms(1000), 500);
        // Non-busy lines never yield a hint.
        assert_eq!(busy_retry_after(&pong_reply()), None);
        assert_eq!(busy_retry_after(&error_reply("internal", "x")), None);
        assert_eq!(busy_retry_after("garbage"), None);
    }

    #[test]
    fn error_replies_are_valid_json() {
        for line in [
            error_reply("bad-request", "uh \"oh\"\nnewline"),
            busy_reply(32),
            pong_reply(),
            shutdown_reply(),
        ] {
            let v = sampsim_util::json::parse(&line).unwrap();
            assert!(v.get("error").is_some() || v.get("ok").is_some());
        }
        assert!(is_error_reply(&busy_reply(1)));
        assert!(!is_error_reply(&pong_reply()));
        assert!(is_error_reply("not json at all"));
    }
}

//! `sampsim-serve` — sampling-as-a-service.
//!
//! The paper's central economics are amortization: pay for the
//! whole-program profiling pass once, then answer many questions from the
//! stored simulation points. This crate turns the deterministic pipeline
//! into a daemon that serves that consumption model: a TCP server speaking
//! line-delimited JSON ([`protocol`]), a bounded worker pool built on
//! `sampsim_exec`, a two-tier content-addressed cache ([`cache`]) that
//! memoizes both the profiling stage and whole response documents, and
//! request coalescing ([`coalesce`]) so N concurrent identical requests
//! trigger exactly one pipeline execution.
//!
//! # Determinism contract
//!
//! A `run` reply is **byte-identical to `sampsim run` stdout** for the
//! same benchmark and configuration — whether computed cold, answered
//! from the memory or disk cache, coalesced onto another request's
//! flight, or produced under a different `--jobs` value. This holds by
//! construction: both the CLI and the server render documents through
//! [`service::run_document`], responses are cached as the exact reply
//! bytes, and the pipeline itself is bit-deterministic (PR 2).
//!
//! # Lifecycle
//!
//! ```text
//! accept → bounded queue (Busy when full) → worker pool
//!        → validate (analyze lints) → response cache → coalesce → pipeline
//! ```
//!
//! Shutdown (`{"op":"shutdown"}`) is graceful: the acceptor stops taking
//! connections, workers drain every already-queued request, and
//! [`Server::serve`] returns the final [`Stats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod coalesce;
pub mod protocol;
pub mod service;

use cache::{Tier, TieredCache};
use coalesce::{Claim, Coalescer};
use protocol::Request;
use sampsim_exec::Jobs;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";
/// Default admission-queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 32;
/// Default in-memory cache capacity in entries.
pub const DEFAULT_MEM_ENTRIES: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// On-disk cache directory (`None` = memory tier only).
    pub cache_dir: Option<PathBuf>,
    /// Worker-pool size.
    pub workers: Jobs,
    /// Admission-queue depth; connections beyond it get a `busy` reply.
    pub queue_depth: usize,
    /// In-memory cache capacity in entries.
    pub mem_entries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            cache_dir: None,
            workers: Jobs::Auto,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            mem_entries: DEFAULT_MEM_ENTRIES,
        }
    }
}

/// A snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Requests handled by workers (every op, including failures).
    pub requests: u64,
    /// Pipeline executions actually started (cache misses that led).
    pub executions: u64,
    /// Run requests that waited on another request's flight.
    pub coalesced: u64,
    /// Run responses answered from the memory tier.
    pub mem_hits: u64,
    /// Run responses answered from the disk tier.
    pub disk_hits: u64,
    /// Run requests that missed the response cache.
    pub misses: u64,
    /// Connections refused with a `busy` reply at admission.
    pub busy_rejects: u64,
    /// Profiling-stage cache hits inside the pipeline.
    pub stage_hits: u64,
}

impl Stats {
    /// Renders the `stats` reply line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":\"stats\",\"requests\":{},\"executions\":{},\"coalesced\":{},\
             \"mem_hits\":{},\"disk_hits\":{},\"misses\":{},\"busy_rejects\":{},\
             \"stage_hits\":{}}}",
            self.requests,
            self.executions,
            self.coalesced,
            self.mem_hits,
            self.disk_hits,
            self.misses,
            self.busy_rejects,
            self.stage_hits
        )
    }
}

/// Monotonic counters shared by the acceptor and workers.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    executions: AtomicU64,
    coalesced: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    busy_rejects: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared across the acceptor and the worker pool.
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    cache: TieredCache,
    coalescer: Coalescer,
    queue_depth: usize,
    addr: SocketAddr,
}

impl Shared {
    fn stats(&self) -> Stats {
        Stats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            executions: self.counters.executions.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            mem_hits: self.counters.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            busy_rejects: self.counters.busy_rejects.load(Ordering::Relaxed),
            stage_hits: self.cache.stage_hits(),
        }
    }

    fn count_tier(&self, tier: Tier) {
        match tier {
            Tier::Memory => Counters::bump(&self.counters.mem_hits),
            Tier::Disk => Counters::bump(&self.counters.disk_hits),
        }
    }
}

/// A bound, not-yet-serving server.
pub struct Server {
    config: ServeConfig,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listen socket (so the port is known before serving).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            config,
            listener,
            addr,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request arrives, then drains the queue
    /// and returns the final counters.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the cache directory cannot be created.
    pub fn serve(self) -> std::io::Result<Stats> {
        let cache = TieredCache::new(self.config.mem_entries, self.config.cache_dir.as_deref())?;
        let shared = Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            cache,
            coalescer: Coalescer::new(),
            queue_depth: self.config.queue_depth.max(1),
            addr: self.addr,
        };
        let worker_ids: Vec<usize> = (0..self.config.workers.get()).collect();
        std::thread::scope(|s| {
            let acceptor = s.spawn(|| accept_loop(&self.listener, &shared));
            // The bounded worker pool: one long-lived task per worker,
            // scheduled by the sampsim_exec pool.
            sampsim_exec::parallel_map(self.config.workers, &worker_ids, |_, _| {
                worker_loop(&shared)
            });
            acceptor.join().expect("acceptor does not panic");
        });
        Ok(shared.stats())
    }

    /// Runs [`Server::serve`] on a background thread — the in-process
    /// variant the integration tests use.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let thread = std::thread::spawn(move || self.serve());
        ServerHandle { addr, thread }
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<Stats>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down and returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the server's I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn wait(self) -> std::io::Result<Stats> {
        self.thread.join().expect("server thread panicked")
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // the shutdown wake-up (or a straggler)
                }
                let mut queue = shared.queue.lock().unwrap();
                if queue.len() >= shared.queue_depth {
                    drop(queue);
                    Counters::bump(&shared.counters.busy_rejects);
                    write_reply(stream, &protocol::busy_reply(shared.queue_depth));
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Pops queued connections until the queue is empty *and* shutdown is
/// flagged — queued work admitted before a shutdown is always served.
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if let Some(stream) = queue.pop_front() {
            return Some(stream);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        queue = shared.available.wait(queue).unwrap();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = next_connection(shared) {
        if handle_connection(stream, shared) {
            initiate_shutdown(shared);
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    {
        // Hold the queue lock while flipping the flag so no worker can
        // check it between a failed pop and its wait (missed-wakeup race).
        let _queue = shared.queue.lock().unwrap();
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.available.notify_all();
    }
    // Wake the acceptor out of accept().
    let _ = TcpStream::connect(shared.addr);
}

/// Serves one connection (one request line, one reply line). Returns
/// whether a shutdown was requested.
fn handle_connection(stream: TcpStream, shared: &Shared) -> bool {
    Counters::bump(&shared.counters.requests);
    let line = match read_request_line(&stream) {
        Ok(line) => line,
        Err(message) => {
            write_reply(stream, &protocol::error_reply("bad-request", &message));
            return false;
        }
    };
    match protocol::parse_request(line.trim_end_matches(['\r', '\n'])) {
        Ok(Request::Run(request)) => {
            let reply = handle_run(&request, shared);
            write_reply(stream, &reply);
            false
        }
        Ok(Request::Ping) => {
            write_reply(stream, &protocol::pong_reply());
            false
        }
        Ok(Request::Stats) => {
            write_reply(stream, &shared.stats().to_json());
            false
        }
        Ok(Request::Shutdown) => {
            write_reply(stream, &protocol::shutdown_reply());
            true
        }
        Err(message) => {
            write_reply(stream, &protocol::error_reply("bad-request", &message));
            false
        }
    }
}

/// Computes (or fetches) the reply line for a run request. Never panics:
/// validation failures become typed error replies and pipeline panics are
/// caught into `internal` replies.
fn handle_run(request: &service::RunRequest, shared: &Shared) -> String {
    let prepared = match service::prepare(request) {
        Ok(p) => p,
        Err(e) => return e.reply(),
    };
    // Fast path: the response cache.
    if let Some(line) = cached_response(shared, prepared.key) {
        return line;
    }
    match shared.coalescer.claim(prepared.key) {
        Claim::Follower(flight) => {
            Counters::bump(&shared.counters.coalesced);
            flight.wait()
        }
        Claim::Leader(guard) => {
            // Double-check: a previous leader may have published between
            // our miss and our claim (it fills the cache before closing
            // its flight, so this read is guaranteed to see it).
            if let Some(line) = cached_response(shared, prepared.key) {
                guard.complete(line.clone());
                return line;
            }
            Counters::bump(&shared.counters.misses);
            Counters::bump(&shared.counters.executions);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Workers provide the concurrency; each pipeline runs
                // serially so `--jobs` workers = `--jobs` concurrent runs.
                service::execute_prepared(&prepared, sampsim_exec::SERIAL, &shared.cache)
            }));
            let line = match outcome {
                Ok(Ok(document)) => {
                    shared.cache.put(prepared.key, document.as_bytes());
                    document
                }
                Ok(Err(e)) => e.reply(),
                Err(_) => protocol::error_reply("internal", "pipeline panicked"),
            };
            guard.complete(line.clone());
            line
        }
    }
}

fn cached_response(shared: &Shared, key: u64) -> Option<String> {
    let (bytes, tier) = shared.cache.get(key)?;
    // The reply line needs owned UTF-8; validate in place on the view and
    // copy once here, at the protocol edge.
    let line = std::str::from_utf8(&bytes).ok()?.to_string();
    shared.count_tier(tier);
    Some(line)
}

/// Reads one request line, bounded by [`protocol::MAX_LINE_BYTES`].
fn read_request_line(stream: &TcpStream) -> Result<String, String> {
    let stream = stream
        .try_clone()
        .map_err(|e| format!("connection error: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("connection error: {e}"))?;
    let mut reader = BufReader::new(stream).take(protocol::MAX_LINE_BYTES);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("unreadable request: {e}"))?;
    if line.len() as u64 >= protocol::MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(format!(
            "request line exceeds {} bytes",
            protocol::MAX_LINE_BYTES
        ));
    }
    Ok(line)
}

fn write_reply(mut stream: TcpStream, line: &str) {
    // The client may already be gone; a failed reply write is its loss.
    let _ = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
}

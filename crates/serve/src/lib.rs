//! `sampsim-serve` — sampling-as-a-service.
//!
//! The paper's central economics are amortization: pay for the
//! whole-program profiling pass once, then answer many questions from the
//! stored simulation points. This crate turns the deterministic pipeline
//! into a daemon that serves that consumption model: a TCP server speaking
//! line-delimited JSON ([`protocol`]), a bounded worker pool built on
//! `sampsim_exec`, a two-tier content-addressed cache ([`cache`]) that
//! memoizes both the profiling stage and whole response documents, and
//! request coalescing ([`coalesce`]) so N concurrent identical requests
//! trigger exactly one pipeline execution.
//!
//! # Determinism contract
//!
//! A `run` reply is **byte-identical to `sampsim run` stdout** for the
//! same benchmark and configuration — whether computed cold, answered
//! from the memory or disk cache, coalesced onto another request's
//! flight, or produced under a different `--jobs` value. This holds by
//! construction: both the CLI and the server render documents through
//! [`service::run_document`], responses are cached as the exact reply
//! bytes, and the pipeline itself is bit-deterministic (PR 2).
//!
//! # Lifecycle
//!
//! ```text
//! accept (readiness poll loop, [`acceptor`]) → complete request line
//!        → bounded queue (Busy when full) → worker pool
//!        → validate (analyze lints) → response cache → coalesce → pipeline
//! ```
//!
//! Connection intake is readiness-driven: a single poll-loop thread owns
//! every connection until its request line is complete, so an idle or
//! slow-writing client never pins a worker thread ([`acceptor`]).
//!
//! Shutdown (`{"op":"shutdown"}`) is graceful: the acceptor stops taking
//! connections, drains the request lines of every already-accepted
//! connection, workers drain the queue, and [`Server::serve`] returns
//! the final [`Stats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceptor;
pub mod cache;
pub mod client;
pub mod coalesce;
pub mod protocol;
pub mod service;

use cache::{Tier, TieredCache};
use coalesce::{Claim, Coalescer};
use protocol::Request;
use sampsim_exec::Jobs;
use sampsim_util::json;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";
/// Default admission-queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 32;
/// Default in-memory cache capacity in entries.
pub const DEFAULT_MEM_ENTRIES: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// On-disk cache directory (`None` = memory tier only).
    pub cache_dir: Option<PathBuf>,
    /// Worker-pool size.
    pub workers: Jobs,
    /// Admission-queue depth; connections beyond it get a `busy` reply.
    pub queue_depth: usize,
    /// In-memory cache capacity in entries.
    pub mem_entries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            cache_dir: None,
            workers: Jobs::Auto,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            mem_entries: DEFAULT_MEM_ENTRIES,
        }
    }
}

/// A snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Requests handled by workers (every op, including failures).
    pub requests: u64,
    /// Pipeline executions actually started (cache misses that led).
    pub executions: u64,
    /// Run requests that waited on another request's flight.
    pub coalesced: u64,
    /// Run responses answered from the memory tier.
    pub mem_hits: u64,
    /// Run responses answered from the disk tier.
    pub disk_hits: u64,
    /// Run requests that missed the response cache.
    pub misses: u64,
    /// Connections refused with a `busy` reply at admission.
    pub busy_rejects: u64,
    /// Profiling-stage cache hits inside the pipeline.
    pub stage_hits: u64,
    /// Cache entries stored via the fleet `peer-put` warming protocol.
    pub peer_warms: u64,
}

impl Stats {
    /// The counter names, in reply order (shared by the renderer, the
    /// parser, and the fleet aggregator).
    pub const FIELDS: [&'static str; 9] = [
        "requests",
        "executions",
        "coalesced",
        "mem_hits",
        "disk_hits",
        "misses",
        "busy_rejects",
        "stage_hits",
        "peer_warms",
    ];

    fn field(&self, name: &str) -> u64 {
        match name {
            "requests" => self.requests,
            "executions" => self.executions,
            "coalesced" => self.coalesced,
            "mem_hits" => self.mem_hits,
            "disk_hits" => self.disk_hits,
            "misses" => self.misses,
            "busy_rejects" => self.busy_rejects,
            "stage_hits" => self.stage_hits,
            "peer_warms" => self.peer_warms,
            other => unreachable!("unknown stats field {other:?}"),
        }
    }

    fn field_mut(&mut self, name: &str) -> &mut u64 {
        match name {
            "requests" => &mut self.requests,
            "executions" => &mut self.executions,
            "coalesced" => &mut self.coalesced,
            "mem_hits" => &mut self.mem_hits,
            "disk_hits" => &mut self.disk_hits,
            "misses" => &mut self.misses,
            "busy_rejects" => &mut self.busy_rejects,
            "stage_hits" => &mut self.stage_hits,
            "peer_warms" => &mut self.peer_warms,
            other => unreachable!("unknown stats field {other:?}"),
        }
    }

    /// Renders the `stats` reply line.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = Self::FIELDS
            .iter()
            .map(|name| format!("\"{name}\":{}", self.field(name)))
            .collect();
        format!("{{\"ok\":\"stats\",{}}}", fields.join(","))
    }

    /// Parses a `stats` reply line back into counters — the inverse of
    /// [`Stats::to_json`], used by the fleet router to aggregate shard
    /// stats. Unknown fields are ignored (forward compatibility); a
    /// missing field reads as zero.
    pub fn from_json(line: &str) -> Option<Stats> {
        let value = json::parse(line).ok()?;
        if value.get("ok")?.as_str()? != "stats" {
            return None;
        }
        let mut stats = Stats::default();
        for name in Self::FIELDS {
            if let Some(v) = value.get(name).and_then(|v| v.as_f64()) {
                if v.is_finite() && v >= 0.0 {
                    *stats.field_mut(name) = v as u64;
                }
            }
        }
        Some(stats)
    }

    /// Adds another snapshot's counters into this one (fleet-wide
    /// aggregation).
    pub fn merge(&mut self, other: &Stats) {
        for name in Self::FIELDS {
            *self.field_mut(name) += other.field(name);
        }
    }
}

/// Monotonic counters shared by the acceptor and workers.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    executions: AtomicU64,
    coalesced: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    busy_rejects: AtomicU64,
    peer_warms: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared across the acceptor and the worker pool. The queue holds
/// complete request lines (the acceptor already read them), so workers
/// never block on client I/O.
struct Shared {
    queue: Mutex<VecDeque<(TcpStream, String)>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Set (under the queue lock) when the acceptor thread has exited;
    /// workers may only stop once no more dispatches can arrive.
    acceptor_done: AtomicBool,
    counters: Counters,
    cache: TieredCache,
    coalescer: Coalescer,
    queue_depth: usize,
}

impl Shared {
    fn stats(&self) -> Stats {
        Stats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            executions: self.counters.executions.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            mem_hits: self.counters.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            busy_rejects: self.counters.busy_rejects.load(Ordering::Relaxed),
            stage_hits: self.cache.stage_hits(),
            peer_warms: self.counters.peer_warms.load(Ordering::Relaxed),
        }
    }

    fn count_tier(&self, tier: Tier) {
        match tier {
            Tier::Memory => Counters::bump(&self.counters.mem_hits),
            Tier::Disk => Counters::bump(&self.counters.disk_hits),
        }
    }
}

impl acceptor::AcceptControl for Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn dispatch(&self, stream: TcpStream, line: String) {
        let mut queue = self.queue.lock().unwrap();
        if queue.len() >= self.queue_depth {
            drop(queue);
            Counters::bump(&self.counters.busy_rejects);
            write_reply_line(stream, &protocol::busy_reply(self.queue_depth));
        } else {
            queue.push_back((stream, line));
            drop(queue);
            self.available.notify_one();
        }
    }
}

/// A bound, not-yet-serving server.
pub struct Server {
    config: ServeConfig,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listen socket (so the port is known before serving).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            config,
            listener,
            addr,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request arrives, then drains the queue
    /// and returns the final counters.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the cache directory cannot be created.
    pub fn serve(self) -> std::io::Result<Stats> {
        let cache = TieredCache::new(self.config.mem_entries, self.config.cache_dir.as_deref())?;
        let shared = Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            acceptor_done: AtomicBool::new(false),
            counters: Counters::default(),
            cache,
            coalescer: Coalescer::new(),
            queue_depth: self.config.queue_depth.max(1),
        };
        let worker_ids: Vec<usize> = (0..self.config.workers.get()).collect();
        std::thread::scope(|s| {
            let acceptor = s.spawn(|| {
                let result = acceptor::accept_loop(&self.listener, &shared);
                // Flip the done flag under the queue lock so no worker
                // can check it between a failed pop and its wait.
                let _queue = shared.queue.lock().unwrap();
                shared.acceptor_done.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                result
            });
            // The bounded worker pool: one long-lived task per worker,
            // scheduled by the sampsim_exec pool.
            sampsim_exec::parallel_map(self.config.workers, &worker_ids, |_, _| {
                worker_loop(&shared)
            });
            acceptor.join().expect("acceptor does not panic")?;
            Ok(shared.stats())
        })
    }

    /// Runs [`Server::serve`] on a background thread — the in-process
    /// variant the integration tests use.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let thread = std::thread::spawn(move || self.serve());
        ServerHandle { addr, thread }
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<Stats>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down and returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the server's I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn wait(self) -> std::io::Result<Stats> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Pops queued requests until the queue is empty *and* the acceptor has
/// exited — dispatched work is always served, and the acceptor itself
/// drains already-accepted connections before exiting, so queued work
/// admitted before a shutdown is never dropped.
fn next_request(shared: &Shared) -> Option<(TcpStream, String)> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if let Some(item) = queue.pop_front() {
            return Some(item);
        }
        if shared.acceptor_done.load(Ordering::SeqCst) {
            return None;
        }
        queue = shared.available.wait(queue).unwrap();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((stream, line)) = next_request(shared) {
        if handle_request(stream, &line, shared) {
            initiate_shutdown(shared);
        }
    }
}

/// Flags shutdown; the acceptor's poll loop observes the flag, drains
/// its pending connections, and exits, which in turn releases the
/// workers once the queue is empty.
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
}

/// Serves one already-read request line (one reply line). Returns
/// whether a shutdown was requested.
fn handle_request(stream: TcpStream, line: &str, shared: &Shared) -> bool {
    Counters::bump(&shared.counters.requests);
    match protocol::parse_request(line) {
        Ok(Request::Run(request)) => {
            let reply = handle_run(&request, shared);
            write_reply_line(stream, &reply);
            false
        }
        Ok(Request::Ping) => {
            write_reply_line(stream, &protocol::pong_reply());
            false
        }
        Ok(Request::Stats) => {
            write_reply_line(stream, &shared.stats().to_json());
            false
        }
        Ok(Request::Shutdown) => {
            write_reply_line(stream, &protocol::shutdown_reply());
            true
        }
        Ok(Request::Suite { .. }) => {
            // Batch fan-out is the fleet router's job; the daemon's
            // one-line reply discipline stays intact.
            write_reply_line(
                stream,
                &protocol::error_reply(
                    "bad-request",
                    "op \"suite\" is served by the fleet router (sampsim fleet)",
                ),
            );
            false
        }
        Ok(Request::PeerPut { key, doc }) => {
            // Fleet warming: store the rendered document under its key
            // so a later rebalance finds the bytes already local.
            shared.cache.put(key, doc.as_bytes());
            Counters::bump(&shared.counters.peer_warms);
            write_reply_line(stream, &protocol::peer_put_reply());
            false
        }
        Err(message) => {
            write_reply_line(stream, &protocol::error_reply("bad-request", &message));
            false
        }
    }
}

/// Computes (or fetches) the reply line for a run request. Never panics:
/// validation failures become typed error replies and pipeline panics are
/// caught into `internal` replies.
fn handle_run(request: &service::RunRequest, shared: &Shared) -> String {
    let prepared = match service::prepare(request) {
        Ok(p) => p,
        Err(e) => return e.reply(),
    };
    // Fast path: the response cache.
    if let Some(line) = cached_response(shared, prepared.key) {
        return line;
    }
    match shared.coalescer.claim(prepared.key) {
        Claim::Follower(flight) => {
            Counters::bump(&shared.counters.coalesced);
            flight.wait()
        }
        Claim::Leader(guard) => {
            // Double-check: a previous leader may have published between
            // our miss and our claim (it fills the cache before closing
            // its flight, so this read is guaranteed to see it).
            if let Some(line) = cached_response(shared, prepared.key) {
                guard.complete(line.clone());
                return line;
            }
            Counters::bump(&shared.counters.misses);
            Counters::bump(&shared.counters.executions);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Workers provide the concurrency; each pipeline runs
                // serially so `--jobs` workers = `--jobs` concurrent runs.
                service::execute_prepared(&prepared, sampsim_exec::SERIAL, &shared.cache)
            }));
            let line = match outcome {
                Ok(Ok(document)) => {
                    shared.cache.put(prepared.key, document.as_bytes());
                    document
                }
                Ok(Err(e)) => e.reply(),
                Err(_) => protocol::error_reply("internal", "pipeline panicked"),
            };
            guard.complete(line.clone());
            line
        }
    }
}

fn cached_response(shared: &Shared, key: u64) -> Option<String> {
    let (bytes, tier) = shared.cache.get(key)?;
    // The reply line needs owned UTF-8; validate in place on the view and
    // copy once here, at the protocol edge.
    let line = std::str::from_utf8(&bytes).ok()?.to_string();
    shared.count_tier(tier);
    Some(line)
}

/// Writes one reply line and flushes; failures are the client's loss.
/// Public because the fleet router replies over the same discipline.
pub fn write_reply_line(mut stream: TcpStream, line: &str) {
    // The client may already be gone; a failed reply write is its loss.
    let _ = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
}

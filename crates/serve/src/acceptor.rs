//! Readiness-driven connection intake, shared by the daemon and the
//! fleet router.
//!
//! The first daemon handed every accepted socket straight to a worker,
//! which then *blocked* reading the request line — an idle client pinned
//! a worker thread for up to the read timeout, so `workers` slow writers
//! could starve the whole pool. This module inverts that: a single
//! poll-loop thread owns every connection until its request line is
//! complete, and only then dispatches `(socket, line)` to the pool.
//! Workers never block on client I/O; idle clients cost one buffer each.
//!
//! std-only readiness: the listener and every pending socket run in
//! non-blocking mode, and the loop sweeps accept + per-connection reads,
//! sleeping one millisecond only when a full sweep made no progress.
//! (No `epoll` without a libc dependency; at daemon scale — tens of
//! sockets — a sweep is microseconds.)
//!
//! Line discipline at the edge: over-long lines, invalid UTF-8, and
//! idle timeouts are answered with a typed `bad-request` reply and the
//! connection is closed; a complete line is handed to
//! [`AcceptControl::dispatch`] with the socket restored to blocking
//! mode. During shutdown the loop stops accepting but keeps polling
//! already-accepted connections (clamped to [`DRAIN_TIMEOUT`]) so
//! admitted clients are drained, not dropped.

use crate::protocol;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// How long an accepted connection may sit without completing a request
/// line before it is answered with a timeout reply and closed.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Once shutdown is observed, pending connections get at most this long
/// to finish their line — a lingering idle client cannot stall exit.
pub const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// The sweep sleep when neither accept nor any read made progress.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// How the poll loop talks to its owner (daemon or router).
pub trait AcceptControl: Sync {
    /// True once no further connections should be accepted. The loop
    /// keeps polling (and dispatching) already-accepted connections,
    /// then returns when none remain.
    fn draining(&self) -> bool;

    /// Handle one complete request line. The stream is back in blocking
    /// mode; the implementor replies (possibly `busy`) and/or enqueues.
    fn dispatch(&self, stream: TcpStream, line: String);
}

/// A connection whose request line has not finished arriving.
struct Pending {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
}

enum Poll {
    /// No complete line yet; keep the connection.
    NotReady,
    /// A full request line arrived.
    Line(String),
    /// Peer vanished (EOF or hard error) — close silently.
    Gone,
    /// Protocol violation — reply `bad-request` with this message, close.
    Reject(String),
}

/// Runs the accept/read poll loop until [`AcceptControl::draining`] is
/// observed *and* every already-accepted connection has been dispatched,
/// rejected, or timed out.
///
/// # Errors
///
/// Returns the I/O error if the listener cannot be switched to
/// non-blocking mode; per-connection errors are handled internally.
pub fn accept_loop<C: AcceptControl>(listener: &TcpListener, ctl: &C) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut pending: Vec<Pending> = Vec::new();
    let mut draining = false;
    loop {
        let mut progress = false;
        if !draining && ctl.draining() {
            draining = true;
            let cap = Instant::now() + DRAIN_TIMEOUT;
            for p in &mut pending {
                p.deadline = p.deadline.min(cap);
            }
        }
        if draining && pending.is_empty() {
            return Ok(());
        }
        if !draining {
            progress |= sweep_accept(listener, &mut pending);
        }
        progress |= sweep_reads(&mut pending, ctl);
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// Accepts every connection the backlog holds right now. Returns whether
/// anything was accepted.
fn sweep_accept(listener: &TcpListener, pending: &mut Vec<Pending>) -> bool {
    let mut progress = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                progress = true;
                // A socket we cannot make non-blocking cannot join the
                // poll set; drop it (the client sees a clean close).
                if stream.set_nonblocking(true).is_ok() {
                    pending.push(Pending {
                        stream,
                        buf: Vec::new(),
                        deadline: Instant::now() + IDLE_TIMEOUT,
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progress,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return progress,
        }
    }
}

/// Polls every pending connection once. Returns whether any byte moved
/// or any connection was retired.
fn sweep_reads<C: AcceptControl>(pending: &mut Vec<Pending>, ctl: &C) -> bool {
    let mut progress = false;
    let mut i = 0;
    while i < pending.len() {
        match poll_one(&mut pending[i]) {
            Poll::NotReady => {
                if Instant::now() >= pending[i].deadline {
                    let p = pending.swap_remove(i);
                    reject(p.stream, "timed out waiting for a request line");
                    progress = true;
                } else {
                    i += 1;
                }
            }
            Poll::Line(line) => {
                let p = pending.swap_remove(i);
                let _ = p.stream.set_nonblocking(false);
                ctl.dispatch(p.stream, line);
                progress = true;
            }
            Poll::Gone => {
                pending.swap_remove(i);
                progress = true;
            }
            Poll::Reject(message) => {
                let p = pending.swap_remove(i);
                reject(p.stream, &message);
                progress = true;
            }
        }
    }
    progress
}

/// Drains whatever bytes the socket holds into the line buffer and
/// classifies the result.
fn poll_one(p: &mut Pending) -> Poll {
    let mut chunk = [0u8; 4096];
    loop {
        match p.stream.read(&mut chunk) {
            // EOF before a newline: the client gave up mid-line.
            Ok(0) => return Poll::Gone,
            Ok(n) => {
                p.buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = p.buf.iter().position(|&b| b == b'\n') {
                    // One request per connection; bytes after the
                    // newline are ignored by protocol.
                    let mut line = p.buf[..pos].to_vec();
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return match String::from_utf8(line) {
                        Ok(s) => Poll::Line(s),
                        Err(_) => Poll::Reject("request is not valid UTF-8".into()),
                    };
                }
                if p.buf.len() as u64 >= protocol::MAX_LINE_BYTES {
                    return Poll::Reject(format!(
                        "request line exceeds {} bytes",
                        protocol::MAX_LINE_BYTES
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Poll::NotReady,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Poll::Gone,
        }
    }
}

/// Best-effort typed refusal: one `bad-request` line, then close.
fn reject(stream: TcpStream, message: &str) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    crate::write_reply_line(stream, &protocol::error_reply("bad-request", message));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Test control: collects dispatched lines, replies "ok" to each.
    struct Collect {
        lines: Mutex<Vec<String>>,
        stop: AtomicBool,
    }

    impl AcceptControl for Collect {
        fn draining(&self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }

        fn dispatch(&self, mut stream: TcpStream, line: String) {
            let stop = line == "stop";
            self.lines.lock().unwrap().push(line);
            let _ = stream.write_all(b"ok\n");
            if stop {
                self.stop.store(true, Ordering::SeqCst);
            }
        }
    }

    fn run_collect() -> (String, std::sync::Arc<Collect>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let ctl = std::sync::Arc::new(Collect {
            lines: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let ctl2 = ctl.clone();
        let handle = std::thread::spawn(move || accept_loop(&listener, &*ctl2).unwrap());
        (addr, ctl, handle)
    }

    fn roundtrip(addr: &str, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload).unwrap();
        let mut reply = String::new();
        BufReader::new(s).read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn slow_writers_do_not_block_fast_ones() {
        let (addr, ctl, handle) = run_collect();
        // A connection that never writes...
        let _idle = TcpStream::connect(&addr).unwrap();
        // ...does not stop a later client from being served, even though
        // it was accepted first.
        assert_eq!(roundtrip(&addr, b"hello\n"), "ok");
        // A line split across writes still assembles.
        let mut split = TcpStream::connect(&addr).unwrap();
        split.write_all(b"wor").unwrap();
        split.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        split.write_all(b"ld\r\n").unwrap();
        let mut reply = String::new();
        BufReader::new(split).read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ok");

        assert_eq!(roundtrip(&addr, b"stop\n"), "ok");
        handle.join().unwrap();
        assert_eq!(
            *ctl.lines.lock().unwrap(),
            vec!["hello".to_string(), "world".to_string(), "stop".to_string()]
        );
    }

    #[test]
    fn protocol_violations_get_typed_refusals() {
        let (addr, ctl, handle) = run_collect();
        let bad_utf8 = roundtrip(&addr, b"\xff\xfe bad bytes\n");
        assert!(bad_utf8.contains("bad-request"), "{bad_utf8}");
        assert!(bad_utf8.contains("UTF-8"), "{bad_utf8}");
        assert_eq!(roundtrip(&addr, b"stop\n"), "ok");
        handle.join().unwrap();
        // The violation never reached dispatch.
        assert_eq!(*ctl.lines.lock().unwrap(), vec!["stop".to_string()]);
    }

    #[test]
    fn drain_serves_connections_accepted_before_shutdown() {
        let (addr, ctl, handle) = run_collect();
        // Accepted but silent until after the stop request lands.
        let mut late = TcpStream::connect(&addr).unwrap();
        assert_eq!(roundtrip(&addr, b"stop\n"), "ok");
        late.write_all(b"straggler\n").unwrap();
        let mut reply = String::new();
        BufReader::new(late).read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ok", "drain must serve, not drop");
        handle.join().unwrap();
        assert!(ctl.lines.lock().unwrap().contains(&"straggler".to_string()));
    }
}

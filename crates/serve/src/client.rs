//! A minimal blocking client for the serve protocol: one connection, one
//! request line, one reply line — plus a bounded-retry wrapper for the
//! two *transient* failure shapes a fleet client meets in practice:
//! connection-level errors (a shard restarting, a router not yet bound)
//! and typed `busy` replies (admission queue full).
//!
//! Retries use exponential backoff with deterministic jitter: the jitter
//! sequence is drawn from a caller-supplied seed, so tests can pin the
//! exact sleep schedule and two clients with different seeds never
//! thundering-herd in lockstep. A `busy` reply's `retry_after_ms` hint
//! takes precedence over the backoff when it is larger.

use crate::protocol;
use sampsim_util::rng::SplitMix64;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Sends one request line to `addr` and returns the reply line (without
/// the trailing newline). No retries — see [`request_line_with_retry`].
///
/// # Errors
///
/// Returns the underlying I/O error on connection failure, or
/// `UnexpectedEof` when the server closes without replying.
pub fn request_line(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    while reply.ends_with('\n') || reply.ends_with('\r') {
        reply.pop();
    }
    if reply.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without replying",
        ));
    }
    Ok(reply)
}

/// Sends one request line and reads a *stream* of reply lines (the
/// `suite` batch op): every line before the last is handed to
/// `on_line`, and the final line — the stream's summary, or the single
/// error reply of a refused request — is returned. The stream ends at
/// a `suite` summary line or at EOF.
///
/// # Errors
///
/// Returns the underlying I/O error, or `UnexpectedEof` when the server
/// closes without sending any reply line.
pub fn request_stream(
    addr: &str,
    line: &str,
    mut on_line: impl FnMut(&str),
) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut last: Option<String> = None;
    loop {
        let mut reply = String::new();
        let n = reader.read_line(&mut reply)?;
        if n == 0 {
            return last.ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection without replying",
                )
            });
        }
        let reply = reply.trim_end_matches(['\r', '\n']).to_string();
        if protocol::is_suite_summary(&reply) {
            if let Some(prev) = last.take() {
                on_line(&prev);
            }
            return Ok(reply);
        }
        if let Some(prev) = last.replace(reply) {
            on_line(&prev);
        }
    }
}

/// Bounded-retry policy for [`request_line_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1); `1` disables retries entirely.
    pub attempts: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// retry.
    pub base_ms: u64,
    /// Cap on any single backoff (pre-jitter), in milliseconds.
    pub max_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

/// The default client policy: 4 attempts, 25 ms → 50 ms → 100 ms
/// backoff (plus jitter), fixed seed.
pub const DEFAULT_RETRY: RetryPolicy = RetryPolicy {
    attempts: 4,
    base_ms: 25,
    max_ms: 2_000,
    seed: 0x5a3b_9e1d_c07f_4421,
};

impl RetryPolicy {
    /// A policy that never retries.
    pub const fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_ms: 0,
            max_ms: 0,
            seed: 0,
        }
    }

    /// The deterministic backoff schedule in milliseconds: one entry per
    /// *retry* (so `attempts - 1` entries), each `min(base · 2ⁱ, max)`
    /// plus a jitter draw in `[0, backoff/2]` from the seeded stream.
    /// Pure — tests pin the exact sleeps a client will perform.
    pub fn backoff_schedule_ms(&self) -> Vec<u64> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.attempts.saturating_sub(1))
            .map(|i| {
                let backoff = self
                    .base_ms
                    .saturating_mul(1u64 << i.min(32))
                    .min(self.max_ms);
                let jitter = if backoff == 0 {
                    0
                } else {
                    rng.next_u64() % (backoff / 2 + 1)
                };
                backoff + jitter
            })
            .collect()
    }
}

/// The outcome of a retried request, for callers that report attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetriedReply {
    /// The final reply line.
    pub reply: String,
    /// Attempts actually made (1 = first try succeeded).
    pub attempts: u32,
}

/// [`request_line`] with bounded retry on *transient* failures: any
/// connection-level I/O error, and `busy` replies (which carry a server
/// `retry_after_ms` hint; the sleep is the larger of the hint and the
/// policy's backoff). Non-busy error replies — `bad-request`,
/// `invalid-config`, `unknown-bench`, `internal`, `degraded` — are
/// definitive answers and are returned immediately, never retried.
///
/// # Errors
///
/// Returns the last I/O error once the attempt budget is exhausted. A
/// `busy` reply that survives every attempt is returned as `Ok` (it is a
/// well-formed reply; callers treat it like any other error reply).
pub fn request_line_with_retry(
    addr: &str,
    line: &str,
    policy: &RetryPolicy,
) -> std::io::Result<RetriedReply> {
    let schedule = policy.backoff_schedule_ms();
    let attempts = policy.attempts.max(1);
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..attempts {
        match request_line(addr, line) {
            Ok(reply) => {
                let hint = protocol::busy_retry_after(&reply);
                let is_last = attempt + 1 == attempts;
                match hint {
                    Some(hint_ms) if !is_last => {
                        let backoff = schedule.get(attempt as usize).copied().unwrap_or(0);
                        std::thread::sleep(Duration::from_millis(backoff.max(hint_ms)));
                    }
                    _ => {
                        return Ok(RetriedReply {
                            reply,
                            attempts: attempt + 1,
                        })
                    }
                }
            }
            Err(e) => {
                let is_last = attempt + 1 == attempts;
                if is_last {
                    return Err(e);
                }
                last_err = Some(e);
                let backoff = schedule.get(attempt as usize).copied().unwrap_or(0);
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
    // attempts >= 1, so the loop always returns; keep the compiler and
    // future refactors honest.
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retry budget exhausted")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn quick_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base_ms: 1,
            max_ms: 4,
            seed: 42,
        }
    }

    /// One-line reply server: answers each accepted connection with the
    /// next scripted line, then exits.
    fn scripted_server(replies: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for reply in replies {
                let (mut stream, _) = listener.accept().unwrap();
                // Read (and discard) the request line first.
                let mut buf = String::new();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                reader.read_line(&mut buf).unwrap();
                stream.write_all(reply.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            attempts: 5,
            base_ms: 25,
            max_ms: 60,
            seed: 7,
        };
        let a = policy.backoff_schedule_ms();
        let b = policy.backoff_schedule_ms();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 4);
        // Entry i is min(25·2^i, 60) plus jitter in [0, backoff/2].
        for (i, &ms) in a.iter().enumerate() {
            let backoff = (25u64 << i).min(60);
            assert!(
                ms >= backoff && ms <= backoff + backoff / 2,
                "entry {i}: {ms}"
            );
        }
        // A different seed jitters differently (overwhelmingly likely).
        let other = RetryPolicy { seed: 8, ..policy };
        assert_ne!(a, other.backoff_schedule_ms());
        assert!(RetryPolicy::none().backoff_schedule_ms().is_empty());
    }

    #[test]
    fn busy_replies_are_retried_until_success() {
        let (addr, server) = scripted_server(vec![
            protocol::busy_reply(4),
            protocol::busy_reply(4),
            protocol::pong_reply(),
        ]);
        let got = request_line_with_retry(&addr, "{\"op\":\"ping\"}", &quick_policy(4)).unwrap();
        assert_eq!(got.reply, protocol::pong_reply());
        assert_eq!(got.attempts, 3);
        server.join().unwrap();
    }

    #[test]
    fn busy_after_exhausted_attempts_is_returned_not_an_error() {
        let (addr, server) =
            scripted_server(vec![protocol::busy_reply(4), protocol::busy_reply(4)]);
        let got = request_line_with_retry(&addr, "{\"op\":\"ping\"}", &quick_policy(2)).unwrap();
        assert!(protocol::is_error_reply(&got.reply));
        assert_eq!(got.attempts, 2);
        server.join().unwrap();
    }

    #[test]
    fn definitive_error_replies_are_never_retried() {
        let (addr, server) = scripted_server(vec![protocol::error_reply("bad-request", "nope")]);
        let got = request_line_with_retry(&addr, "{\"op\":\"ping\"}", &quick_policy(4)).unwrap();
        assert_eq!(got.attempts, 1, "bad-request is definitive");
        assert!(got.reply.contains("bad-request"));
        server.join().unwrap();
    }

    #[test]
    fn connect_failures_retry_then_surface_the_io_error() {
        // Bind then drop: the port is (momentarily) certainly dead.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err =
            request_line_with_retry(&addr, "{\"op\":\"ping\"}", &quick_policy(3)).unwrap_err();
        // Three connect attempts, all refused; the last error surfaces.
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn policy_none_is_a_single_attempt() {
        let (addr, server) = scripted_server(vec![protocol::busy_reply(4)]);
        let got =
            request_line_with_retry(&addr, "{\"op\":\"ping\"}", &RetryPolicy::none()).unwrap();
        assert_eq!(got.attempts, 1);
        assert!(protocol::is_error_reply(&got.reply));
        server.join().unwrap();
    }
}

//! A minimal blocking client for the serve protocol: one connection, one
//! request line, one reply line.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Sends one request line to `addr` and returns the reply line (without
/// the trailing newline).
///
/// # Errors
///
/// Returns the underlying I/O error on connection failure, or
/// `UnexpectedEof` when the server closes without replying.
pub fn request_line(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    while reply.ends_with('\n') || reply.ends_with('\r') {
        reply.pop();
    }
    if reply.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without replying",
        ));
    }
    Ok(reply)
}

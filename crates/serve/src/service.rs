//! The request-independent service layer: benchmark resolution, request
//! validation, and the deterministic run-document computation.
//!
//! `sampsim run` and the daemon both call [`run_document`] (or its two
//! halves, [`prepare`] and [`execute_prepared`]), so a served reply is
//! byte-identical to CLI stdout *by construction* — there is exactly one
//! code path that renders the document.

use crate::protocol;
use sampsim_analyze::Diagnostic;
use sampsim_cache::configs;
use sampsim_core::metrics::{aggregate_weighted, whole_as_aggregate, AggregatedMetrics};
use sampsim_core::pipeline::{PinPointsConfig, Pipeline, PipelineResult, Preflight};
use sampsim_core::runs::{self, WarmupMode};
use sampsim_core::stage_cache::{response_key, StageCache};
use sampsim_core::CoreError;
use sampsim_exec::Jobs;
use sampsim_simpoint::{KmeansMode, SimPointOptions, StrategySpec};
use sampsim_spec2017::{benchmark, BenchmarkId, BenchmarkSpec};
use sampsim_util::scale::Scale;
use sampsim_workload::Program;
use std::fmt;

/// A validated run request: everything that determines the response bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Benchmark name or unique substring.
    pub bench: String,
    /// Workload scale factor (must be finite and positive).
    pub scale: f64,
    /// Slice-size override (`None` = default 10 000, scaled).
    pub slice: Option<u64>,
    /// `MaxK` override (`None` = default 35).
    pub maxk: Option<usize>,
    /// Sampling-strategy spec (`None` = `simpoint`): a registry name or
    /// a parameterized form like `rss:set_size=8,replicates=4`. Validated
    /// during [`prepare`]; a malformed spec yields the typed
    /// `invalid-config` reply with rule `SA130`, and a statistically
    /// unsound one the `SA14x` rule that rejected it.
    pub strategy: Option<String>,
    /// Clustering-kernel override (`None` = `lloyd`): `lloyd` or
    /// `minibatch` (see `sampsim_simpoint::KmeansMode`). An unknown label
    /// is a `bad-request` reply.
    pub kmeans: Option<String>,
}

/// A request that passed validation and is ready to execute.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Resolved canonical benchmark name.
    pub name: String,
    /// The scaled program to sample.
    pub program: Program,
    /// The pipeline configuration (lint-clean).
    pub config: PinPointsConfig,
    /// Content-addressed key identifying the response bytes (see
    /// `sampsim_core::stage_cache::response_key`).
    pub key: u64,
    /// The completed preflight analysis, keyed to `(program, config)`.
    /// [`execute_prepared`] hands it back to the pipeline so validation
    /// runs exactly once per request instead of once in `prepare` and
    /// again inside `Pipeline::run`.
    pub preflight: Preflight,
}

/// Why a request could not be served.
#[derive(Debug)]
pub enum ServiceError {
    /// The benchmark pattern matched zero or several suite entries.
    UnknownBench(String),
    /// A request field failed validation.
    BadRequest(String),
    /// The derived pipeline configuration failed the `sampsim-analyze`
    /// lint pass; carries the structured diagnostics.
    InvalidConfig(Vec<Diagnostic>),
    /// The pipeline itself failed.
    Internal(String),
}

impl ServiceError {
    /// Stable machine-readable error code used in failure replies.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownBench(_) => "unknown-bench",
            ServiceError::BadRequest(_) => "bad-request",
            ServiceError::InvalidConfig(_) => "invalid-config",
            ServiceError::Internal(_) => "internal",
        }
    }

    /// Renders the failure reply line for this error.
    pub fn reply(&self) -> String {
        match self {
            ServiceError::InvalidConfig(diags) => {
                protocol::invalid_config_reply(&self.to_string(), diags)
            }
            other => protocol::error_reply(other.code(), &other.to_string()),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownBench(msg) | ServiceError::BadRequest(msg) => f.write_str(msg),
            ServiceError::InvalidConfig(diags) => {
                let codes: Vec<&str> = diags.iter().map(|d| d.rule.code()).collect();
                write!(f, "configuration failed lint: {}", codes.join(", "))
            }
            ServiceError::Internal(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Config(diags) => ServiceError::InvalidConfig(diags),
            other => ServiceError::Internal(other.to_string()),
        }
    }
}

/// Resolves a benchmark name or unique substring against the suite.
///
/// # Errors
///
/// Returns a human-readable message when nothing matches or the pattern
/// is ambiguous.
pub fn find_benchmark(pattern: &str) -> Result<BenchmarkSpec, String> {
    if let Some(id) = BenchmarkId::from_name(pattern) {
        return Ok(benchmark(id));
    }
    let matches: Vec<BenchmarkId> = BenchmarkId::ALL
        .iter()
        .copied()
        .filter(|id| id.name().contains(pattern))
        .collect();
    match matches.as_slice() {
        [one] => Ok(benchmark(*one)),
        [] => Err(format!(
            "no benchmark matches '{pattern}' (try `sampsim list`)"
        )),
        many => Err(format!(
            "'{pattern}' is ambiguous: {}",
            many.iter()
                .map(|id| id.name())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Validates a request end to end: benchmark resolution, scale check,
/// config construction, and the full `sampsim-analyze` preflight — config
/// lints plus the program-level passes (IR structure, phase graph, memory
/// abstract interpretation against the `allcache` hierarchy). Pure —
/// nothing is executed.
///
/// # Errors
///
/// Returns the typed [`ServiceError`] the failure reply is rendered from.
pub fn prepare(request: &RunRequest) -> Result<Prepared, ServiceError> {
    let (spec, program, config) = build_request(request)?;
    let preflight = Pipeline::new(config.clone()).preflight_checked(&program);
    if preflight.report().has_errors() {
        return Err(ServiceError::InvalidConfig(
            preflight.report().clone().into_diagnostics(),
        ));
    }
    let key = response_key(&program, &config);
    Ok(Prepared {
        name: spec.name().to_string(),
        program,
        config,
        key,
        preflight,
    })
}

/// The shared front half of [`prepare`]: benchmark resolution, field
/// validation, and config construction — everything that determines the
/// content-addressed key, but *not* the preflight analysis.
fn build_request(
    request: &RunRequest,
) -> Result<(BenchmarkSpec, Program, PinPointsConfig), ServiceError> {
    let spec = find_benchmark(&request.bench).map_err(ServiceError::UnknownBench)?;
    if !(request.scale.is_finite() && request.scale > 0.0) {
        return Err(ServiceError::BadRequest(format!(
            "scale must be finite and positive, got {}",
            request.scale
        )));
    }
    let scale = Scale::new(request.scale);
    let program = spec.scaled(scale).build();
    let mut config = PinPointsConfig {
        slice_size: request.slice.unwrap_or_else(|| scale.apply(10_000)),
        profile_cache: Some(configs::allcache_table1()),
        ..PinPointsConfig::default()
    };
    if let Some(maxk) = request.maxk {
        config.simpoint = SimPointOptions {
            max_k: maxk,
            ..config.simpoint
        };
    }
    if let Some(mode) = &request.kmeans {
        let mode = KmeansMode::parse(mode).ok_or_else(|| {
            ServiceError::BadRequest(format!(
                "unknown kmeans mode {mode:?} (one of: lloyd, minibatch)"
            ))
        })?;
        config.simpoint = SimPointOptions {
            kmeans_mode: mode,
            ..config.simpoint
        };
    }
    if let Some(name) = &request.strategy {
        let report = sampsim_analyze::lint_strategy_name(name);
        if report.has_errors() {
            return Err(ServiceError::InvalidConfig(report.into_diagnostics()));
        }
        config.strategy =
            StrategySpec::parse_spec(name).expect("lint-validated strategy specs always parse");
    }
    Ok((spec, program, config))
}

/// Computes the content-addressed routing key for a request *without*
/// running the preflight analysis. For every request [`prepare`] accepts,
/// this returns the same key `prepare` would (both call `response_key`
/// on the same `(program, config)` pair), so a router placing requests
/// by this key agrees with the shard that ultimately serves them.
/// Requests whose failure is only detectable by preflight (e.g. a zero
/// slice size) still get a key here — the router forwards them and the
/// owning shard renders the typed failure reply.
///
/// # Errors
///
/// Returns the same typed [`ServiceError`] as [`prepare`] for failures
/// detectable without preflight (unknown benchmark, bad scale, unknown
/// kmeans mode, malformed strategy spec) — rendering `.reply()` on it
/// yields a byte-identical line to the one a shard would have produced.
pub fn route_key(request: &RunRequest) -> Result<u64, ServiceError> {
    let (_, program, config) = build_request(request)?;
    Ok(response_key(&program, &config))
}

/// Runs the full sampling study for a prepared request and renders the
/// deterministic run document (no trailing newline). The profiling stage
/// is memoized through `cache`; the output is bit-identical for every
/// `jobs` value and cache state.
///
/// # Errors
///
/// Returns [`ServiceError`] on pipeline failure.
pub fn execute_prepared(
    prepared: &Prepared,
    jobs: Jobs,
    cache: &dyn StageCache,
) -> Result<String, ServiceError> {
    let result = Pipeline::new(prepared.config.clone()).run_jobs_cached_preflighted(
        &prepared.program,
        jobs,
        cache,
        &prepared.preflight,
    )?;
    let regions = runs::run_regions_functional_jobs(
        &prepared.program,
        &result.regional,
        configs::allcache_table1(),
        WarmupMode::Checkpointed,
        jobs,
    )?;
    let agg = aggregate_weighted(&regions);
    let whole = whole_as_aggregate(&result.whole_metrics);
    Ok(run_json(&prepared.name, &result, &whole, &agg))
}

/// [`prepare`] + [`execute_prepared`] in one call.
///
/// # Errors
///
/// Returns [`ServiceError`] on validation or pipeline failure.
pub fn run_document(
    request: &RunRequest,
    jobs: Jobs,
    cache: &dyn StageCache,
) -> Result<String, ServiceError> {
    execute_prepared(&prepare(request)?, jobs, cache)
}

/// Renders the `sampsim run` JSON document. Hand-assembled (the build has
/// no serializer dependency); all floats go through `{:?}` so the text is
/// the shortest exact representation of the bit pattern.
pub fn run_json(
    name: &str,
    result: &PipelineResult,
    whole: &AggregatedMetrics,
    regional: &AggregatedMetrics,
) -> String {
    fn json_f(v: f64) -> String {
        if v.is_finite() {
            format!("{v:?}")
        } else {
            "null".to_string()
        }
    }
    fn mix(m: &[f64; 4]) -> String {
        let parts: Vec<String> = m.iter().map(|v| json_f(*v)).collect();
        format!("[{}]", parts.join(","))
    }
    fn agg_obj(a: &AggregatedMetrics) -> String {
        let mut fields = vec![
            format!("\"instructions\":{}", a.total_instructions),
            format!("\"mix_pct\":{}", mix(&a.mix_pct)),
        ];
        if let Some(mr) = a.miss_rates {
            fields.push(format!(
                "\"miss_rates_pct\":{{\"l1i\":{},\"l1d\":{},\"l2\":{},\"l3\":{}}}",
                json_f(mr.l1i),
                json_f(mr.l1d),
                json_f(mr.l2),
                json_f(mr.l3)
            ));
            fields.push(format!("\"l3_accesses\":{}", a.total_l3_accesses));
        }
        if let Some(cpi) = a.cpi {
            fields.push(format!("\"cpi\":{}", json_f(cpi)));
        }
        format!("{{{}}}", fields.join(","))
    }
    let points: Vec<String> = result
        .regional
        .iter()
        .map(|pb| {
            format!(
                "{{\"slice\":{},\"cluster\":{},\"weight\":{}}}",
                pb.slice_index,
                pb.cluster,
                json_f(pb.weight)
            )
        })
        .collect();
    format!(
        "{{\"benchmark\":\"{}\",\"slices\":{},\"k\":{},\"points\":[{}],\"whole\":{},\"regional\":{}}}",
        name,
        result.num_slices,
        result.simpoints.k,
        points.join(","),
        agg_obj(whole),
        agg_obj(regional)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_core::stage_cache::{MemoryStageCache, NoCache};

    fn tiny_request() -> RunRequest {
        RunRequest {
            bench: "omnetpp_s".into(),
            scale: 0.002,
            slice: None,
            maxk: Some(6),
            strategy: None,
            kmeans: None,
        }
    }

    #[test]
    fn find_benchmark_exact_and_substring() {
        assert_eq!(find_benchmark("505.mcf_r").unwrap().name(), "505.mcf_r");
        assert_eq!(find_benchmark("xalanc").unwrap().name(), "623.xalancbmk_s");
        assert!(find_benchmark("nope").is_err());
        // "mcf" matches both mcf_r and mcf_s.
        let err = find_benchmark("mcf").unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
    }

    #[test]
    fn prepare_validates_and_keys() {
        let p = prepare(&tiny_request()).unwrap();
        assert_eq!(p.name, "620.omnetpp_s");
        assert_eq!(p.config.simpoint.max_k, 6);
        // Default slice is scaled: 10_000 * 0.002 = 20.
        assert_eq!(p.config.slice_size, 20);
        // The key is a pure function of the request.
        assert_eq!(prepare(&tiny_request()).unwrap().key, p.key);
        // A different maxk changes the key.
        let other = prepare(&RunRequest {
            maxk: Some(7),
            ..tiny_request()
        })
        .unwrap();
        assert_ne!(other.key, p.key);
    }

    #[test]
    fn prepare_rejects_bad_requests_typed() {
        let unknown = prepare(&RunRequest {
            bench: "nope".into(),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(unknown.code(), "unknown-bench");
        let invalid = prepare(&RunRequest {
            slice: Some(0),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(invalid.code(), "invalid-config");
        let reply = invalid.reply();
        assert!(reply.contains("\"rules\":"), "{reply}");
        assert!(reply.contains("SA020"), "{reply}");
        let maxk = prepare(&RunRequest {
            maxk: Some(0),
            ..tiny_request()
        })
        .unwrap_err();
        assert!(maxk.reply().contains("SA021"), "{}", maxk.reply());
    }

    #[test]
    fn strategy_requests_validate_and_key() {
        // An unregistered name is the typed invalid-config reply with
        // the SA130 rule attached.
        let unknown = prepare(&RunRequest {
            strategy: Some("frobnicate".into()),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(unknown.code(), "invalid-config");
        let reply = unknown.reply();
        assert!(reply.contains("SA130"), "{reply}");
        assert!(reply.contains("\"rules\":"), "{reply}");
        // Every registered name prepares; an explicit "simpoint" shares
        // the default's response key, the others change it.
        let base = prepare(&tiny_request()).unwrap();
        for name in sampsim_simpoint::STRATEGY_NAMES {
            let p = prepare(&RunRequest {
                strategy: Some((*name).into()),
                ..tiny_request()
            })
            .unwrap();
            if *name == "simpoint" {
                assert_eq!(p.key, base.key);
            } else {
                assert_ne!(p.key, base.key, "{name}");
            }
        }
    }

    #[test]
    fn kmeans_mode_requests_validate_and_key() {
        let base = prepare(&tiny_request()).unwrap();
        // Explicit "lloyd" is the default: same response key.
        let lloyd = prepare(&RunRequest {
            kmeans: Some("lloyd".into()),
            ..tiny_request()
        })
        .unwrap();
        assert_eq!(lloyd.key, base.key);
        // "minibatch" switches the kernel and changes the key.
        let mb = prepare(&RunRequest {
            kmeans: Some("minibatch".into()),
            ..tiny_request()
        })
        .unwrap();
        assert_eq!(
            mb.config.simpoint.kmeans_mode,
            sampsim_simpoint::KmeansMode::MiniBatch
        );
        assert_ne!(mb.key, base.key);
        // Unknown labels are a typed bad-request.
        let err = prepare(&RunRequest {
            kmeans: Some("hamerly".into()),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(err.code(), "bad-request");
        assert!(err.to_string().contains("hamerly"), "{err}");
    }

    #[test]
    fn unsound_strategy_specs_reject_typed() {
        // SA144: one rss replicate. The reply is the typed invalid-config
        // shape carrying the rule object, same front door as SA130.
        let unsound = prepare(&RunRequest {
            strategy: Some("rss:set_size=30,replicates=1".into()),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(unsound.code(), "invalid-config");
        let reply = unsound.reply();
        assert!(reply.contains("SA144"), "{reply}");
        assert!(reply.contains("\"rules\":"), "{reply}");
        // SA142: a starved stratified2p pilot.
        let starved = prepare(&RunRequest {
            strategy: Some("stratified2p:pilot=1".into()),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(starved.code(), "invalid-config");
        assert!(starved.reply().contains("SA142"), "{}", starved.reply());
        // The clean twins prepare (and carry a reusable preflight token).
        for spec in ["rss:set_size=30,replicates=2", "stratified2p:pilot=2"] {
            let p = prepare(&RunRequest {
                strategy: Some(spec.into()),
                ..tiny_request()
            })
            .unwrap();
            assert!(!p.preflight.report().has_errors(), "{spec}");
        }
    }

    #[test]
    fn route_key_agrees_with_prepare() {
        // Same key with and without preflight, across config variants.
        let variants = [
            tiny_request(),
            RunRequest {
                maxk: Some(7),
                ..tiny_request()
            },
            RunRequest {
                strategy: Some("rss:set_size=30,replicates=2".into()),
                ..tiny_request()
            },
            RunRequest {
                kmeans: Some("minibatch".into()),
                ..tiny_request()
            },
        ];
        for req in &variants {
            assert_eq!(route_key(req).unwrap(), prepare(req).unwrap().key);
        }
        // Pre-preflight failures surface the same typed error...
        let err = route_key(&RunRequest {
            bench: "nope".into(),
            ..tiny_request()
        })
        .unwrap_err();
        assert_eq!(err.code(), "unknown-bench");
        // ...while preflight-only failures still key (any shard renders
        // the identical typed reply, so placement just needs determinism).
        let keyed = route_key(&RunRequest {
            slice: Some(0),
            ..tiny_request()
        });
        assert!(keyed.is_ok());
        assert_eq!(
            prepare(&RunRequest {
                slice: Some(0),
                ..tiny_request()
            })
            .unwrap_err()
            .code(),
            "invalid-config"
        );
    }

    #[test]
    fn run_document_is_cache_invariant() {
        let req = tiny_request();
        let cold = run_document(&req, sampsim_exec::SERIAL, &NoCache).unwrap();
        let cache = MemoryStageCache::new();
        let miss = run_document(&req, sampsim_exec::SERIAL, &cache).unwrap();
        let hit = run_document(&req, sampsim_exec::SERIAL, &cache).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cold, miss);
        assert_eq!(cold, hit);
        assert!(cold.starts_with("{\"benchmark\":\"620.omnetpp_s\""));
    }
}

//! The two-tier content-addressed result cache.
//!
//! Tier 1 is a bounded in-memory LRU; tier 2 is an optional on-disk store
//! (one file per key under `--cache-dir`). Both tiers are keyed by the
//! stable content hashes from `sampsim_core::stage_cache` — the same store
//! holds profiling-stage entries and rendered response documents, kept
//! apart by their key-domain tags.
//!
//! Disk entries are self-checking: a magic/version header, the key (so a
//! renamed file cannot masquerade as another entry), a length, the
//! payload, and an FNV-1a checksum. Any mismatch — truncation, bit rot,
//! version skew — reads as a miss, never as wrong bytes.
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so concurrent writers and crashed processes can never
//! leave a half-written entry under a final name.

use sampsim_core::stage_cache::StageCache;
use sampsim_util::bytes::SharedBytes;
use sampsim_util::codec::{Decoder, Encoder};
use sampsim_util::hash::fnv64;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic number of on-disk cache entries.
pub const ENTRY_MAGIC: u32 = 0x53_534343; // "SSCC"
/// On-disk entry format version.
pub const ENTRY_VERSION: u16 = 1;
/// Name of the version-stamp file written into every cache directory.
pub const STAMP_FILE: &str = "CACHE_FORMAT";

/// The exact version-stamp contents for this build's entry format.
fn stamp_contents() -> String {
    format!("sampsim-serve-cache/{ENTRY_VERSION}\n")
}

/// Which tier answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Memory,
    /// The on-disk store (the entry is promoted to memory on the way out).
    Disk,
}

/// Bounded in-memory LRU over content-addressed byte entries. Entries are
/// [`SharedBytes`] views, so hits are refcount bumps and promoting a disk
/// entry stores the window over the file read rather than a copy.
struct MemoryLru {
    entries: HashMap<u64, (SharedBytes, u64)>,
    capacity: usize,
    tick: u64,
}

impl MemoryLru {
    fn get(&mut self, key: u64) -> Option<SharedBytes> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(bytes, used)| {
            *used = tick;
            bytes.clone()
        })
    }

    fn put(&mut self, key: u64, bytes: SharedBytes) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry (linear scan: the map is
            // small and lookups dominate).
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (bytes, self.tick));
    }
}

/// The two-tier cache shared by every server worker.
pub struct TieredCache {
    memory: Mutex<MemoryLru>,
    disk: Option<PathBuf>,
    /// Hits observed through the [`StageCache`] trait (pipeline-internal
    /// profiling-stage reuse), for the `stats` reply.
    stage_hits: AtomicU64,
}

/// Process-wide unique suffix source for temp files. Per-*instance*
/// counters are not enough: two caches over the same directory in one
/// process (fleet shards under one `--cache-dir` root, a daemon plus a
/// warm-filling router) would both start at 0 and, with the same pid in
/// the name, collide on the very first write of a shared key — one
/// writer's `fs::write` then interleaves with the other's rename and a
/// torn entry gets renamed under the final name.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl TieredCache {
    /// Creates a cache with an in-memory capacity of `mem_entries` and an
    /// optional on-disk tier rooted at `dir` (created if missing).
    ///
    /// Every cache directory carries a version stamp ([`STAMP_FILE`]). A
    /// directory stamped by an *incompatible* entry format is rejected —
    /// inheriting it would be silently useless at best (every entry reads
    /// as a miss) and is the kind of ambiguity that hides real
    /// corruption. An unstamped directory (fresh, or pre-stamp) is
    /// adopted and stamped.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the cache directory cannot be created
    /// or its version stamp mismatches this build's entry format.
    pub fn new(mem_entries: usize, dir: Option<&Path>) -> std::io::Result<Self> {
        if let Some(dir) = dir {
            fs::create_dir_all(dir)?;
            let stamp = dir.join(STAMP_FILE);
            match fs::read_to_string(&stamp) {
                Ok(found) if found != stamp_contents() => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "cache dir {} is stamped {:?} but this build writes {:?}; \
                             refusing to inherit it (delete the directory or point \
                             --cache-dir elsewhere)",
                            dir.display(),
                            found.trim_end(),
                            stamp_contents().trim_end()
                        ),
                    ));
                }
                Ok(_) => {}
                Err(_) => fs::write(&stamp, stamp_contents())?,
            }
        }
        Ok(Self {
            memory: Mutex::new(MemoryLru {
                entries: HashMap::new(),
                capacity: mem_entries,
                tick: 0,
            }),
            disk: dir.map(Path::to_path_buf),
            stage_hits: AtomicU64::new(0),
        })
    }

    /// Looks up `key`, reporting which tier answered. Disk hits are
    /// promoted into the memory tier; the promoted entry and the returned
    /// view share the single file-read buffer.
    pub fn get(&self, key: u64) -> Option<(SharedBytes, Tier)> {
        if let Some(bytes) = self.memory.lock().unwrap().get(key) {
            return Some((bytes, Tier::Memory));
        }
        let dir = self.disk.as_ref()?;
        let bytes = read_entry(&entry_path(dir, key), key)?;
        self.memory.lock().unwrap().put(key, bytes.clone());
        Some((bytes, Tier::Disk))
    }

    /// Stores `bytes` under `key` in both tiers. Disk failures are
    /// swallowed: the cache is an accelerator, not a dependency.
    pub fn put(&self, key: u64, bytes: &[u8]) {
        self.memory
            .lock()
            .unwrap()
            .put(key, SharedBytes::from(bytes));
        if let Some(dir) = &self.disk {
            let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let _ = write_entry(dir, key, bytes, seq);
        }
    }

    /// Hits observed through the [`StageCache`] trait.
    pub fn stage_hits(&self) -> u64 {
        self.stage_hits.load(Ordering::Relaxed)
    }
}

impl StageCache for TieredCache {
    fn get(&self, key: u64) -> Option<SharedBytes> {
        let found = TieredCache::get(self, key).map(|(bytes, _)| bytes);
        if found.is_some() {
            self.stage_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn put(&self, key: u64, bytes: &[u8]) {
        TieredCache::put(self, key, bytes);
    }
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.bin"))
}

fn write_entry(dir: &Path, key: u64, bytes: &[u8], seq: u64) -> std::io::Result<()> {
    let mut enc = Encoder::with_header(ENTRY_MAGIC, ENTRY_VERSION);
    enc.put_u64(key);
    enc.put_u64(bytes.len() as u64);
    enc.put_bytes(bytes);
    enc.put_u64(fnv64(bytes));
    let tmp = dir.join(format!(".{key:016x}.{}.{seq}.tmp", std::process::id()));
    fs::write(&tmp, enc.into_bytes())?;
    let result = fs::rename(&tmp, entry_path(dir, key));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads and validates a disk entry, returning the payload as a zero-copy
/// window over the single file read (no second payload copy).
fn read_entry(path: &Path, key: u64) -> Option<SharedBytes> {
    let raw = SharedBytes::new(fs::read(path).ok()?);
    let mut dec = Decoder::with_header(&raw, ENTRY_MAGIC, ENTRY_VERSION).ok()?;
    if dec.take_u64().ok()? != key {
        return None;
    }
    let len = dec.take_u64().ok()? as usize;
    if dec.remaining() != len + 8 {
        return None;
    }
    let start = raw.len() - dec.remaining();
    let payload = raw.slice(start..start + len);
    let mut tail = Decoder::new(&raw[start + len..]);
    if tail.take_u64().ok()? != fnv64(&payload) {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lookup helper: copies the view out so tests can compare owned
    /// bytes.
    fn got(cache: &TieredCache, key: u64) -> Option<(Vec<u8>, Tier)> {
        cache.get(key).map(|(b, t)| (b.to_vec(), t))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sampsim-serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        let cache = TieredCache::new(2, None).unwrap();
        assert!(cache.get(1).is_none());
        cache.put(1, b"one");
        cache.put(2, b"two");
        assert_eq!(got(&cache, 1), Some((b"one".to_vec(), Tier::Memory)));
        // Key 2 is now the LRU entry; inserting key 3 evicts it.
        cache.put(3, b"three");
        assert!(cache.get(2).is_none());
        assert_eq!(got(&cache, 1), Some((b"one".to_vec(), Tier::Memory)));
        assert_eq!(got(&cache, 3), Some((b"three".to_vec(), Tier::Memory)));
    }

    #[test]
    fn disk_tier_persists_and_promotes() {
        let dir = temp_dir("persist");
        {
            let cache = TieredCache::new(4, Some(&dir)).unwrap();
            cache.put(42, b"payload");
        }
        // A fresh cache (cold memory) reads the entry back from disk…
        let cache = TieredCache::new(4, Some(&dir)).unwrap();
        assert_eq!(got(&cache, 42), Some((b"payload".to_vec(), Tier::Disk)));
        // …and promotes it to the memory tier.
        assert_eq!(got(&cache, 42), Some((b"payload".to_vec(), Tier::Memory)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let cache = TieredCache::new(0, Some(&dir)).unwrap();
        cache.put(7, b"payload");
        let path = entry_path(&dir, 7);

        // Flip a payload byte: checksum mismatch.
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() - 10;
        raw[mid] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(cache.get(7).is_none());

        // Truncation.
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 1]).unwrap();
        assert!(cache.get(7).is_none());

        // A valid entry renamed to another key misses (key field mismatch).
        cache.put(8, b"other");
        fs::rename(entry_path(&dir, 8), &path).unwrap();
        assert!(cache.get(7).is_none());

        // Garbage header.
        fs::write(&path, b"garbage").unwrap();
        assert!(cache.get(7).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_dir_is_stamped_and_mismatches_are_rejected() {
        let dir = temp_dir("stamp");
        {
            let _cache = TieredCache::new(4, Some(&dir)).unwrap();
            let stamp = fs::read_to_string(dir.join(STAMP_FILE)).unwrap();
            assert_eq!(stamp, stamp_contents());
        }
        // Reopening a correctly stamped directory works.
        assert!(TieredCache::new(4, Some(&dir)).is_ok());
        // A directory stamped by a different entry format is refused —
        // never silently inherited.
        fs::write(dir.join(STAMP_FILE), "sampsim-serve-cache/999\n").unwrap();
        let err = TieredCache::new(4, Some(&dir)).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("refusing to inherit"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The concurrent shard warm-fill shape: several cache instances
    /// share one directory (distinct shards, a router warm-filling a
    /// sibling) and hammer the *same* key with different payloads while
    /// readers race them. Every successful read must be one of the
    /// payloads, intact — never a torn or interleaved entry.
    #[test]
    fn concurrent_same_key_writes_never_tear() {
        let dir = temp_dir("race");
        const KEY: u64 = 99;
        const WRITERS: usize = 4;
        const ROUNDS: usize = 50;
        // Payloads of very different lengths so an interleaved write is
        // structurally detectable, each self-describing.
        let payloads: Vec<Vec<u8>> = (0..WRITERS)
            .map(|w| {
                let mut p = format!("writer-{w}:").into_bytes();
                p.extend(std::iter::repeat_n(b'a' + w as u8, 64 << w));
                p
            })
            .collect();
        std::thread::scope(|s| {
            for payload in &payloads {
                let dir = dir.clone();
                s.spawn(move || {
                    // mem_entries 0: every put is a pure disk write,
                    // every get a fresh disk read.
                    let cache = TieredCache::new(0, Some(&dir)).unwrap();
                    for _ in 0..ROUNDS {
                        cache.put(KEY, payload);
                    }
                });
            }
            let dir = dir.clone();
            let payloads = &payloads;
            s.spawn(move || {
                let cache = TieredCache::new(0, Some(&dir)).unwrap();
                let mut seen = 0;
                for _ in 0..ROUNDS * 4 {
                    if let Some((bytes, _)) = cache.get(KEY) {
                        seen += 1;
                        assert!(
                            payloads.iter().any(|p| p[..] == bytes[..]),
                            "read a torn entry of {} bytes",
                            bytes.len()
                        );
                    }
                }
                // The race window is tiny; most reads must succeed.
                assert!(seen > 0, "reader never saw a valid entry");
            });
        });
        // After the dust settles the entry is one intact payload.
        let cache = TieredCache::new(0, Some(&dir)).unwrap();
        let (bytes, _) = cache.get(KEY).expect("final entry must be readable");
        assert!(payloads.iter().any(|p| p[..] == bytes[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stage_cache_trait_counts_hits() {
        let cache = TieredCache::new(4, None).unwrap();
        assert!(StageCache::get(&cache, 5).is_none());
        StageCache::put(&cache, 5, b"stage");
        assert_eq!(StageCache::get(&cache, 5).as_deref(), Some(&b"stage"[..]));
        assert_eq!(cache.stage_hits(), 1);
    }
}

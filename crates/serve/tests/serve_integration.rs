//! End-to-end tests for the `sampsim-serve` daemon: byte-identity across
//! cold / cached / coalesced paths, drain-on-shutdown, and the counters
//! that prove which path a reply took.
//!
//! Every test binds port 0 (ephemeral) and uses the tiny scaled
//! `620.omnetpp_s` configuration so a pipeline execution costs fractions
//! of a second.

use sampsim_core::stage_cache::NoCache;
use sampsim_exec::Jobs;
use sampsim_serve::service::{self, RunRequest};
use sampsim_serve::{client, protocol, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn tiny_request() -> RunRequest {
    RunRequest {
        bench: "omnetpp_s".into(),
        scale: 0.002,
        slice: None,
        maxk: Some(6),
        strategy: None,
        kmeans: None,
    }
}

fn tiny_request_line() -> String {
    protocol::run_request_line("omnetpp_s", 0.002, None, Some(6), None, None)
}

/// The ground truth: exactly what `sampsim run` prints on stdout.
fn reference_document() -> String {
    service::run_document(&tiny_request(), sampsim_exec::SERIAL, &NoCache).unwrap()
}

fn config(workers: Jobs, cache_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir,
        workers,
        queue_depth: 16,
        ..ServeConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sampsim-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// (a) + (c): N concurrent identical requests all receive bytes identical
/// to `sampsim run` stdout, and the counters prove exactly one pipeline
/// execution — every other client was coalesced onto the leader's flight
/// or answered from the response cache.
#[test]
fn concurrent_identical_requests_coalesce_to_one_execution() {
    const CLIENTS: usize = 4;
    let reference = reference_document();
    let server = Server::bind(config(Jobs::new(CLIENTS).unwrap(), None)).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    let replies: Vec<String> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| s.spawn(|| client::request_line(&addr, &tiny_request_line()).unwrap()))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for reply in &replies {
        assert_eq!(reply, &reference, "served bytes != `sampsim run` stdout");
    }

    assert_eq!(
        client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap(),
        "{\"ok\":\"shutdown\"}"
    );
    let stats = handle.wait().unwrap();
    assert_eq!(stats.executions, 1, "coalescing must yield ONE execution");
    assert_eq!(stats.misses, 1);
    assert_eq!(
        stats.coalesced + stats.mem_hits,
        (CLIENTS - 1) as u64,
        "every non-leader waits on the flight or hits the cache: {stats:?}"
    );
    assert_eq!(stats.disk_hits, 0, "no disk tier was configured");
}

/// (b): cold miss, memory hit, and (after a server restart on the same
/// cache directory) disk hit all return bit-identical bytes, and the
/// stats counters prove which tier answered.
#[test]
fn cold_memory_and_disk_paths_are_bit_identical() {
    let reference = reference_document();
    let dir = temp_dir("tiers");
    let line = tiny_request_line();

    // First server lifetime: a cold miss, then a memory hit.
    let server = Server::bind(config(Jobs::new(2).unwrap(), Some(dir.clone()))).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.spawn();
    let cold = client::request_line(&addr, &line).unwrap();
    let warm = client::request_line(&addr, &line).unwrap();
    client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
    let first = handle.wait().unwrap();
    assert_eq!(cold, reference);
    assert_eq!(warm, reference);
    assert_eq!(first.executions, 1);
    assert_eq!(first.misses, 1);
    assert_eq!(first.mem_hits, 1);
    assert_eq!(first.disk_hits, 0);

    // Second lifetime on the same directory: the memory tier is empty, so
    // the reply must come from disk — and still be the exact same bytes.
    let server = Server::bind(config(Jobs::new(2).unwrap(), Some(dir.clone()))).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.spawn();
    let persisted = client::request_line(&addr, &line).unwrap();
    client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
    let second = handle.wait().unwrap();
    assert_eq!(persisted, reference);
    assert_eq!(
        second.executions, 0,
        "the disk tier must answer: {second:?}"
    );
    assert_eq!(second.disk_hits, 1);
    assert_eq!(second.misses, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// (d): with a single worker, a run request queued *behind* a shutdown
/// request is still served before the server exits — shutdown drains the
/// queue instead of dropping it.
#[test]
fn shutdown_drains_queued_requests() {
    let reference = reference_document();
    let server = Server::bind(config(sampsim_exec::SERIAL, None)).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // Connect three clients in order. The single worker pops the first
    // connection and blocks reading its (not yet written) request line,
    // so the shutdown and the second run request pile up in the queue.
    let mut first = TcpStream::connect(addr).unwrap();
    let mut shut = TcpStream::connect(addr).unwrap();
    let mut queued = TcpStream::connect(addr).unwrap();
    shut.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    queued
        .write_all(format!("{}\n", tiny_request_line()).as_bytes())
        .unwrap();
    first
        .write_all(format!("{}\n", tiny_request_line()).as_bytes())
        .unwrap();

    let read_reply = |stream: TcpStream| {
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        line.trim_end_matches(['\r', '\n']).to_string()
    };
    assert_eq!(read_reply(first), reference);
    assert_eq!(read_reply(shut), "{\"ok\":\"shutdown\"}");
    assert_eq!(
        read_reply(queued),
        reference,
        "the queued request must be served, not dropped"
    );

    let stats = handle.wait().unwrap();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.executions, 1, "second run is a cache hit: {stats:?}");
}

/// Requesting the default strategy by name changes nothing: the document
/// for `"strategy":"simpoint"` is byte-identical to the one for a request
/// that omits the key entirely.
#[test]
fn explicit_simpoint_strategy_is_byte_identical_to_default() {
    let explicit = RunRequest {
        strategy: Some("simpoint".into()),
        ..tiny_request()
    };
    let doc = service::run_document(&explicit, sampsim_exec::SERIAL, &NoCache).unwrap();
    assert_eq!(doc, reference_document());
}

/// Control ops and failure replies over a real socket: ping, stats,
/// malformed JSON, unknown benchmarks, and lint-rejected configurations
/// all produce one typed reply line — never a dropped connection.
#[test]
fn control_and_failure_replies_are_typed() {
    let server = Server::bind(config(Jobs::new(2).unwrap(), None)).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    assert_eq!(
        client::request_line(&addr, "{\"op\":\"ping\"}").unwrap(),
        "{\"ok\":\"pong\"}"
    );
    let stats_line = client::request_line(&addr, "{\"op\":\"stats\"}").unwrap();
    assert!(stats_line.starts_with("{\"ok\":\"stats\""), "{stats_line}");

    let bad = client::request_line(&addr, "this is not json").unwrap();
    assert!(bad.contains("\"code\":\"bad-request\""), "{bad}");

    let unknown = client::request_line(&addr, "{\"op\":\"run\",\"bench\":\"nope\"}").unwrap();
    assert!(unknown.contains("\"code\":\"unknown-bench\""), "{unknown}");

    // slice 0 passes the protocol and is rejected by the full analysis
    // preflight with a structured rule list (SA020), not a panic. Sending
    // maxk 0 in the same request proves the reply carries the *complete*
    // report — one rule object per finding, in `lint --format json` shape
    // — rather than just the first failure.
    let invalid = client::request_line(
        &addr,
        "{\"op\":\"run\",\"bench\":\"omnetpp_s\",\"scale\":0.002,\"slice\":0,\"maxk\":0}",
    )
    .unwrap();
    assert!(invalid.contains("\"code\":\"invalid-config\""), "{invalid}");
    assert!(invalid.contains("\"rules\":["), "{invalid}");
    assert!(invalid.contains("SA020"), "{invalid}");
    assert!(invalid.contains("SA021"), "{invalid}");
    assert!(invalid.contains("\"severity\":\"error\""), "{invalid}");
    assert!(protocol::is_error_reply(&invalid));

    // An unregistered sampling strategy is rejected the same structured
    // way: a typed invalid-config reply carrying the SA130 rule — never a
    // dropped connection or an untyped error.
    let bad_strategy = client::request_line(
        &addr,
        &protocol::run_request_line("omnetpp_s", 0.002, None, Some(6), Some("frobnicate"), None),
    )
    .unwrap();
    assert!(
        bad_strategy.contains("\"code\":\"invalid-config\""),
        "{bad_strategy}"
    );
    assert!(bad_strategy.contains("\"rules\":["), "{bad_strategy}");
    assert!(bad_strategy.contains("SA130"), "{bad_strategy}");
    assert!(bad_strategy.contains("frobnicate"), "{bad_strategy}");
    assert!(protocol::is_error_reply(&bad_strategy));

    client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
    let stats = handle.wait().unwrap();
    assert_eq!(stats.executions, 0, "no valid run was requested: {stats:?}");
}

//! Differential suite for the streaming projection path.
//!
//! `Pipeline::profile_projected_jobs` promises rows bit-identical to the
//! materialized oracle — `profile` followed by
//! `RandomProjection::project_all_normalized` — for every projection
//! seed, benchmark and job count. This pins that promise over real suite
//! benchmarks (the unit test in `pipeline.rs` covers a synthetic
//! program); the streaming path must not perturb a single mantissa bit,
//! because every downstream artifact (clusters, simulation points,
//! reported error) is keyed on exact bytes.

use sampsim_core::pipeline::{PinPointsConfig, Pipeline};
use sampsim_exec::Jobs;
use sampsim_simpoint::{RandomProjection, SimPointOptions};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::scale::Scale;

const SCALE: f64 = 0.002;

fn config(seed: u64) -> PinPointsConfig {
    let scale = Scale::new(SCALE);
    PinPointsConfig {
        slice_size: scale.apply(10_000).max(1),
        simpoint: SimPointOptions {
            seed,
            ..SimPointOptions::default()
        },
        ..PinPointsConfig::default()
    }
}

#[test]
fn streaming_projection_is_bit_identical_across_seeds_benchmarks_and_jobs() {
    let benches = [BenchmarkId::McfR, BenchmarkId::OmnetppS];
    let seeds = [SimPointOptions::default().seed, 0xBEEF_CAFE];
    let job_counts = [sampsim_exec::SERIAL, Jobs::new(2).unwrap(), Jobs::Auto];
    for id in benches {
        let program = benchmark(id).scaled(Scale::new(SCALE)).build();
        for seed in seeds {
            let pipe = Pipeline::new(config(seed));
            // The materialized oracle: full per-slice BBVs, batch
            // projection.
            let (bbvs, starts, metrics) = pipe.profile(&program);
            let o = pipe.config().simpoint;
            let oracle = RandomProjection::new(o.dim, o.seed).project_all_normalized(&bbvs);
            for jobs in job_counts {
                let label = format!("{} seed={seed:#x} jobs={jobs}", program.name());
                let (rows, s2, m2) = pipe.profile_projected_jobs(&program, jobs);
                assert_eq!(rows.len(), oracle.len(), "{label}: row count");
                for (i, (a, b)) in rows.iter().zip(&oracle).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{label}: value {i}");
                }
                assert_eq!(s2, starts, "{label}: cursors");
                assert_eq!(m2.instructions, metrics.instructions, "{label}: insts");
                assert_eq!(m2.mix, metrics.mix, "{label}: ldstmix");
            }
        }
    }
}

//! The PinPoints pipeline: one profiling pass → simulation points →
//! checkpoints.

use crate::error::CoreError;
use crate::metrics::RunMetrics;
use sampsim_analyze::{
    lint_sampling_config, lint_soundness, Report, SamplingConfig, SoundnessInput,
};
use sampsim_cache::{HierarchyConfig, HierarchyStats};
use sampsim_exec::Jobs;
use sampsim_pin::engine;
use sampsim_pin::tools::{BbvTool, CacheSim, LdStMix, MixCounts};
use sampsim_pinball::{RegionalPinball, WarmupRecord, WholePinball};
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::{
    RandomProjection, SimPoint, SimPointOptions, SimPointsResult, StrategyInput, StrategySpec,
};
use sampsim_workload::{Cursor, Executor, Program};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PinPointsConfig {
    /// Slice length in instructions (the paper's sweep settles on 30 M,
    /// 1/3000-scaled to 10 000).
    pub slice_size: u64,
    /// SimPoint analysis options (`MaxK`, projection, BIC threshold…).
    pub simpoint: SimPointOptions,
    /// Warmup length recorded into each regional pinball, in slices.
    /// The paper warms for 500 M cycles before each simulation point —
    /// on the order of 1–1.5 B instructions at its CPIs, i.e. ~48 default
    /// slices at the 1/3000 scale.
    pub warmup_slices: u64,
    /// Cache hierarchy profiled during the whole-run pass (Table I), or
    /// `None` to skip cache simulation in the profiling pass.
    pub profile_cache: Option<HierarchyConfig>,
    /// Region-selection strategy. The default (`simpoint`) reproduces the
    /// paper's method via [`SimPointOptions`]; `stratified2p` and `rss`
    /// carry their own parameters. The profiling pass is strategy-agnostic
    /// — stage-cached BBVs are reused across strategies (only
    /// [`crate::stage_cache::response_key`] covers the strategy).
    pub strategy: StrategySpec,
}

impl Default for PinPointsConfig {
    fn default() -> Self {
        Self {
            slice_size: 10_000,
            simpoint: SimPointOptions::default(),
            warmup_slices: 48,
            profile_cache: None,
            strategy: StrategySpec::SimPoint,
        }
    }
}

impl PinPointsConfig {
    /// Runs the `sampsim-analyze` config lint pass over this
    /// configuration. `expected_slices` (when the target program is known)
    /// enables the run-length proportionality checks (`SA022`, `SA028`).
    pub fn lint(&self, expected_slices: Option<u64>) -> Report {
        lint_sampling_config(&SamplingConfig {
            slice_size: self.slice_size,
            warmup_slices: self.warmup_slices,
            simpoint: &self.simpoint,
            profile_cache: self.profile_cache.as_ref(),
            expected_slices,
        })
    }
}

/// Everything the pipeline produces for one program.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Checkpoint of the complete execution.
    pub whole: WholePinball,
    /// Whole-run metrics collected during the profiling pass (instruction
    /// mix always; cache stats when `profile_cache` was set).
    pub whole_metrics: RunMetrics,
    /// The SimPoint analysis outcome.
    pub simpoints: SimPointsResult,
    /// One checkpoint per simulation point, with weights and warmup
    /// records.
    pub regional: Vec<RegionalPinball>,
    /// Number of slices the execution divided into.
    pub num_slices: u64,
    /// Repeated-subsampling point sets, when the strategy produces them
    /// (`rss` does; single-shot strategies leave this empty). Feed each
    /// set through [`Pipeline::regionals_for`] to turn the spread of
    /// per-replicate estimates into error bars.
    pub replicates: Vec<Vec<SimPoint>>,
}

/// Proof that the full static-analysis preflight ran for one
/// (program, configuration) pair — the analysis-deduplication token
/// shared between serve request validation and the pipeline.
///
/// Only [`Pipeline::preflight_checked`] constructs one; the private `key`
/// binds the report to the exact inputs it was computed from, so a token
/// presented with a different program or configuration is ignored and the
/// preflight re-runs (never-wrong, merely slower).
#[derive(Debug, Clone)]
pub struct Preflight {
    report: Report,
    key: u64,
}

impl Preflight {
    /// The preflight's findings (all severities).
    pub fn report(&self) -> &Report {
        &self.report
    }
}

/// Runs the PinPoints flow over a program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PinPointsConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(config: PinPointsConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PinPointsConfig {
        &self.config
    }

    /// Executes the profiling pass, clustering and checkpoint creation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when the configuration fails its lint
    /// pass (error-severity diagnostics only — warnings do not block the
    /// run), or [`CoreError::SimPoint`] when the program is too short to
    /// produce a single slice.
    pub fn run(&self, program: &Program) -> Result<PipelineResult, CoreError> {
        self.run_jobs(program, sampsim_exec::SERIAL)
    }

    /// [`Pipeline::run`] with the profiling pass sharded over `jobs`
    /// workers. The result is bit-identical to the serial run for every
    /// job count (see `docs/parallelism.md` for the argument and
    /// `tests/parallel_differential.rs` for the proof).
    ///
    /// # Errors
    ///
    /// Exactly as [`Pipeline::run`].
    pub fn run_jobs(&self, program: &Program, jobs: Jobs) -> Result<PipelineResult, CoreError> {
        self.run_jobs_cached(program, jobs, &crate::stage_cache::NoCache)
    }

    /// [`Pipeline::run_jobs`] with the profiling stage memoized through
    /// `cache` (see [`crate::stage_cache`]). On a hit the whole-program
    /// execution is skipped and the stored BBVs, slice cursors and metrics
    /// are reused; undecodable or mismatched entries fall back to a full
    /// recompute, so a corrupt cache can cost time but never correctness.
    /// Every output is bit-identical to the uncached run.
    ///
    /// # Errors
    ///
    /// Exactly as [`Pipeline::run`].
    pub fn run_jobs_cached(
        &self,
        program: &Program,
        jobs: Jobs,
        cache: &dyn crate::stage_cache::StageCache,
    ) -> Result<PipelineResult, CoreError> {
        let preflight = self.preflight_checked(program);
        self.run_jobs_cached_preflighted(program, jobs, cache, &preflight)
    }

    /// [`Pipeline::run_jobs_cached`] reusing an already-computed
    /// [`Preflight`]. This is the analysis-deduplication entry: callers
    /// that already ran the full lint pass to validate a request (the
    /// serve daemon, the CLI `run` path) hand the result back instead of
    /// paying for a second identical pass inside the pipeline. A token
    /// minted for a *different* program or configuration is detected by
    /// its key and the preflight silently re-runs — a stale token can
    /// cost time but never skip validation.
    ///
    /// # Errors
    ///
    /// Exactly as [`Pipeline::run`].
    pub fn run_jobs_cached_preflighted(
        &self,
        program: &Program,
        jobs: Jobs,
        cache: &dyn crate::stage_cache::StageCache,
        preflight: &Preflight,
    ) -> Result<PipelineResult, CoreError> {
        use crate::stage_cache::{profile_stage_key, ProfileStage};

        let fresh;
        let preflight = if preflight.key == self.preflight_key(program) {
            preflight
        } else {
            fresh = self.preflight_checked(program);
            &fresh
        };
        if preflight.report.has_errors() {
            return Err(CoreError::Config(
                preflight.report.clone().into_diagnostics(),
            ));
        }
        let key = profile_stage_key(program, &self.config);
        let cached = cache
            .get(key)
            .filter(|bytes| ProfileStage::peek_matches(bytes, program, &self.config))
            .and_then(|bytes| ProfileStage::from_bytes(&bytes).ok())
            .filter(|stage| stage.matches(program, &self.config));
        let (bbvs, starts, whole_metrics) = match cached {
            Some(stage) => (stage.bbvs, stage.starts, stage.metrics),
            None => {
                let (bbvs, starts, metrics) = self.profile_jobs(program, jobs);
                let stage = ProfileStage {
                    bbvs,
                    starts,
                    metrics,
                };
                cache.put(key, &stage.to_bytes());
                (stage.bbvs, stage.starts, stage.metrics)
            }
        };
        let num_slices = bbvs.len() as u64;

        // -- Region selection through the strategy trait. The `simpoint`
        // strategy runs the exact code `SimPointAnalysis::run_jobs` always
        // ran (k-means restarts fan out over the same workers); the
        // differential suite pins this dispatch bit-identical to the
        // pre-trait path.
        let strategy = self.config.strategy.build(&self.config.simpoint);
        let selection = strategy.select(
            &StrategyInput {
                bbvs: &bbvs,
                slice_size: self.config.slice_size,
            },
            jobs,
        )?;
        let (simpoints, replicates) = selection.into_parts(self.config.slice_size);

        // -- Regional pinballs.
        let regional = self.make_regionals(program, &simpoints, &starts);

        Ok(PipelineResult {
            whole: WholePinball::capture(program),
            whole_metrics,
            simpoints,
            regional,
            num_slices,
            replicates,
        })
    }

    /// The full static-analysis preflight: configuration lints plus the
    /// program-level passes — IR structure, phase-graph shape, and (when a
    /// cache hierarchy is configured) the memory abstract interpretation
    /// against its geometry. [`Pipeline::run`] refuses to execute on
    /// error-severity findings; callers wanting the warnings/notes (CLI
    /// `lint`, the serve daemon) call this directly.
    pub fn preflight(&self, program: &Program) -> sampsim_analyze::Report {
        let expected_slices = (self.config.slice_size > 0)
            .then(|| program.total_insts().div_ceil(self.config.slice_size));
        let mut report = self.config.lint(expected_slices);
        report.merge(sampsim_analyze::lint_program(program));
        report.merge(sampsim_analyze::lint_phase_graph(
            program.name(),
            program.phases().len(),
            program.schedule(),
        ));
        if let Some(hierarchy) = &self.config.profile_cache {
            report.merge(sampsim_analyze::lint_memory(program, hierarchy));
        }
        if let Some(num_slices) = expected_slices {
            report.merge(lint_soundness(&SoundnessInput {
                strategy: &self.config.strategy,
                simpoint: &self.config.simpoint,
                slice_size: self.config.slice_size,
                warmup_slices: self.config.warmup_slices,
                num_slices,
                total_insts: program.total_insts(),
                materialized_budget_bytes: sampsim_analyze::DEFAULT_MATERIALIZED_BUDGET_BYTES,
            }));
        }
        report
    }

    /// Runs [`Pipeline::preflight`] and binds the result to this
    /// (program, configuration) pair. The returned token is what
    /// [`Pipeline::run_jobs_cached_preflighted`] accepts; it cannot be
    /// constructed any other way, so holding one proves the full lint
    /// pass ran.
    pub fn preflight_checked(&self, program: &Program) -> Preflight {
        Preflight {
            report: self.preflight(program),
            key: self.preflight_key(program),
        }
    }

    /// The identity a [`Preflight`] token is bound to: the stage-cache
    /// response key already covers the program digest, slicing, warmup,
    /// SimPoint options and strategy fingerprint — exactly the inputs the
    /// preflight reads.
    fn preflight_key(&self, program: &Program) -> u64 {
        crate::stage_cache::response_key(program, &self.config)
    }

    fn make_regionals(
        &self,
        program: &Program,
        simpoints: &SimPointsResult,
        starts: &[Cursor],
    ) -> Vec<RegionalPinball> {
        let slice = self.config.slice_size;
        simpoints
            .points
            .iter()
            .map(|p| {
                let idx = p.slice as usize;
                let mut pb = RegionalPinball::new(
                    program,
                    p.slice,
                    starts[idx].clone(),
                    slice,
                    p.weight,
                    p.cluster,
                );
                if self.config.warmup_slices > 0 {
                    let chunks = warmup_chunks(
                        idx,
                        p.cluster,
                        &simpoints.assignments,
                        starts,
                        slice,
                        self.config.warmup_slices,
                    );
                    pb = pb.with_warmup(chunks);
                }
                pb
            })
            .collect()
    }

    /// Re-derives regional pinballs for a different analysis result (e.g. a
    /// different `MaxK`) without re-running the profiling pass. `starts`
    /// must come from the same program and slice size.
    pub fn regionals_for(
        &self,
        program: &Program,
        simpoints: &SimPointsResult,
        starts: &[Cursor],
    ) -> Vec<RegionalPinball> {
        self.make_regionals(program, simpoints, starts)
    }

    /// Runs only the profiling pass — a single whole execution collecting
    /// per-slice BBVs, slice-boundary checkpoints, the `ldstmix` profile
    /// and (when `profile_cache` is set) `allcache` statistics. The design
    /// sweeps re-cluster this profile many ways without re-executing.
    pub fn profile(&self, program: &Program) -> (Vec<Bbv>, Vec<Cursor>, RunMetrics) {
        self.profile_jobs(program, sampsim_exec::SERIAL)
    }

    /// [`Pipeline::profile`] sharded over `jobs` workers.
    ///
    /// The slice range is split into one contiguous shard per worker. A
    /// serial prologue fast-forwards an untooled executor to capture each
    /// shard's resume cursor (checkpoint/resume is bit-exact, so a shard
    /// observes exactly the instruction stream the whole-program walk
    /// would have produced); shards then profile their slices
    /// concurrently and the per-shard BBVs, slice cursors and mix counts
    /// are stitched back together in slice order. The cache simulator has
    /// sequentially-dependent state across the whole run, so when
    /// `profile_cache` is set a dedicated task walks the full program
    /// with only the cache tool, overlapped with the BBV shards.
    ///
    /// Every output except `wall_seconds` is bit-identical to the serial
    /// pass for every job count.
    pub fn profile_jobs(
        &self,
        program: &Program,
        jobs: Jobs,
    ) -> (Vec<Bbv>, Vec<Cursor>, RunMetrics) {
        let slice = self.config.slice_size;
        assert!(slice > 0, "slice size must be positive");
        let started = Instant::now();
        let num_slices = program.total_insts().div_ceil(slice);
        // One shard per worker; with the whole-run cache task present,
        // reserve a worker for it. Below two slices (or one worker)
        // sharding cannot help.
        let workers = jobs.get();
        let shard_workers = if self.config.profile_cache.is_some() {
            workers.saturating_sub(1).max(1)
        } else {
            workers
        };
        let num_shards = (shard_workers as u64).min(num_slices).max(1);
        if workers <= 1 || num_shards <= 1 {
            return self.profile_serial(program, started);
        }

        let shards = shard_plan(num_slices, num_shards);
        // Serial prologue: fast-forward (untooled) to each shard start.
        let mut tasks: Vec<ProfileTask> = Vec::with_capacity(shards.len() + 1);
        if self.config.profile_cache.is_some() {
            tasks.push(ProfileTask::Cache);
        }
        let mut exec = Executor::new(program);
        for (i, shard) in shards.iter().enumerate() {
            tasks.push(ProfileTask::Shard {
                start: exec.cursor(),
                slices: shard.count,
            });
            if i + 1 < shards.len() {
                exec.skip(shard.count * slice);
            }
        }

        let outputs = sampsim_exec::parallel_map(jobs, &tasks, |_, task| match task {
            ProfileTask::Cache => {
                let config = self
                    .config
                    .profile_cache
                    .expect("cache task implies config");
                let mut cs = CacheSim::new(config);
                let mut exec = Executor::new(program);
                engine::run_one(&mut exec, u64::MAX, &mut cs);
                ProfileOutput::Cache(cs.stats())
            }
            ProfileTask::Shard { start, slices } => {
                let mut exec = Executor::with_cursor(program, start.clone());
                let mut tools = (BbvTool::new(program.blocks().len()), LdStMix::new());
                let mut bbvs = Vec::with_capacity(*slices as usize);
                let mut starts = Vec::with_capacity(*slices as usize);
                let ran =
                    engine::run_slices(&mut exec, slice, *slices, &mut tools, |t, start, _| {
                        starts.push(start);
                        bbvs.push(Bbv::from_counts(t.0.harvest()));
                    });
                ProfileOutput::Shard {
                    bbvs,
                    starts,
                    mix: *tools.1.counts(),
                    ran,
                }
            }
        });

        // Deterministic reduction: shard outputs are concatenated in
        // slice order (the task list is ordered by shard start).
        let mut bbvs = Vec::with_capacity(num_slices as usize);
        let mut starts = Vec::with_capacity(num_slices as usize);
        let mut mix_total = MixCounts::new();
        let mut instructions = 0u64;
        let mut cache_stats: Option<HierarchyStats> = None;
        for out in outputs {
            match out {
                ProfileOutput::Cache(stats) => cache_stats = Some(stats),
                ProfileOutput::Shard {
                    bbvs: b,
                    starts: s,
                    mix,
                    ran,
                } => {
                    bbvs.extend(b);
                    starts.extend(s);
                    mix_total.merge(&mix);
                    instructions += ran;
                }
            }
        }
        let metrics = RunMetrics {
            instructions,
            mix: mix_total,
            cache: cache_stats,
            timing: None,
            wall_seconds: started.elapsed().as_secs_f64(),
        };
        (bbvs, starts, metrics)
    }

    /// The streaming profile: one profiling pass that projects each
    /// slice's BBV to `simpoint.dim` dimensions *as it is harvested* and
    /// discards the sparse BBV immediately, returning the flat row-major
    /// projected matrix instead of the BBV set. Peak memory is
    /// `O(num_slices * dim + distinct_blocks * dim)` — the full BBV set
    /// (which dominates at large slice counts) is never materialized.
    ///
    /// The rows are **bit-identical** to
    /// `RandomProjection::project_all_normalized(profile())`: each shard
    /// worker owns a [`sampsim_simpoint::StreamingProjector`] (projection
    /// matrix rows are a pure function of `(seed, block)`, so per-shard
    /// row caches cannot diverge), per-BBV accumulation order is
    /// unchanged, and shard outputs concatenate in slice order. The
    /// differential suite pins this across seeds, benchmarks and job
    /// counts.
    pub fn profile_projected(&self, program: &Program) -> (Vec<f64>, Vec<Cursor>, RunMetrics) {
        self.profile_projected_jobs(program, sampsim_exec::SERIAL)
    }

    /// [`Pipeline::profile_projected`] sharded over `jobs` workers; same
    /// sharding scheme as [`Pipeline::profile_jobs`].
    pub fn profile_projected_jobs(
        &self,
        program: &Program,
        jobs: Jobs,
    ) -> (Vec<f64>, Vec<Cursor>, RunMetrics) {
        let slice = self.config.slice_size;
        assert!(slice > 0, "slice size must be positive");
        let started = Instant::now();
        let o = &self.config.simpoint;
        let projection = RandomProjection::new(o.dim, o.seed);
        let num_slices = program.total_insts().div_ceil(slice);
        let workers = jobs.get();
        let shard_workers = if self.config.profile_cache.is_some() {
            workers.saturating_sub(1).max(1)
        } else {
            workers
        };
        let num_shards = (shard_workers as u64).min(num_slices).max(1);
        if workers <= 1 || num_shards <= 1 {
            return self.profile_projected_serial(program, &projection, started);
        }

        let shards = shard_plan(num_slices, num_shards);
        let mut tasks: Vec<ProfileTask> = Vec::with_capacity(shards.len() + 1);
        if self.config.profile_cache.is_some() {
            tasks.push(ProfileTask::Cache);
        }
        let mut exec = Executor::new(program);
        for (i, shard) in shards.iter().enumerate() {
            tasks.push(ProfileTask::Shard {
                start: exec.cursor(),
                slices: shard.count,
            });
            if i + 1 < shards.len() {
                exec.skip(shard.count * slice);
            }
        }

        let outputs = sampsim_exec::parallel_map(jobs, &tasks, |_, task| match task {
            ProfileTask::Cache => {
                let config = self
                    .config
                    .profile_cache
                    .expect("cache task implies config");
                let mut cs = CacheSim::new(config);
                let mut exec = Executor::new(program);
                engine::run_one(&mut exec, u64::MAX, &mut cs);
                ProjectedOutput::Cache(cs.stats())
            }
            ProfileTask::Shard { start, slices } => {
                let mut exec = Executor::with_cursor(program, start.clone());
                let mut tools = (BbvTool::new(program.blocks().len()), LdStMix::new());
                let mut projector = projection.streaming();
                let mut starts = Vec::with_capacity(*slices as usize);
                let ran =
                    engine::run_slices(&mut exec, slice, *slices, &mut tools, |t, start, _| {
                        starts.push(start);
                        // Project-and-drop: the sparse BBV lives only for
                        // this call.
                        projector.push_normalized(&Bbv::from_counts(t.0.harvest()));
                    });
                ProjectedOutput::Shard {
                    rows: projector.into_rows(),
                    starts,
                    mix: *tools.1.counts(),
                    ran,
                }
            }
        });

        let mut rows = Vec::with_capacity(num_slices as usize * o.dim);
        let mut starts = Vec::with_capacity(num_slices as usize);
        let mut mix_total = MixCounts::new();
        let mut instructions = 0u64;
        let mut cache_stats: Option<HierarchyStats> = None;
        for out in outputs {
            match out {
                ProjectedOutput::Cache(stats) => cache_stats = Some(stats),
                ProjectedOutput::Shard {
                    rows: r,
                    starts: s,
                    mix,
                    ran,
                } => {
                    rows.extend_from_slice(&r);
                    starts.extend(s);
                    mix_total.merge(&mix);
                    instructions += ran;
                }
            }
        }
        let metrics = RunMetrics {
            instructions,
            mix: mix_total,
            cache: cache_stats,
            timing: None,
            wall_seconds: started.elapsed().as_secs_f64(),
        };
        (rows, starts, metrics)
    }

    /// Single-threaded streaming profile (the reference semantics of
    /// [`Pipeline::profile_projected_jobs`]).
    fn profile_projected_serial(
        &self,
        program: &Program,
        projection: &RandomProjection,
        started: Instant,
    ) -> (Vec<f64>, Vec<Cursor>, RunMetrics) {
        let slice = self.config.slice_size;
        let mut exec = Executor::new(program);
        let mut tools = (
            BbvTool::new(program.blocks().len()),
            LdStMix::new(),
            self.config.profile_cache.map(CacheSim::new),
        );
        let mut projector = projection.streaming();
        let mut starts = Vec::new();
        engine::run_slices(&mut exec, slice, u64::MAX, &mut tools, |t, start, _| {
            starts.push(start);
            projector.push_normalized(&Bbv::from_counts(t.0.harvest()));
        });
        let metrics = RunMetrics {
            instructions: exec.retired(),
            mix: *tools.1.counts(),
            cache: tools.2.map(|c| c.stats()),
            timing: None,
            wall_seconds: started.elapsed().as_secs_f64(),
        };
        (projector.into_rows(), starts, metrics)
    }

    /// The single-threaded profiling pass (the reference semantics every
    /// sharded run must reproduce bit-for-bit).
    fn profile_serial(
        &self,
        program: &Program,
        started: Instant,
    ) -> (Vec<Bbv>, Vec<Cursor>, RunMetrics) {
        let slice = self.config.slice_size;
        let mut exec = Executor::new(program);
        let mut tools = (
            BbvTool::new(program.blocks().len()),
            LdStMix::new(),
            self.config.profile_cache.map(CacheSim::new),
        );
        let mut bbvs = Vec::new();
        let mut starts = Vec::new();
        engine::run_slices(&mut exec, slice, u64::MAX, &mut tools, |t, start, _| {
            starts.push(start);
            bbvs.push(Bbv::from_counts(t.0.harvest()));
        });
        let metrics = RunMetrics {
            instructions: exec.retired(),
            mix: *tools.1.counts(),
            cache: tools.2.map(|c| c.stats()),
            timing: None,
            wall_seconds: started.elapsed().as_secs_f64(),
        };
        (bbvs, starts, metrics)
    }
}

/// One unit of parallel profiling work.
enum ProfileTask {
    /// Walk the whole program with the cache simulator only (its state is
    /// sequentially dependent and cannot shard).
    Cache,
    /// Profile `slices` slices starting from the checkpoint `start`.
    Shard { start: Cursor, slices: u64 },
}

/// The result of one [`ProfileTask`].
enum ProfileOutput {
    Cache(HierarchyStats),
    Shard {
        bbvs: Vec<Bbv>,
        starts: Vec<Cursor>,
        mix: MixCounts,
        ran: u64,
    },
}

/// The result of one [`ProfileTask`] on the streaming projected path:
/// projected rows instead of retained BBVs.
enum ProjectedOutput {
    Cache(HierarchyStats),
    Shard {
        rows: Vec<f64>,
        starts: Vec<Cursor>,
        mix: MixCounts,
        ran: u64,
    },
}

/// A contiguous range of slices owned by one shard.
struct Shard {
    count: u64,
}

/// Splits `num_slices` into `num_shards` contiguous, non-empty, nearly
/// equal ranges (the first `num_slices % num_shards` shards take one
/// extra slice).
fn shard_plan(num_slices: u64, num_shards: u64) -> Vec<Shard> {
    debug_assert!(num_shards >= 1 && num_shards <= num_slices);
    let base = num_slices / num_shards;
    let extra = num_slices % num_shards;
    (0..num_shards)
        .map(|i| Shard {
            count: base + u64::from(i < extra),
        })
        .collect()
}

/// Selects warmup slices for the region at `idx`: the most recent
/// `warmup_slices` slices *belonging to the region's cluster* (plus the
/// region's immediate predecessors, which are usually the same thing),
/// coalesced into contiguous chunks in chronological order.
///
/// Rationale (DESIGN.md scaling policy): at full scale PinPoints warms with
/// the instructions directly preceding the region; at 1/3000 scale those
/// may belong to a different phase, while the whole run's cache state for
/// this region was accumulated across the *phase's* earlier residencies.
/// Warming with same-cluster slices reproduces the resident footprint
/// without touching the region's own transient (streaming/pointer-chase)
/// addresses.
fn warmup_chunks(
    idx: usize,
    cluster: u32,
    assignments: &[u32],
    starts: &[Cursor],
    slice: u64,
    warmup_slices: u64,
) -> Vec<WarmupRecord> {
    let mut picked: Vec<usize> = Vec::new();
    let mut j = idx;
    while j > 0 && (picked.len() as u64) < warmup_slices {
        j -= 1;
        // Same-cluster predecessors; also accept the region's direct
        // neighbours (they share the microarchitectural context even when
        // assigned to an adjacent cluster).
        // Without an assignment vector (baseline samplers build synthetic
        // point sets), fall back to the plain preceding window.
        let same_cluster = assignments.get(j).is_none_or(|&a| a == cluster);
        if same_cluster || idx - j <= 2 {
            picked.push(j);
        }
    }
    picked.reverse();
    // Coalesce consecutive slice indices into chunks.
    let mut chunks: Vec<WarmupRecord> = Vec::new();
    let mut run_start: Option<(usize, usize)> = None; // (first, last)
    for &s in &picked {
        match run_start {
            Some((first, last)) if s == last + 1 => run_start = Some((first, s)),
            Some((first, last)) => {
                chunks.push(WarmupRecord {
                    start: starts[first].clone(),
                    insts: (last - first + 1) as u64 * slice,
                });
                run_start = Some((s, s));
            }
            None => run_start = Some((s, s)),
        }
    }
    if let Some((first, last)) = run_start {
        chunks.push(WarmupRecord {
            start: starts[first].clone(),
            insts: (last - first + 1) as u64 * slice,
        });
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_cache::configs;
    use sampsim_workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("pipe-test", 21)
            .total_insts(200_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .phase(PhaseSpec::compute_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 8_000,
                jitter: 0.4,
                align: 0,
            })
            .build()
            .build()
    }

    fn config() -> PinPointsConfig {
        PinPointsConfig {
            slice_size: 1_000,
            simpoint: SimPointOptions {
                max_k: 10,
                ..Default::default()
            },
            warmup_slices: 3,
            profile_cache: None,
            strategy: StrategySpec::SimPoint,
        }
    }

    #[test]
    fn pipeline_end_to_end() {
        let p = program();
        let r = Pipeline::new(config()).run(&p).unwrap();
        assert_eq!(r.num_slices, p.total_insts().div_ceil(1_000));
        assert_eq!(r.whole_metrics.instructions, p.total_insts());
        assert_eq!(r.whole.length, p.total_insts());
        assert!(!r.regional.is_empty());
        assert!(r.regional.len() <= 10);
        let w: f64 = r.regional.iter().map(|pb| pb.weight).sum();
        assert!((w - 1.0).abs() < 1e-9);
        // Regional pinballs start at their slice's boundary.
        for pb in &r.regional {
            assert_eq!(pb.start.retired, pb.slice_index * 1_000);
            assert_eq!(pb.length, 1_000);
        }
    }

    #[test]
    fn warmup_chunks_attached_except_at_program_start() {
        let p = program();
        let r = Pipeline::new(config()).run(&p).unwrap();
        for pb in &r.regional {
            if pb.slice_index == 0 {
                assert!(pb.warmup.is_empty(), "slice 0 has no predecessors");
                continue;
            }
            assert!(
                !pb.warmup.is_empty(),
                "slice {} lacks warmup",
                pb.slice_index
            );
            let total = pb.warmup_insts();
            assert!(total > 0 && total <= 3_000);
            // Chunks are chronological, non-overlapping, slice-aligned,
            // and end at or before the region start.
            let mut prev_end = 0;
            for w in &pb.warmup {
                assert!(w.start.retired >= prev_end);
                assert_eq!(w.start.retired % 1_000, 0);
                prev_end = w.start.retired + w.insts;
            }
            assert!(prev_end <= pb.start.retired + 1_000);
            // The final chunk covers the slice immediately before the
            // region (its direct context).
            let last = pb.warmup.last().unwrap();
            assert_eq!(last.start.retired + last.insts, pb.start.retired);
        }
    }

    #[test]
    fn profile_cache_collects_stats() {
        let p = program();
        let mut cfg = config();
        cfg.profile_cache = Some(configs::allcache_table1());
        let r = Pipeline::new(cfg).run(&p).unwrap();
        let cache = r.whole_metrics.cache.unwrap();
        assert_eq!(cache.l1i.accesses, p.total_insts());
        assert!(cache.l1d.accesses > 0);
    }

    #[test]
    fn profile_matches_run_bbv_count() {
        let p = program();
        let pipe = Pipeline::new(config());
        let (bbvs, starts, metrics) = pipe.profile(&p);
        let expected = p.total_insts().div_ceil(1_000) as usize;
        assert_eq!(bbvs.len(), expected);
        assert_eq!(starts.len(), expected);
        assert_eq!(metrics.instructions, p.total_insts());
        // Each full BBV accounts for exactly one slice of instructions.
        for bbv in &bbvs[..bbvs.len() - 1] {
            assert_eq!(bbv.l1_norm(), 1_000.0);
        }
    }

    #[test]
    fn projected_profile_matches_materialized_path_bitwise() {
        let p = program();
        let pipe = Pipeline::new(config());
        let (bbvs, starts, metrics) = pipe.profile(&p);
        let o = pipe.config().simpoint;
        let oracle = RandomProjection::new(o.dim, o.seed).project_all_normalized(&bbvs);
        for jobs in [
            sampsim_exec::SERIAL,
            Jobs::new(2).unwrap(),
            Jobs::new(3).unwrap(),
        ] {
            let (rows, s2, m2) = pipe.profile_projected_jobs(&p, jobs);
            assert_eq!(rows.len(), oracle.len(), "jobs={jobs}");
            for (i, (a, b)) in rows.iter().zip(&oracle).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs} value {i}");
            }
            assert_eq!(s2, starts, "jobs={jobs}");
            assert_eq!(m2.instructions, metrics.instructions, "jobs={jobs}");
            assert_eq!(m2.mix, metrics.mix, "jobs={jobs}");
        }
    }

    #[test]
    fn deterministic_pipeline() {
        let p = program();
        let a = Pipeline::new(config()).run(&p).unwrap();
        let b = Pipeline::new(config()).run(&p).unwrap();
        assert_eq!(a.simpoints, b.simpoints);
        assert_eq!(a.regional, b.regional);
    }

    #[test]
    fn single_slice_program_collapses_to_one_point() {
        // Edge case: slice_size == total_insts, so the whole program is one
        // slice — one cluster, one point of weight 1, no warmup to attach.
        let p = WorkloadSpec::builder("one-slice", 9)
            .total_insts(5_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build();
        let cfg = PinPointsConfig {
            slice_size: 5_000,
            simpoint: SimPointOptions {
                max_k: 10,
                ..Default::default()
            },
            warmup_slices: 3,
            profile_cache: None,
            strategy: StrategySpec::SimPoint,
        };
        let r = Pipeline::new(cfg).run(&p).unwrap();
        assert_eq!(r.num_slices, 1);
        assert_eq!(r.regional.len(), 1);
        let pb = &r.regional[0];
        assert_eq!(pb.slice_index, 0);
        assert_eq!(pb.length, 5_000);
        assert!((pb.weight - 1.0).abs() < 1e-12);
        assert!(pb.warmup.is_empty(), "slice 0 has no predecessors to warm");
        // A checkpointed-warmup replay of the single region must degrade
        // gracefully to a plain replay of the whole program.
        let m = crate::runs::run_region_functional(
            &p,
            pb,
            configs::allcache_table1(),
            crate::runs::WarmupMode::Checkpointed,
        )
        .unwrap();
        assert_eq!(m.instructions, 5_000);
        assert!(m.deterministic_eq(&m));
    }

    #[test]
    fn preflighted_run_reuses_the_token_instead_of_relinting() {
        // A config whose only defect is lint-visible: one rss replicate
        // is an SA144 error, but the pipeline runs fine mechanically
        // (replicates only matter for error bars). A forged clean token
        // with the *correct* key therefore makes the run succeed — proof
        // the preflight was actually skipped, not silently re-run.
        let p = program();
        let mut cfg = config();
        cfg.strategy =
            StrategySpec::parse_spec("rss:set_size=30,replicates=1").expect("valid spec");
        let pipe = Pipeline::new(cfg);
        assert!(matches!(pipe.run(&p), Err(CoreError::Config(_))));
        let forged = Preflight {
            report: Report::new(),
            key: pipe.preflight_key(&p),
        };
        let r = pipe.run_jobs_cached_preflighted(
            &p,
            sampsim_exec::SERIAL,
            &crate::stage_cache::NoCache,
            &forged,
        );
        assert!(r.is_ok(), "{:?}", r.err());
    }

    #[test]
    fn stale_preflight_tokens_fall_back_to_a_fresh_lint() {
        // A token minted for a clean config must not leak past a broken
        // one: the key mismatch forces a fresh preflight, which rejects.
        let p = program();
        let clean = Pipeline::new(config());
        let token = clean.preflight_checked(&p);
        assert!(!token.report().has_errors());
        let mut bad_cfg = config();
        bad_cfg.simpoint.bic_threshold = 1.5;
        let bad = Pipeline::new(bad_cfg);
        let r = bad.run_jobs_cached_preflighted(
            &p,
            sampsim_exec::SERIAL,
            &crate::stage_cache::NoCache,
            &token,
        );
        assert!(matches!(r, Err(CoreError::Config(_))));
    }

    #[test]
    fn preflight_carries_the_soundness_pass() {
        use sampsim_analyze::Rule;
        let p = program(); // 200 slices at slice_size 1000
        let mut cfg = config();
        // rss with a single replicate: SA144 is error-severity, so the
        // run is refused with the typed config error.
        cfg.strategy = StrategySpec::parse_spec("rss:set_size=30,replicates=1").unwrap();
        let pipe = Pipeline::new(cfg);
        let report = pipe.preflight(&p);
        assert!(report.fired(Rule::InsufficientReplicates));
        match pipe.run(&p) {
            Err(CoreError::Config(diags)) => {
                assert!(diags.iter().any(|d| d.rule == Rule::InsufficientReplicates));
            }
            other => panic!("expected a config error, got {other:?}"),
        }
        // The clean twin (replicates = 2) passes preflight and runs.
        let mut cfg = config();
        cfg.strategy = StrategySpec::parse_spec("rss:set_size=30,replicates=2").unwrap();
        let pipe = Pipeline::new(cfg);
        assert!(!pipe.preflight(&p).fired(Rule::InsufficientReplicates));
        assert!(pipe.run(&p).is_ok());
        // Warning-severity soundness findings surface in the report but
        // do not block: MaxK 10 yields 10 < 30 samples (SA140).
        let pipe = Pipeline::new(config());
        let report = pipe.preflight(&p);
        assert!(report.fired(Rule::SampleBelowClt));
        assert!(!report.has_errors());
        assert!(pipe.run(&p).is_ok());
    }

    #[test]
    fn simpoint_in_slice_zero_with_warmup_configured() {
        // Edge case: a simulation point in slice 0 while warmup_slices > 0.
        // There is nothing before slice 0, so the pinball must carry no
        // warmup records and still replay under every warmup mode.
        let p = program();
        let pipe = Pipeline::new(config());
        let (bbvs, starts, _) = pipe.profile(&p);
        let n = bbvs.len();
        assert!(warmup_chunks(0, 0, &vec![0; n], &starts, 1_000, 3).is_empty());
        let simpoints = SimPointsResult {
            k: 1,
            slice_size: 1_000,
            assignments: vec![0; n],
            points: vec![sampsim_simpoint::select::SimPoint {
                slice: 0,
                cluster: 0,
                weight: 1.0,
            }],
            bic_scores: Vec::new(),
            avg_variance: 0.0,
        };
        let regional = pipe.regionals_for(&p, &simpoints, &starts);
        assert_eq!(regional.len(), 1);
        assert_eq!(regional[0].slice_index, 0);
        assert!(regional[0].warmup.is_empty());
        for mode in [
            crate::runs::WarmupMode::None,
            crate::runs::WarmupMode::Checkpointed,
        ] {
            let m = crate::runs::run_region_functional(
                &p,
                &regional[0],
                configs::allcache_table1(),
                mode,
            )
            .unwrap();
            assert_eq!(m.instructions, 1_000, "{mode:?}");
        }
    }
}

//! Executing the paper's run kinds.
//!
//! * **Whole Run** — the complete execution under profiling tools.
//! * **Regional Run** — every simulation point replayed individually with
//!   cold microarchitectural state, statistics combined by weight.
//! * **Reduced Regional Run** — the 90th-percentile subset (derived by
//!   re-weighting cached per-region metrics; regions replay identically).
//! * **Warmup Regional Run** — each region primed by replaying its
//!   checkpointed warmup predecessor with statistics disabled (§IV-D).

use crate::error::CoreError;
use crate::metrics::RunMetrics;
use sampsim_cache::HierarchyConfig;
use sampsim_exec::Jobs;
use sampsim_pin::engine;
use sampsim_pin::tools::{CacheSim, LdStMix};
use sampsim_pinball::RegionalPinball;
use sampsim_uarch::{CoreConfig, Sniper};
use sampsim_workload::{Executor, Program};
use std::time::Instant;

/// Whether regions start cold or primed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmupMode {
    /// Cold caches/predictors at every region start (the paper's default
    /// Regional Run — the source of the LLC miss-rate inflation).
    None,
    /// Replay each pinball's checkpointed warmup region first, with
    /// statistics suppressed (the paper's "Warmup Regional Run": 500 M
    /// cycles of functional warming before each simulation point).
    Checkpointed,
    /// Checkpointed warmup plus `rounds` uncounted replays of the region
    /// itself before measurement — the paper's other prescription ("the
    /// set of Regional Pinballs must be run multiple times, thus
    /// exercising the LLC to remove the cold cache effects", §IV-D). At
    /// the 1/3000 scale a region cannot amortize its compulsory misses the
    /// way a 30 M-instruction slice can, so timing runs use this mode.
    Replayed {
        /// Uncounted replays of the region before the measured one.
        rounds: u32,
    },
}

/// Profiles the complete execution with `ldstmix` + `allcache`.
pub fn run_whole_functional(program: &Program, cache: HierarchyConfig) -> RunMetrics {
    let started = Instant::now();
    let mut exec = Executor::new(program);
    let mut mix = LdStMix::new();
    let mut cs = CacheSim::new(cache);
    engine::run(&mut exec, u64::MAX, &mut [&mut mix, &mut cs]);
    RunMetrics {
        instructions: exec.retired(),
        mix: *mix.counts(),
        cache: Some(cs.stats()),
        timing: None,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Replays one regional pinball with `ldstmix` + `allcache`.
///
/// # Errors
///
/// Returns [`CoreError::Pinball`] if the pinball belongs to a different
/// program.
pub fn run_region_functional(
    program: &Program,
    pinball: &RegionalPinball,
    cache: HierarchyConfig,
    warmup: WarmupMode,
) -> Result<RunMetrics, CoreError> {
    let started = Instant::now();
    let mut cs = CacheSim::new(cache);
    if !matches!(warmup, WarmupMode::None) {
        cs.hierarchy_mut().set_warmup(true);
        for (mut wexec, winsts) in pinball.warmup_executors(program)? {
            engine::run_one(&mut wexec, winsts, &mut cs);
        }
        cs.hierarchy_mut().set_warmup(false);
    }
    let mut exec = pinball.attach(program)?;
    if let WarmupMode::Replayed { rounds } = warmup {
        cs.hierarchy_mut().set_warmup(true);
        for _ in 0..rounds {
            let mut replay = pinball.attach(program)?;
            engine::run_one(&mut replay, pinball.length, &mut cs);
        }
        cs.hierarchy_mut().set_warmup(false);
    }
    let mut mix = LdStMix::new();
    let ran = engine::run(&mut exec, pinball.length, &mut [&mut mix, &mut cs]);
    Ok(RunMetrics {
        instructions: ran,
        mix: *mix.counts(),
        cache: Some(cs.stats()),
        timing: None,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

/// Replays every regional pinball individually (fresh state per region,
/// exactly as the paper executes them) and pairs each result with its
/// weight.
///
/// # Errors
///
/// Returns [`CoreError::Pinball`] on a program mismatch.
pub fn run_regions_functional(
    program: &Program,
    pinballs: &[RegionalPinball],
    cache: HierarchyConfig,
    warmup: WarmupMode,
) -> Result<Vec<(RunMetrics, f64)>, CoreError> {
    run_regions_functional_jobs(program, pinballs, cache, warmup, sampsim_exec::SERIAL)
}

/// [`run_regions_functional`] fanned out over `jobs` workers.
///
/// Regions are mutually independent — each replay builds a private cache
/// hierarchy from its own pinball — so this is bit-identical to the
/// serial loop for every job count: results come back in pinball order,
/// and on failure the lowest-indexed error is returned, exactly as the
/// serial loop would have surfaced it.
///
/// # Errors
///
/// Returns [`CoreError::Pinball`] on a program mismatch.
pub fn run_regions_functional_jobs(
    program: &Program,
    pinballs: &[RegionalPinball],
    cache: HierarchyConfig,
    warmup: WarmupMode,
    jobs: Jobs,
) -> Result<Vec<(RunMetrics, f64)>, CoreError> {
    sampsim_exec::try_parallel_map(jobs, pinballs, |_, pb| {
        Ok((
            run_region_functional(program, pb, cache, warmup)?,
            pb.weight,
        ))
    })
}

/// Runs the complete execution through the timing model.
pub fn run_whole_timing(
    program: &Program,
    core: CoreConfig,
    hierarchy: HierarchyConfig,
) -> RunMetrics {
    let started = Instant::now();
    let mut exec = Executor::new(program);
    let mut mix = LdStMix::new();
    let mut sim = Sniper::new(core, hierarchy);
    engine::run(&mut exec, u64::MAX, &mut [&mut mix, &mut sim]);
    RunMetrics {
        instructions: exec.retired(),
        mix: *mix.counts(),
        cache: Some(sim.cache_stats()),
        timing: Some(sim.stats()),
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Replays one regional pinball inside the timing model.
///
/// # Errors
///
/// Returns [`CoreError::Pinball`] on a program mismatch.
pub fn run_region_timing(
    program: &Program,
    pinball: &RegionalPinball,
    core: CoreConfig,
    hierarchy: HierarchyConfig,
    warmup: WarmupMode,
) -> Result<RunMetrics, CoreError> {
    let started = Instant::now();
    let mut sim = Sniper::new(core, hierarchy);
    if !matches!(warmup, WarmupMode::None) {
        sim.set_warming(true);
        for (mut wexec, winsts) in pinball.warmup_executors(program)? {
            engine::run_one(&mut wexec, winsts, &mut sim);
        }
        sim.set_warming(false);
    }
    let mut exec = pinball.attach(program)?;
    if let WarmupMode::Replayed { rounds } = warmup {
        sim.set_warming(true);
        for _ in 0..rounds {
            let mut replay = pinball.attach(program)?;
            engine::run_one(&mut replay, pinball.length, &mut sim);
        }
        sim.set_warming(false);
    }
    let mut mix = LdStMix::new();
    let ran = engine::run(&mut exec, pinball.length, &mut [&mut mix, &mut sim]);
    Ok(RunMetrics {
        instructions: ran,
        mix: *mix.counts(),
        cache: Some(sim.cache_stats()),
        timing: Some(sim.stats()),
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

/// Replays every regional pinball inside the timing model.
///
/// # Errors
///
/// Returns [`CoreError::Pinball`] on a program mismatch.
pub fn run_regions_timing(
    program: &Program,
    pinballs: &[RegionalPinball],
    core: CoreConfig,
    hierarchy: HierarchyConfig,
    warmup: WarmupMode,
) -> Result<Vec<(RunMetrics, f64)>, CoreError> {
    run_regions_timing_jobs(
        program,
        pinballs,
        core,
        hierarchy,
        warmup,
        sampsim_exec::SERIAL,
    )
}

/// [`run_regions_timing`] fanned out over `jobs` workers; see
/// [`run_regions_functional_jobs`] for the determinism argument.
///
/// # Errors
///
/// Returns [`CoreError::Pinball`] on a program mismatch.
pub fn run_regions_timing_jobs(
    program: &Program,
    pinballs: &[RegionalPinball],
    core: CoreConfig,
    hierarchy: HierarchyConfig,
    warmup: WarmupMode,
    jobs: Jobs,
) -> Result<Vec<(RunMetrics, f64)>, CoreError> {
    sampsim_exec::try_parallel_map(jobs, pinballs, |_, pb| {
        Ok((
            run_region_timing(program, pb, core, hierarchy, warmup)?,
            pb.weight,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::aggregate_weighted;
    use crate::pipeline::{PinPointsConfig, Pipeline};
    use sampsim_cache::configs;
    use sampsim_simpoint::SimPointOptions;
    use sampsim_workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("runs-test", 33)
            .total_insts(150_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 6_000,
                jitter: 0.3,
                align: 0,
            })
            .build()
            .build()
    }

    fn pipeline_result(p: &Program) -> crate::pipeline::PipelineResult {
        Pipeline::new(PinPointsConfig {
            slice_size: 1_000,
            simpoint: SimPointOptions {
                max_k: 8,
                ..Default::default()
            },
            warmup_slices: 4,
            profile_cache: None,
            ..Default::default()
        })
        .run(p)
        .unwrap()
    }

    #[test]
    fn regional_mix_close_to_whole() {
        let p = program();
        let r = pipeline_result(&p);
        let whole = run_whole_functional(&p, configs::allcache_table1());
        let regions = run_regions_functional(
            &p,
            &r.regional,
            configs::allcache_table1(),
            WarmupMode::None,
        )
        .unwrap();
        let agg = aggregate_weighted(&regions);
        let whole_agg = crate::metrics::whole_as_aggregate(&whole);
        for (a, b) in agg.mix_pct.iter().zip(&whole_agg.mix_pct) {
            assert!((a - b).abs() < 3.0, "mix {a} vs {b}");
        }
        // Sampling reduces executed instructions dramatically.
        assert!(agg.total_instructions < whole.instructions / 10);
    }

    #[test]
    fn warmup_reduces_l3_miss_rate_error() {
        let p = program();
        let r = pipeline_result(&p);
        let whole = run_whole_functional(&p, configs::allcache_table1());
        let whole_l3 = whole.cache.as_ref().unwrap().l3.miss_rate_pct();
        let cold = run_regions_functional(
            &p,
            &r.regional,
            configs::allcache_table1(),
            WarmupMode::None,
        )
        .unwrap();
        let warm = run_regions_functional(
            &p,
            &r.regional,
            configs::allcache_table1(),
            WarmupMode::Checkpointed,
        )
        .unwrap();
        let cold_l3 = aggregate_weighted(&cold).miss_rates.unwrap().l3;
        let warm_l3 = aggregate_weighted(&warm).miss_rates.unwrap().l3;
        let cold_err = (cold_l3 - whole_l3).abs();
        let warm_err = (warm_l3 - whole_l3).abs();
        assert!(
            warm_err <= cold_err + 1e-9,
            "warmup should not increase L3 error (cold {cold_err:.3}, warm {warm_err:.3})"
        );
        assert!(
            cold_l3 >= whole_l3,
            "cold regions should over-report the L3 miss rate (cold {cold_l3:.3}, whole {whole_l3:.3})"
        );
    }

    #[test]
    fn timing_regions_aggregate_to_plausible_cpi() {
        // A DRAM-light program: at the tiny test scale, heavily
        // memory-bound phases make CPI hypersensitive to which slice
        // represents a cluster, which is not what this test checks.
        let p = WorkloadSpec::builder("runs-cpi-test", 34)
            .total_insts(400_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::compute_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 20_000,
                jitter: 0.3,
                align: 2_000,
            })
            .build()
            .build();
        // Working sets do not shrink with the test scale, so regions need a
        // long warmup (the paper warms for 500 M cycles at full size).
        let r = Pipeline::new(PinPointsConfig {
            slice_size: 2_000,
            simpoint: SimPointOptions {
                max_k: 8,
                ..Default::default()
            },
            warmup_slices: 25,
            profile_cache: None,
            ..Default::default()
        })
        .run(&p)
        .unwrap();
        let whole = run_whole_timing(&p, CoreConfig::table3(), configs::i7_table3());
        let regions = run_regions_timing(
            &p,
            &r.regional,
            CoreConfig::table3(),
            configs::i7_table3(),
            WarmupMode::Checkpointed,
        )
        .unwrap();
        let agg = aggregate_weighted(&regions);
        let whole_cpi = whole.timing.unwrap().cpi();
        let sampled_cpi = agg.cpi.unwrap();
        let err = (sampled_cpi - whole_cpi).abs() / whole_cpi;
        assert!(
            err < 0.35,
            "sampled CPI {sampled_cpi:.3} too far from whole CPI {whole_cpi:.3}"
        );
        // And warmup must beat cold regions.
        let cold = aggregate_weighted(
            &run_regions_timing(
                &p,
                &r.regional,
                CoreConfig::table3(),
                configs::i7_table3(),
                WarmupMode::None,
            )
            .unwrap(),
        );
        let cold_err = (cold.cpi.unwrap() - whole_cpi).abs() / whole_cpi;
        assert!(
            err <= cold_err + 0.05,
            "warmup should not be much worse than cold (warm {err:.3}, cold {cold_err:.3})"
        );
    }

    #[test]
    fn region_length_respected() {
        let p = program();
        let r = pipeline_result(&p);
        let m = run_region_functional(
            &p,
            &r.regional[0],
            configs::allcache_table1(),
            WarmupMode::None,
        )
        .unwrap();
        assert_eq!(m.instructions, 1_000);
    }

    #[test]
    fn foreign_pinball_rejected() {
        let p = program();
        let other = WorkloadSpec::builder("other", 99)
            .total_insts(10_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build();
        let r = pipeline_result(&p);
        let err = run_region_functional(
            &other,
            &r.regional[0],
            configs::allcache_table1(),
            WarmupMode::None,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Pinball(_)));
    }
}

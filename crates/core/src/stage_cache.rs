//! Content-addressed memoization hooks for the PinPoints pipeline.
//!
//! The paper's whole argument is amortization: run the expensive
//! whole-program profiling pass once, then answer many questions from the
//! stored simulation points. This module gives the pipeline a pluggable
//! [`StageCache`] so callers (notably `sampsim-serve`) can persist the
//! profiling stage between runs and across processes.
//!
//! # Keys
//!
//! Every key is an FNV-1a hash over a domain tag plus the complete set of
//! inputs that determine the stage's output:
//!
//! * [`profile_stage_key`] — `(program content digest, name, length,
//!   slice_size, profile-cache geometry)`. SimPoint options are *excluded*:
//!   re-clustering the same profile with a different `MaxK` reuses the
//!   cached profiling pass, which is exactly the sweep the paper performs.
//! * [`response_key`] — the profile inputs plus `warmup_slices`, the full
//!   SimPoint option fingerprint and the sampling-strategy fingerprint;
//!   two requests share a response key iff the deterministic pipeline
//!   output is bit-identical. Strategies deliberately do *not* enter the
//!   profile key: switching strategies reuses the cached profiling pass.
//!
//! The program's [`digest`](sampsim_workload::Program::digest) is a
//! content hash over the generated artifact (blocks, schedule, streams),
//! so it stands in for "benchmark artifact bytes" and is scale-sensitive.
//!
//! # Safety against corrupt entries
//!
//! Cached bytes are versioned ([`PROFILE_MAGIC`]/[`PROFILE_VERSION`]) and
//! revalidated on decode; any mismatch is treated as a miss and the stage
//! is recomputed — a poisoned cache can cost time, never correctness.

use crate::metrics::RunMetrics;
use crate::pipeline::PinPointsConfig;
use sampsim_cache::HierarchyConfig;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::SimPointOptions;
use sampsim_util::bytes::SharedBytes;
use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use sampsim_util::hash::Fnv64;
use sampsim_workload::{Cursor, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic number identifying an encoded [`ProfileStage`].
pub const PROFILE_MAGIC: u32 = 0x5053_7467; // "PStg"
/// Format version for [`ProfileStage`] encodings.
pub const PROFILE_VERSION: u16 = 1;

/// A pluggable byte store memoizing pipeline stages.
///
/// Implementations must be safe to share across worker threads. `get` and
/// `put` are best-effort: a cache may drop entries at any time, and the
/// pipeline treats undecodable bytes as a miss.
///
/// Lookups return [`SharedBytes`] views rather than owned vectors:
/// in-memory tiers serve hits as refcount bumps and disk tiers serve the
/// payload as a window over the single file read, so repeated hits on a
/// multi-megabyte profile stage never recopy it.
pub trait StageCache: Sync {
    /// Looks up the bytes stored under `key` as a zero-copy view.
    fn get(&self, key: u64) -> Option<SharedBytes>;
    /// Stores `bytes` under `key` (the one copy, at insert).
    fn put(&self, key: u64, bytes: &[u8]);
}

/// The null cache: every lookup misses, every store is dropped.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCache;

impl StageCache for NoCache {
    fn get(&self, _key: u64) -> Option<SharedBytes> {
        None
    }
    fn put(&self, _key: u64, _bytes: &[u8]) {}
}

/// A simple unbounded in-memory stage cache with a hit counter — the
/// reference implementation used by tests and single-process sweeps.
#[derive(Debug, Default)]
pub struct MemoryStageCache {
    entries: Mutex<HashMap<u64, SharedBytes>>,
    hits: AtomicU64,
}

impl MemoryStageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of successful lookups so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl StageCache for MemoryStageCache {
    fn get(&self, key: u64) -> Option<SharedBytes> {
        // A hit clones the view (a refcount bump), never the bytes.
        let found = self.entries.lock().unwrap().get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn put(&self, key: u64, bytes: &[u8]) {
        self.entries
            .lock()
            .unwrap()
            .insert(key, SharedBytes::from(bytes));
    }
}

/// Stable fingerprint of a cache hierarchy's full geometry (every field
/// that changes simulated counters).
pub fn hierarchy_fingerprint(config: &HierarchyConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("sampsim/fp/hierarchy/v1");
    for level in [&config.l1i, &config.l1d, &config.l2, &config.l3] {
        h.write_u64(level.size_bytes);
        h.write_u64(u64::from(level.ways));
        h.write_u64(level.line_bytes);
        h.write_u64(u64::from(level.latency));
        h.write_str(level.policy.label());
    }
    for tlb in [&config.itlb, &config.dtlb] {
        h.write_u64(u64::from(tlb.entries));
        h.write_u64(tlb.page_bytes);
    }
    h.write_u64(u64::from(config.mem_latency));
    h.write_u64(u64::from(config.next_line_prefetch));
    h.finish()
}

/// Stable fingerprint of the SimPoint analysis options.
pub fn simpoint_fingerprint(options: &SimPointOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("sampsim/fp/simpoint/v2");
    h.write_u64(options.max_k as u64);
    h.write_u64(options.dim as u64);
    h.write_u64(u64::from(options.n_init));
    h.write_u64(u64::from(options.max_iter));
    h.write_f64(options.bic_threshold);
    h.write_u64(options.seed);
    h.write_u64(options.sample_size as u64);
    h.write_str(options.kmeans_mode.label());
    h.finish()
}

fn write_profile_inputs(h: &mut Fnv64, program: &Program, config: &PinPointsConfig) {
    h.write_u64(program.digest());
    h.write_str(program.name());
    h.write_u64(program.total_insts());
    h.write_u64(config.slice_size);
    match &config.profile_cache {
        Some(hier) => {
            h.write_u64(1);
            h.write_u64(hierarchy_fingerprint(hier));
        }
        None => h.write_u64(0),
    }
}

/// Cache key for the profiling stage of `program` under `config`.
///
/// Covers everything `Pipeline::profile` reads — and deliberately nothing
/// more, so clustering-only config changes still hit.
pub fn profile_stage_key(program: &Program, config: &PinPointsConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("sampsim/stage/profile/v1");
    write_profile_inputs(&mut h, program, config);
    h.finish()
}

/// Cache key for a complete deterministic run response: the profile
/// inputs plus the selection (strategy + parameters) and warmup
/// configuration. The strategy fingerprint covers the strategy identity
/// and every selection-relevant parameter, so two requests share a
/// response key iff the deterministic pipeline output is bit-identical.
pub fn response_key(program: &Program, config: &PinPointsConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("sampsim/response/run/v2");
    write_profile_inputs(&mut h, program, config);
    h.write_u64(config.warmup_slices);
    h.write_u64(simpoint_fingerprint(&config.simpoint));
    h.write_u64(config.strategy.fingerprint(&config.simpoint));
    h.finish()
}

/// The memoized output of the profiling pass: per-slice BBVs, slice-start
/// checkpoints, and whole-run metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStage {
    /// One BBV per slice.
    pub bbvs: Vec<Bbv>,
    /// One slice-start cursor per slice.
    pub starts: Vec<Cursor>,
    /// Whole-run metrics from the profiling pass. `wall_seconds` records
    /// the original computation, not the (near-zero) cache hit.
    pub metrics: RunMetrics,
}

impl ProfileStage {
    /// Serializes with a magic/version header for on-disk storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_header(PROFILE_MAGIC, PROFILE_VERSION);
        self.bbvs.encode(&mut enc);
        self.starts.encode(&mut enc);
        self.metrics.encode(&mut enc);
        enc.into_bytes()
    }

    /// Deserializes and revalidates a [`ProfileStage`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on header/version mismatch, malformed
    /// bytes, or internally inconsistent content (BBV and cursor counts
    /// must agree). Callers treat any error as a cache miss.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::with_header(bytes, PROFILE_MAGIC, PROFILE_VERSION)?;
        let bbvs = Vec::<Bbv>::decode(&mut dec)?;
        let starts = Vec::<Cursor>::decode(&mut dec)?;
        let metrics = RunMetrics::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bytes"));
        }
        if bbvs.len() != starts.len() {
            return Err(DecodeError::Invalid("BBV / cursor count mismatch"));
        }
        Ok(Self {
            bbvs,
            starts,
            metrics,
        })
    }

    /// Whether this stage plausibly belongs to `program` under `config`:
    /// the slice count must match the program's length. Guards against a
    /// (vanishingly unlikely) key collision or a cache written by a buggy
    /// producer.
    pub fn matches(&self, program: &Program, config: &PinPointsConfig) -> bool {
        config.slice_size > 0
            && self.bbvs.len() as u64 == program.total_insts().div_ceil(config.slice_size)
    }

    /// Reads only the header and the slice-count prefix from an encoded
    /// stage, without decoding any BBVs. `None` means the header is
    /// foreign or the bytes are too short to carry a count.
    pub fn peek_slice_count(bytes: &[u8]) -> Option<u64> {
        let mut dec = Decoder::with_header(bytes, PROFILE_MAGIC, PROFILE_VERSION).ok()?;
        Some(u64::from(dec.take_u32().ok()?))
    }

    /// Cheap validation-before-decode: whether an encoded stage plausibly
    /// belongs to `program` under `config`, judged from the slice-count
    /// prefix alone. The cached-stage fast path uses this to reject
    /// entries for the wrong program or slice size before paying the full
    /// (potentially multi-megabyte) decode; [`ProfileStage::matches`]
    /// still re-checks after a real decode.
    pub fn peek_matches(bytes: &[u8], program: &Program, config: &PinPointsConfig) -> bool {
        config.slice_size > 0
            && Self::peek_slice_count(bytes)
                == Some(program.total_insts().div_ceil(config.slice_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use sampsim_cache::configs;
    use sampsim_simpoint::SimPointOptions;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("stage-cache", 7)
            .total_insts(40_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .build()
            .build()
    }

    fn config() -> PinPointsConfig {
        PinPointsConfig {
            slice_size: 1_000,
            simpoint: SimPointOptions {
                max_k: 6,
                ..Default::default()
            },
            warmup_slices: 3,
            profile_cache: Some(configs::allcache_table1()),
            strategy: sampsim_simpoint::StrategySpec::SimPoint,
        }
    }

    #[test]
    fn profile_stage_roundtrip() {
        let p = program();
        let (bbvs, starts, metrics) = Pipeline::new(config()).profile(&p);
        let stage = ProfileStage {
            bbvs,
            starts,
            metrics,
        };
        let bytes = stage.to_bytes();
        let back = ProfileStage::from_bytes(&bytes).unwrap();
        assert_eq!(back, stage);
        assert!(back.matches(&p, &config()));
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        let stage = ProfileStage {
            bbvs: vec![Bbv::from_counts(vec![(0, 1)])],
            starts: Vec::new(),
            metrics: RunMetrics {
                instructions: 0,
                mix: Default::default(),
                cache: None,
                timing: None,
                wall_seconds: 0.0,
            },
        };
        // Count mismatch is caught even though the bytes decode cleanly.
        assert!(ProfileStage::from_bytes(&stage.to_bytes()).is_err());
        // Header mismatch.
        assert!(ProfileStage::from_bytes(b"not a profile stage").is_err());
        // Truncation.
        let p = program();
        let (bbvs, starts, metrics) = Pipeline::new(config()).profile(&p);
        let bytes = ProfileStage {
            bbvs,
            starts,
            metrics,
        }
        .to_bytes();
        assert!(ProfileStage::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn keys_separate_what_must_differ_and_share_what_may() {
        let p = program();
        let base = config();

        // Different slice size → different profile key.
        let mut other = base.clone();
        other.slice_size = 2_000;
        assert_ne!(profile_stage_key(&p, &base), profile_stage_key(&p, &other));

        // Different MaxK → same profile key (profile is reusable) but a
        // different response key (the output changes).
        let mut remaxk = base.clone();
        remaxk.simpoint.max_k = 12;
        assert_eq!(profile_stage_key(&p, &base), profile_stage_key(&p, &remaxk));
        assert_ne!(response_key(&p, &base), response_key(&p, &remaxk));

        // Different warmup → same profile key, different response key.
        let mut rewarm = base.clone();
        rewarm.warmup_slices = 9;
        assert_eq!(profile_stage_key(&p, &base), profile_stage_key(&p, &rewarm));
        assert_ne!(response_key(&p, &base), response_key(&p, &rewarm));

        // Different sampling strategy → same profile key (stage-cached
        // BBVs are reused across strategies), different response key.
        for name in sampsim_simpoint::STRATEGY_NAMES.iter().skip(1) {
            let mut restrat = base.clone();
            restrat.strategy = sampsim_simpoint::StrategySpec::parse(name).unwrap();
            assert_eq!(
                profile_stage_key(&p, &base),
                profile_stage_key(&p, &restrat),
                "{name}"
            );
            assert_ne!(
                response_key(&p, &base),
                response_key(&p, &restrat),
                "{name}"
            );
        }

        // Dropping the profile hierarchy changes both.
        let mut nocache = base.clone();
        nocache.profile_cache = None;
        assert_ne!(
            profile_stage_key(&p, &base),
            profile_stage_key(&p, &nocache)
        );
        assert_ne!(response_key(&p, &base), response_key(&p, &nocache));

        // A different program (different seed → different digest) misses.
        let q = WorkloadSpec::builder("stage-cache", 8)
            .total_insts(40_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .build()
            .build();
        assert_ne!(profile_stage_key(&p, &base), profile_stage_key(&q, &base));
    }

    #[test]
    fn hierarchy_fingerprint_is_field_sensitive() {
        let base = configs::allcache_table1();
        let fp = hierarchy_fingerprint(&base);
        let mut bigger = base;
        bigger.l3.size_bytes *= 2;
        assert_ne!(fp, hierarchy_fingerprint(&bigger));
        let mut latency = base;
        latency.mem_latency += 1;
        assert_ne!(fp, hierarchy_fingerprint(&latency));
        assert_eq!(fp, hierarchy_fingerprint(&configs::allcache_table1()));
    }

    #[test]
    fn memory_cache_counts_hits() {
        let cache = MemoryStageCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.hits(), 0);
        cache.put(1, b"abc");
        assert_eq!(cache.get(1).as_deref(), Some(&b"abc"[..]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        // NoCache never stores.
        NoCache.put(1, b"abc");
        assert_eq!(NoCache.get(1), None);
    }

    #[test]
    fn cached_run_is_deterministically_equal_to_cold_run() {
        let p = program();
        let cache = MemoryStageCache::new();
        let pipe = Pipeline::new(config());
        let cold = pipe
            .run_jobs_cached(&p, sampsim_exec::SERIAL, &cache)
            .unwrap();
        assert_eq!(cache.hits(), 0);
        let warm = pipe
            .run_jobs_cached(&p, sampsim_exec::SERIAL, &cache)
            .unwrap();
        assert_eq!(cache.hits(), 1);
        let plain = pipe.run(&p).unwrap();
        for r in [&warm, &plain] {
            assert!(cold.whole_metrics.deterministic_eq(&r.whole_metrics));
            assert_eq!(cold.simpoints, r.simpoints);
            assert_eq!(cold.regional, r.regional);
            assert_eq!(cold.num_slices, r.num_slices);
        }
    }
}

//! The cross-strategy efficacy study: every registered sampling strategy
//! versus whole-program truth, with error bars.
//!
//! This is the engine behind `sampsim compare`. It profiles the program
//! **once** (the strategy-agnostic BBV pass, exactly what the stage cache
//! shares across strategies), measures whole-program truth in the timing
//! model, then evaluates each strategy in [`STRATEGY_NAMES`] order:
//!
//! 1. Build `replicates` independent selections. Single-shot strategies
//!    (simpoint, stratified2p) are seed-resampled — replicate `r` shifts
//!    the strategy's master seed by `r · φ64` (replicate 0 is the base
//!    configuration); `rss` produces its replicate sets natively.
//! 2. Replay every replicate's regions in the timing model and form the
//!    weighted aggregate (CPI + per-level cache miss rates). Replicates
//!    share one warmup policy — the plain preceding-window warmup that
//!    synthetic point sets get — so strategies are compared like for
//!    like.
//! 3. Report each metric as mean over replicates, a normal-theory 95%
//!    confidence half-width (`1.96·s/√R`), and the relative error of the
//!    mean against truth.
//!
//! The report is schema-versioned single-line JSON ([`SCHEMA`]); floats
//! render via `{:?}` (shortest exact representation), and every stage is
//! deterministic per job count, so the bytes are identical across
//! `--jobs` values. [`validate_report`] checks a report against the
//! schema **and the registry**: a strategy registered in the engine but
//! missing from a report (or vice versa) is a validation failure, which
//! is how `scripts/check.sh` fails loudly on registry drift.

use crate::error::CoreError;
use crate::metrics::{aggregate_weighted, whole_as_aggregate, AggregatedMetrics};
use crate::pipeline::{PinPointsConfig, Pipeline};
use crate::runs::{run_regions_timing_jobs, run_whole_timing, WarmupMode};
use sampsim_cache::configs;
use sampsim_exec::Jobs;
use sampsim_simpoint::strategy::reseeded_simpoint_options;
use sampsim_simpoint::{
    Rss, RssOptions, SamplingStrategy, SimPoint, SimPointsResult, StrategyInput, StrategySpec,
    STRATEGY_NAMES,
};
use sampsim_uarch::CoreConfig;
use sampsim_util::json::{self, Value};
use sampsim_util::stats::{relative_error_pct, Summary};
use sampsim_workload::Program;

/// Schema identifier stamped into every compare report.
pub const SCHEMA: &str = "sampsim-compare/v1";

/// Default replicate count per strategy.
pub const DEFAULT_REPLICATES: usize = 5;

/// One metric's replicate statistics versus truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean of the per-replicate estimates.
    pub mean: f64,
    /// Normal-theory 95% confidence half-width, `1.96·s/√R` (0 when
    /// `R < 2`).
    pub ci95: f64,
    /// Relative error of the mean against whole-program truth, percent.
    pub error_pct: f64,
}

impl Estimate {
    fn from_samples(samples: &[f64], truth: f64) -> Self {
        let mut s = Summary::new();
        for &v in samples {
            s.add(v);
        }
        let mean = s.mean();
        let ci95 = if samples.len() >= 2 {
            1.96 * s.stddev() / (samples.len() as f64).sqrt()
        } else {
            0.0
        };
        Estimate {
            mean,
            ci95,
            error_pct: relative_error_pct(mean, truth),
        }
    }
}

/// Per-level cache miss-rate estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRateEstimates {
    /// L1 instruction cache.
    pub l1i: Estimate,
    /// L1 data cache.
    pub l1d: Estimate,
    /// Unified L2.
    pub l2: Estimate,
    /// Unified L3 (LLC).
    pub l3: Estimate,
}

/// One strategy's row in the study.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyReport {
    /// Registry name.
    pub strategy: String,
    /// Regions the primary (replicate 0) selection chose.
    pub regions: usize,
    /// Replicates evaluated.
    pub replicates: usize,
    /// CPI estimate versus truth.
    pub cpi: Estimate,
    /// Miss-rate estimates versus truth.
    pub miss_rates: MissRateEstimates,
}

/// The whole study: truth plus one row per registered strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Benchmark / program name.
    pub bench: String,
    /// Slices the profile divided into.
    pub slices: u64,
    /// Slice length in instructions.
    pub slice_size: u64,
    /// Replicates per strategy.
    pub replicates: usize,
    /// Whole-program truth (timing run over the full execution).
    pub truth: AggregatedMetrics,
    /// One row per strategy, in [`STRATEGY_NAMES`] order.
    pub strategies: Vec<StrategyReport>,
}

/// Runs the study: one shared profile, whole-program truth, then every
/// registered strategy × `replicates` selections through the timing
/// model. Deterministic per job count — the report bytes never depend on
/// `jobs`.
///
/// # Errors
///
/// Returns [`CoreError::Config`] when the configuration fails preflight
/// and [`CoreError::SimPoint`] when the program is too short to slice.
pub fn compare_strategies(
    program: &Program,
    config: &PinPointsConfig,
    replicates: usize,
    jobs: Jobs,
) -> Result<CompareReport, CoreError> {
    let pipeline = Pipeline::new(config.clone());
    let preflight = pipeline.preflight(program);
    if preflight.has_errors() {
        return Err(CoreError::Config(preflight.into_diagnostics()));
    }
    // One strategy-agnostic profiling pass shared by every strategy and
    // replicate — the amortization the stage cache already exploits.
    let (bbvs, starts, _) = pipeline.profile_jobs(program, jobs);
    let input = StrategyInput {
        bbvs: &bbvs,
        slice_size: config.slice_size,
    };
    let truth = whole_as_aggregate(&run_whole_timing(
        program,
        CoreConfig::table3(),
        configs::i7_table3(),
    ));
    let truth_cpi = truth.cpi.expect("timing truth carries CPI");
    let truth_mr = truth.miss_rates.expect("timing truth carries miss rates");
    let reps = replicates.max(1);

    let mut strategies = Vec::with_capacity(STRATEGY_NAMES.len());
    for spec in StrategySpec::registry() {
        // Replicate selections: native for rss, seed-resampled otherwise.
        let point_sets: Vec<Vec<SimPoint>> = match &spec {
            StrategySpec::Rss(base) => {
                let rss = Rss::new(RssOptions {
                    replicates: reps,
                    ..*base
                });
                rss.select(&input, jobs)?.replicates
            }
            _ => {
                let mut sets = Vec::with_capacity(reps);
                for r in 0..reps as u64 {
                    let simpoint = if matches!(spec, StrategySpec::SimPoint) {
                        reseeded_simpoint_options(&config.simpoint, r)
                    } else {
                        config.simpoint
                    };
                    let strategy = spec.reseeded(r).build(&simpoint);
                    sets.push(strategy.select(&input, jobs)?.points);
                }
                sets
            }
        };

        let mut cpi = Vec::with_capacity(point_sets.len());
        let mut l1i = Vec::with_capacity(point_sets.len());
        let mut l1d = Vec::with_capacity(point_sets.len());
        let mut l2 = Vec::with_capacity(point_sets.len());
        let mut l3 = Vec::with_capacity(point_sets.len());
        for points in &point_sets {
            // Synthetic result: empty assignments give every replicate of
            // every strategy the same plain preceding-window warmup.
            let simpoints = SimPointsResult {
                k: points.len(),
                slice_size: config.slice_size,
                assignments: Vec::new(),
                points: points.clone(),
                bic_scores: Vec::new(),
                avg_variance: 0.0,
            };
            let regional = pipeline.regionals_for(program, &simpoints, &starts);
            let measured = run_regions_timing_jobs(
                program,
                &regional,
                CoreConfig::table3(),
                configs::i7_table3(),
                WarmupMode::Checkpointed,
                jobs,
            )?;
            let agg = aggregate_weighted(&measured);
            cpi.push(agg.cpi.expect("timing replay carries CPI"));
            let mr = agg.miss_rates.expect("timing replay carries miss rates");
            l1i.push(mr.l1i);
            l1d.push(mr.l1d);
            l2.push(mr.l2);
            l3.push(mr.l3);
        }
        strategies.push(StrategyReport {
            strategy: spec.name().to_string(),
            regions: point_sets[0].len(),
            replicates: point_sets.len(),
            cpi: Estimate::from_samples(&cpi, truth_cpi),
            miss_rates: MissRateEstimates {
                l1i: Estimate::from_samples(&l1i, truth_mr.l1i),
                l1d: Estimate::from_samples(&l1d, truth_mr.l1d),
                l2: Estimate::from_samples(&l2, truth_mr.l2),
                l3: Estimate::from_samples(&l3, truth_mr.l3),
            },
        });
    }
    Ok(CompareReport {
        bench: program.name().to_string(),
        slices: bbvs.len() as u64,
        slice_size: config.slice_size,
        replicates: reps,
        truth,
        strategies,
    })
}

impl CompareReport {
    /// Renders the single-line `sampsim-compare/v1` JSON document (no
    /// trailing newline). Floats go through `{:?}` so the text is the
    /// shortest exact representation of the bit pattern — byte-stable
    /// across job counts because every input is.
    pub fn to_json(&self) -> String {
        fn json_f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        }
        fn estimate(e: &Estimate) -> String {
            format!(
                "{{\"mean\":{},\"ci95\":{},\"error_pct\":{}}}",
                json_f(e.mean),
                json_f(e.ci95),
                json_f(e.error_pct)
            )
        }
        let truth_mr = self.truth.miss_rates.expect("truth carries miss rates");
        let truth = format!(
            "{{\"cpi\":{},\"miss_rates_pct\":{{\"l1i\":{},\"l1d\":{},\"l2\":{},\"l3\":{}}}}}",
            json_f(self.truth.cpi.expect("truth carries CPI")),
            json_f(truth_mr.l1i),
            json_f(truth_mr.l1d),
            json_f(truth_mr.l2),
            json_f(truth_mr.l3)
        );
        let rows: Vec<String> = self
            .strategies
            .iter()
            .map(|s| {
                format!(
                    "{{\"strategy\":\"{}\",\"regions\":{},\"replicates\":{},\"cpi\":{},\
                     \"miss_rates_pct\":{{\"l1i\":{},\"l1d\":{},\"l2\":{},\"l3\":{}}}}}",
                    s.strategy,
                    s.regions,
                    s.replicates,
                    estimate(&s.cpi),
                    estimate(&s.miss_rates.l1i),
                    estimate(&s.miss_rates.l1d),
                    estimate(&s.miss_rates.l2),
                    estimate(&s.miss_rates.l3)
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"bench\":\"{}\",\"slices\":{},\"slice_size\":{},\
             \"replicates\":{},\"truth\":{},\"strategies\":[{}]}}",
            SCHEMA,
            self.bench,
            self.slices,
            self.slice_size,
            self.replicates,
            truth,
            rows.join(",")
        )
    }
}

fn check_estimate(v: &Value, what: &str) -> Result<(), String> {
    for field in ["mean", "ci95", "error_pct"] {
        v.get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what}.{field}: missing or not a number"))?;
    }
    Ok(())
}

fn check_miss_rates(v: &Value, what: &str, as_estimates: bool) -> Result<(), String> {
    let mr = v
        .get("miss_rates_pct")
        .ok_or_else(|| format!("{what}.miss_rates_pct: missing"))?;
    for level in ["l1i", "l1d", "l2", "l3"] {
        let entry = mr
            .get(level)
            .ok_or_else(|| format!("{what}.miss_rates_pct.{level}: missing"))?;
        if as_estimates {
            check_estimate(entry, &format!("{what}.miss_rates_pct.{level}"))?;
        } else if entry.as_f64().is_none() {
            return Err(format!("{what}.miss_rates_pct.{level}: not a number"));
        }
    }
    Ok(())
}

/// Validates a compare report against the `sampsim-compare/v1` schema and
/// the strategy registry.
///
/// # Errors
///
/// Returns a description of the first violation: wrong schema tag,
/// missing or malformed fields, a registered strategy absent from the
/// report, or a reported strategy the registry does not know. The
/// registry checks make `scripts/check.sh` fail loudly when a strategy is
/// added to (or dropped from) the engine without the report following.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("schema: missing or not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema: expected \"{SCHEMA}\", got \"{schema}\""));
    }
    doc.get("bench")
        .and_then(Value::as_str)
        .ok_or("bench: missing or not a string")?;
    for field in ["slices", "slice_size", "replicates"] {
        let v = doc
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{field}: missing or not a number"))?;
        if v < 1.0 {
            return Err(format!("{field}: must be >= 1, got {v}"));
        }
    }
    let truth = doc.get("truth").ok_or("truth: missing")?;
    truth
        .get("cpi")
        .and_then(Value::as_f64)
        .ok_or("truth.cpi: missing or not a number")?;
    check_miss_rates(truth, "truth", false)?;

    let strategies = doc
        .get("strategies")
        .and_then(Value::as_array)
        .ok_or("strategies: missing or not an array")?;
    let mut reported = Vec::with_capacity(strategies.len());
    for (i, row) in strategies.iter().enumerate() {
        let what = format!("strategies[{i}]");
        let name = row
            .get("strategy")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{what}.strategy: missing or not a string"))?;
        if !STRATEGY_NAMES.contains(&name) {
            return Err(format!(
                "{what}.strategy: \"{name}\" is not a registered strategy \
                 (registry: {STRATEGY_NAMES:?})"
            ));
        }
        if reported.contains(&name.to_string()) {
            return Err(format!("{what}.strategy: \"{name}\" appears twice"));
        }
        for field in ["regions", "replicates"] {
            let v = row
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{what}.{field}: missing or not a number"))?;
            if v < 1.0 {
                return Err(format!("{what}.{field}: must be >= 1, got {v}"));
            }
        }
        check_estimate(
            row.get("cpi")
                .ok_or_else(|| format!("{what}.cpi: missing"))?,
            &format!("{what}.cpi"),
        )?;
        check_miss_rates(row, &what, true)?;
        reported.push(name.to_string());
    }
    for required in STRATEGY_NAMES {
        if !reported.iter().any(|n| n == required) {
            return Err(format!(
                "strategies: registered strategy \"{required}\" is missing from the report \
                 (reported: {reported:?})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_simpoint::SimPointOptions;
    use sampsim_workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("compare-test", 13)
            .total_insts(120_000)
            .phase(PhaseSpec::memory_bound(1.0))
            .phase(PhaseSpec::compute_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 6_000,
                jitter: 0.3,
                align: 0,
            })
            .build()
            .build()
    }

    fn config() -> PinPointsConfig {
        PinPointsConfig {
            slice_size: 1_000,
            simpoint: SimPointOptions {
                max_k: 6,
                ..Default::default()
            },
            warmup_slices: 5,
            profile_cache: None,
            ..Default::default()
        }
    }

    #[test]
    fn report_covers_registry_and_validates() {
        let report = compare_strategies(&program(), &config(), 3, sampsim_exec::SERIAL).unwrap();
        assert_eq!(report.strategies.len(), STRATEGY_NAMES.len());
        for (row, name) in report.strategies.iter().zip(STRATEGY_NAMES) {
            assert_eq!(row.strategy, *name);
            assert_eq!(row.replicates, 3);
            assert!(row.regions >= 1);
            assert!(row.cpi.mean > 0.0, "{name}: cpi {:?}", row.cpi);
            assert!(row.cpi.error_pct >= 0.0);
            assert!(row.cpi.ci95 >= 0.0);
        }
        let json = report.to_json();
        validate_report(&json).unwrap();
    }

    #[test]
    fn report_bytes_are_job_count_invariant() {
        let reference = compare_strategies(&program(), &config(), 2, sampsim_exec::SERIAL)
            .unwrap()
            .to_json();
        for jobs in [Jobs::new(2).unwrap(), Jobs::new(5).unwrap(), Jobs::Auto] {
            let report = compare_strategies(&program(), &config(), 2, jobs)
                .unwrap()
                .to_json();
            assert_eq!(report, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn validator_rejects_drift() {
        let mut report =
            compare_strategies(&program(), &config(), 2, sampsim_exec::SERIAL).unwrap();
        let json = report.to_json();
        // Dropping a registered strategy must fail loudly.
        report.strategies.pop();
        let err = validate_report(&report.to_json()).unwrap_err();
        assert!(err.contains("rss") && err.contains("missing"), "{err}");
        // A duplicated strategy row must fail loudly.
        let duplicated = json.replace("\"strategy\":\"rss\"", "\"strategy\":\"simpoint\"");
        assert!(validate_report(&duplicated).unwrap_err().contains("twice"));
        // An unregistered strategy must fail loudly.
        let unknown = json.replace("\"strategy\":\"rss\"", "\"strategy\":\"frobnicate\"");
        assert!(validate_report(&unknown)
            .unwrap_err()
            .contains("frobnicate"));
        // Wrong schema tag.
        let wrong = json.replace(SCHEMA, "sampsim-compare/v0");
        assert!(validate_report(&wrong).unwrap_err().contains("schema"));
        // Not JSON at all.
        assert!(validate_report("nonsense").is_err());
    }
}

//! On-disk caching of computed experiment artifacts.
//!
//! Every benchmark binary shares the per-benchmark
//! [`BenchResult`](crate::bench_result::BenchResult)s through
//! this store: the first `fig*`/`table*` target to run pays the simulation
//! cost, the rest reload in milliseconds. Keys incorporate a configuration
//! digest, so changing the study parameters invalidates stale artifacts
//! instead of silently reusing them.

use crate::error::CoreError;
use sampsim_pinball::store::StoreError;
use sampsim_util::bytes::SharedBytes;
use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x5350_4152; // "SPAR"
const VERSION: u16 = 1;

/// A directory-backed artifact cache.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CoreError::Store(StoreError::Io(e)))?;
        Ok(Self { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lists the keys currently stored (one per `.art` file), sorted.
    /// An unreadable directory yields an empty list, matching the
    /// cache-miss behaviour of [`ArtifactStore::load`].
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter_map(|e| {
                        let name = e.file_name().into_string().ok()?;
                        name.strip_suffix(".art").map(str::to_string)
                    })
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Keys are caller-controlled; keep them filesystem-safe.
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.art"))
    }

    /// Opens the artifact stored under `key` as a lazily decoded view:
    /// the file is read once, the magic/version header is validated, and
    /// the payload is held as a zero-copy window over that single read.
    /// `None` when the file is absent or its header is foreign.
    ///
    /// Use this to inspect or route artifacts without paying the decode
    /// cost ([`ArtifactView::decode`] decodes on demand).
    pub fn view(&self, key: &str) -> Option<ArtifactView> {
        let raw = SharedBytes::new(fs::read(self.path_for(key)).ok()?);
        let dec = Decoder::with_header(&raw, MAGIC, VERSION).ok()?;
        let start = raw.len() - dec.remaining();
        Some(ArtifactView {
            payload: raw.slice(start..raw.len()),
        })
    }

    /// Loads the artifact stored under `key`, or `None` when absent or
    /// unreadable (stale/corrupt artifacts are treated as cache misses).
    pub fn load<T: Decode>(&self, key: &str) -> Option<T> {
        self.view(key)?.decode().ok()
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] on filesystem failure.
    pub fn save<T: Encode>(&self, key: &str, value: &T) -> Result<(), CoreError> {
        let mut enc = Encoder::with_header(MAGIC, VERSION);
        value.encode(&mut enc);
        fs::write(self.path_for(key), enc.into_bytes())
            .map_err(|e| CoreError::Store(StoreError::Io(e)))?;
        Ok(())
    }

    /// Loads `key` or computes-and-stores it.
    ///
    /// # Errors
    ///
    /// Propagates the computation's error, or [`CoreError::Store`] when the
    /// result cannot be written back.
    pub fn get_or_compute<T, F>(&self, key: &str, compute: F) -> Result<T, CoreError>
    where
        T: Encode + Decode,
        F: FnOnce() -> Result<T, CoreError>,
    {
        if let Some(v) = self.load::<T>(key) {
            return Ok(v);
        }
        let v = compute()?;
        self.save(key, &v)?;
        Ok(v)
    }
}

/// A header-validated artifact whose payload has not been decoded yet.
///
/// Produced by [`ArtifactStore::view`]. Holds the payload as a
/// [`SharedBytes`] window over the single file read; cloning the view or
/// decoding it repeatedly never recopies the bytes.
#[derive(Debug, Clone)]
pub struct ArtifactView {
    payload: SharedBytes,
}

impl ArtifactView {
    /// Decodes the payload as a `T`, requiring every payload byte to be
    /// consumed (trailing bytes mean the value was written as a different
    /// type or the file is corrupt).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed or trailing bytes.
    pub fn decode<T: Decode>(&self) -> Result<T, DecodeError> {
        let mut dec = Decoder::new(&self.payload);
        let value = T::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bytes"));
        }
        Ok(value)
    }

    /// The undecoded payload bytes (past the header).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Ignore-decode guard for corrupt files.
impl From<DecodeError> for CoreError {
    fn from(e: DecodeError) -> Self {
        CoreError::Store(StoreError::Decode(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(name: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("sampsim-art-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store("roundtrip");
        s.save("answer", &42u64).unwrap();
        assert_eq!(s.load::<u64>("answer"), Some(42));
        assert_eq!(s.load::<u64>("missing"), None);
    }

    #[test]
    fn get_or_compute_computes_once() {
        let s = store("once");
        let mut calls = 0;
        let v: u64 = s
            .get_or_compute("k", || {
                calls += 1;
                Ok(7)
            })
            .unwrap();
        assert_eq!(v, 7);
        let v2: u64 = s
            .get_or_compute("k", || {
                calls += 1;
                Ok(8)
            })
            .unwrap();
        assert_eq!(v2, 7, "second call must come from the cache");
        assert_eq!(calls, 1);
    }

    #[test]
    fn view_decodes_lazily_and_rejects_wrong_types() {
        let s = store("view");
        s.save("answer", &42u64).unwrap();
        let view = s.view("answer").unwrap();
        // The payload is exactly the encoded u64, decodable on demand —
        // repeatedly, since decoding borrows the view.
        assert_eq!(view.len(), 8);
        assert!(!view.is_empty());
        assert_eq!(view.decode::<u64>().unwrap(), 42);
        assert_eq!(view.decode::<u64>().unwrap(), 42);
        // A type with trailing payload bytes left over is rejected.
        assert!(view.decode::<u32>().is_err());
        // Missing key or foreign header → no view at all.
        assert!(s.view("missing").is_none());
        fs::write(s.path_for("garbled"), b"garbage").unwrap();
        assert!(s.view("garbled").is_none());
    }

    #[test]
    fn corrupt_artifact_is_a_miss() {
        let s = store("corrupt");
        s.save("k", &1u64).unwrap();
        let path = s.path_for("k");
        fs::write(&path, b"garbage").unwrap();
        assert_eq!(s.load::<u64>("k"), None);
    }

    #[test]
    fn keys_lists_stored_artifacts_sorted() {
        let s = store("keys");
        assert!(s.keys().is_empty());
        s.save("zeta", &1u64).unwrap();
        s.save("alpha", &2u64).unwrap();
        assert_eq!(s.keys(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn keys_are_sanitized() {
        let s = store("sanitize");
        s.save("a/../b c", &5u64).unwrap();
        assert_eq!(s.load::<u64>("a/../b c"), Some(5));
        // The file landed inside the store directory.
        assert!(s.path_for("a/../b c").starts_with(s.dir()));
    }
}

//! The static cost/precision planner behind `sampsim plan`.
//!
//! Everything here is derived without executing, profiling or clustering
//! anything: the slice structure comes from [`StaticBbvBounds`] (the
//! schedule proves the slice count and instruction mass), the selection
//! shape from [`StrategySpec::predict`], and the confidence-interval
//! bounds from closed-form survey-sampling theory under conservative
//! dispersion caps. The same [`lint_soundness`] pass the pipeline
//! preflight runs is embedded in the report, so a plan always shows the
//! SA14x findings its configuration would trigger.
//!
//! ## The precision model and its conservatism
//!
//! For a metric with per-slice coefficient of variation `CV`, the
//! relative 95% half-width of a weighted mean over `n_eff` effective
//! samples from `N` slices is bounded by
//!
//! ```text
//! ci_bound_pct = Z95 · CV_cap · fpc / sqrt(n_eff) · 100
//! fpc          = sqrt((N − n_eff) / (N − 1))   (0 at a census)
//! ```
//!
//! with `CV_cap` a fixed cap on the per-slice dispersion of the metric
//! ([`CPI_CV_BOUND`], [`MISS_RATE_CV_BOUND`]). `n_eff` is the number of
//! *regions* one replicate covers — never the replicate-multiplied
//! sample count. Downstream consumers are free to re-run a strategy with
//! any replicate budget (and `sampsim compare` does exactly that), so
//! the plan only promises what a single replicate guarantees; averaging
//! replicates can only sharpen the estimate below the bound. The caps
//! are deliberately
//! far above anything the synthetic workloads exhibit — the plan promises
//! an *upper bound*, not an estimate — and the plan-vs-compare oracle
//! test (`tests/plan_oracle.rs`) pins the bound to reality: on every
//! registered strategy over several benchmarks the observed `sampsim
//! compare` error must fall inside it, and a doctored (too-narrow) bound
//! must make the oracle fail. The bound collapses to exactly 0 at a
//! census (`n_eff ≥ N`): replaying every slice reproduces the
//! whole-program numbers.
//!
//! The report is schema-versioned single-line JSON ([`SCHEMA`]) with the
//! same float formatting rules as `sampsim compare`: every value is
//! deterministic and *statically* derived, so the bytes are identical
//! across `--jobs` values by construction (no stage of the planner is
//! parallel at all).

use crate::error::CoreError;
use crate::pipeline::PinPointsConfig;
use sampsim_analyze::{
    diagnostic_json, lint_soundness, predicted_instructions, Diagnostic, SoundnessInput,
    StaticBbvBounds,
};
use sampsim_simpoint::{StrategySpec, STRATEGY_NAMES};
use sampsim_util::json::{self, Value};
use sampsim_workload::Program;

/// Schema identifier stamped into every plan report.
pub const SCHEMA: &str = "sampsim-plan/v1";

/// Normal-theory 95% quantile used by the half-width bound.
pub const Z95: f64 = 1.96;

/// Cap on the per-slice coefficient of variation of CPI. Measured
/// per-slice CPI dispersion on the synthetic suite stays well below 0.5;
/// the cap doubles that so the bound holds with slack (the oracle test
/// enforces it empirically).
pub const CPI_CV_BOUND: f64 = 1.0;

/// Cap on the per-slice coefficient of variation of cache miss rates.
/// Miss rates are far burstier than CPI (a phase can miss 100× another),
/// so the cap is proportionally wider.
pub const MISS_RATE_CV_BOUND: f64 = 6.0;

/// The per-metric relative 95% confidence half-width bounds, percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiBounds {
    /// Cycles per instruction.
    pub cpi: f64,
    /// L1 instruction cache miss rate.
    pub l1i: f64,
    /// L1 data cache miss rate.
    pub l1d: f64,
    /// Unified L2 miss rate.
    pub l2: f64,
    /// Unified L3 (LLC) miss rate.
    pub l3: f64,
}

impl CiBounds {
    /// The bounds as `(metric name, bound)` pairs, in schema order.
    pub fn named(&self) -> [(&'static str, f64); 5] {
        [
            ("cpi", self.cpi),
            ("l1i", self.l1i),
            ("l1d", self.l1d),
            ("l2", self.l2),
            ("l3", self.l3),
        ]
    }
}

/// The statically predicted cost and precision of one strategy on one
/// benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Benchmark / program name.
    pub bench: String,
    /// Slices the schedule proves the profile will divide into.
    pub slices: u64,
    /// Slice length in instructions.
    pub slice_size: u64,
    /// Strategy registry name.
    pub strategy: String,
    /// Whole-program instruction count (the cost of truth).
    pub whole_instructions: u64,
    /// Regions the strategy will select.
    pub regions: usize,
    /// Effective samples contributing to each estimate.
    pub samples: usize,
    /// Independent replicates the strategy natively produces.
    pub replicates: usize,
    /// Predicted instructions replayed (regions + warmup windows).
    pub predicted_instructions: u64,
    /// Speedup bound versus simulating the whole program
    /// (`whole / predicted`; below 1.0 means sampling is slower than
    /// truth, which is exactly what `SA145` reports).
    pub speedup_bound: f64,
    /// Static bound on any single selection draw's weight
    /// (`f64::INFINITY` renders as `null`: no parameter-level guarantee).
    pub max_weight_bound: f64,
    /// Conservative per-metric CI half-width bounds, percent.
    pub ci_bound_pct: CiBounds,
    /// The SA14x statistical-soundness findings for this configuration.
    pub soundness: Vec<Diagnostic>,
}

/// One plan-vs-observation inconsistency found by
/// [`check_against_compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanViolation {
    /// Strategy whose observation escaped its plan.
    pub strategy: String,
    /// Metric name (`cpi`, `l1i`, ...).
    pub metric: &'static str,
    /// Observed relative error, percent.
    pub observed_pct: f64,
    /// The plan's predicted bound, percent.
    pub bound_pct: f64,
}

/// The conservative relative half-width bound, in percent. `regions` is
/// the per-replicate coverage (see the module docs for why replicates
/// are deliberately not credited).
fn ci_bound_pct(cv_cap: f64, regions: usize, slices: u64) -> f64 {
    let n_eff = (regions.max(1)) as f64;
    let total = slices as f64;
    if regions as u64 >= slices || slices <= 1 {
        // A census has no sampling error at all.
        return 0.0;
    }
    let fpc = ((total - n_eff) / (total - 1.0)).sqrt();
    Z95 * cv_cap * fpc / n_eff.sqrt() * 100.0
}

/// Builds the static plan for `strategy` (defaulting to the config's own
/// strategy when `None`) on `program` under `config`.
///
/// # Errors
///
/// Returns [`CoreError::Config`] when the configuration fails the
/// *structural* half of the lint pass (zero slice size, broken SimPoint
/// options, malformed program...). SA14x soundness findings never abort
/// the planner — quantifying exactly those configurations is what the
/// plan is for — they are embedded in [`PlanReport::soundness`] instead.
pub fn plan_strategy(
    program: &Program,
    config: &PinPointsConfig,
    strategy: Option<&StrategySpec>,
) -> Result<PlanReport, CoreError> {
    let mut config = config.clone();
    if let Some(spec) = strategy {
        config.strategy = spec.clone();
    }
    let pipeline = crate::pipeline::Pipeline::new(config.clone());
    let report = pipeline.preflight(program);
    let structural: Vec<Diagnostic> = report
        .diagnostics()
        .iter()
        .filter(|d| {
            d.severity == sampsim_analyze::Severity::Error && !d.rule.code().starts_with("SA14")
        })
        .cloned()
        .collect();
    if !structural.is_empty() {
        return Err(CoreError::Config(structural));
    }

    // The slice structure, proven from the schedule alone.
    let bounds = StaticBbvBounds::derive(program, config.slice_size);
    let slices = bounds.num_slices() as u64;
    let whole_instructions = program.total_insts();
    let plan = config.strategy.predict(&config.simpoint, slices);
    let cost = predicted_instructions(
        plan.regions,
        config.slice_size,
        config.warmup_slices,
        slices,
    );
    let soundness = lint_soundness(&SoundnessInput {
        strategy: &config.strategy,
        simpoint: &config.simpoint,
        slice_size: config.slice_size,
        warmup_slices: config.warmup_slices,
        num_slices: slices,
        total_insts: whole_instructions,
        materialized_budget_bytes: sampsim_analyze::DEFAULT_MATERIALIZED_BUDGET_BYTES,
    });

    Ok(PlanReport {
        bench: program.name().to_string(),
        slices,
        slice_size: config.slice_size,
        strategy: config.strategy.name().to_string(),
        whole_instructions,
        regions: plan.regions,
        samples: plan.samples,
        replicates: plan.replicates,
        predicted_instructions: cost,
        speedup_bound: whole_instructions as f64 / (cost as f64).max(1.0),
        max_weight_bound: plan.max_weight_bound,
        ci_bound_pct: CiBounds {
            cpi: ci_bound_pct(CPI_CV_BOUND, plan.regions, slices),
            l1i: ci_bound_pct(MISS_RATE_CV_BOUND, plan.regions, slices),
            l1d: ci_bound_pct(MISS_RATE_CV_BOUND, plan.regions, slices),
            l2: ci_bound_pct(MISS_RATE_CV_BOUND, plan.regions, slices),
            l3: ci_bound_pct(MISS_RATE_CV_BOUND, plan.regions, slices),
        },
        soundness: soundness.into_diagnostics(),
    })
}

impl PlanReport {
    /// Renders the single-line `sampsim-plan/v1` JSON document (no
    /// trailing newline). Floats go through `{:?}` (shortest exact
    /// representation; non-finite renders as `null`). Every field is
    /// statically derived, so the bytes never depend on `--jobs`.
    pub fn to_json(&self) -> String {
        fn json_f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        }
        let ci: Vec<String> = self
            .ci_bound_pct
            .named()
            .iter()
            .map(|(name, bound)| format!("\"{name}\":{}", json_f(*bound)))
            .collect();
        let soundness: Vec<String> = self.soundness.iter().map(diagnostic_json).collect();
        format!(
            "{{\"schema\":\"{}\",\"bench\":\"{}\",\"slices\":{},\"slice_size\":{},\
             \"strategy\":\"{}\",\"whole_instructions\":{},\"regions\":{},\"samples\":{},\
             \"replicates\":{},\"predicted_instructions\":{},\"speedup_bound\":{},\
             \"max_weight_bound\":{},\"ci_bound_pct\":{{{}}},\"soundness\":[{}]}}",
            SCHEMA,
            self.bench,
            self.slices,
            self.slice_size,
            self.strategy,
            self.whole_instructions,
            self.regions,
            self.samples,
            self.replicates,
            self.predicted_instructions,
            json_f(self.speedup_bound),
            json_f(self.max_weight_bound),
            ci.join(","),
            soundness.join(",")
        )
    }
}

/// Validates a plan report against the `sampsim-plan/v1` schema and the
/// strategy registry.
///
/// # Errors
///
/// Returns a description of the first violation: wrong schema tag,
/// missing or malformed fields, an unregistered strategy, negative
/// bounds, or a malformed soundness array.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("schema: missing or not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema: expected \"{SCHEMA}\", got \"{schema}\""));
    }
    doc.get("bench")
        .and_then(Value::as_str)
        .ok_or("bench: missing or not a string")?;
    let name = doc
        .get("strategy")
        .and_then(Value::as_str)
        .ok_or("strategy: missing or not a string")?;
    if !STRATEGY_NAMES.contains(&name) {
        return Err(format!(
            "strategy: \"{name}\" is not a registered strategy (registry: {STRATEGY_NAMES:?})"
        ));
    }
    for field in ["slices", "slice_size", "regions", "samples", "replicates"] {
        let v = doc
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{field}: missing or not a number"))?;
        if v < 1.0 {
            return Err(format!("{field}: must be >= 1, got {v}"));
        }
    }
    for field in [
        "whole_instructions",
        "predicted_instructions",
        "speedup_bound",
    ] {
        let v = doc
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{field}: missing or not a number"))?;
        if v < 0.0 {
            return Err(format!("{field}: must be >= 0, got {v}"));
        }
    }
    // max_weight_bound may legitimately be null (no static guarantee).
    match doc.get("max_weight_bound") {
        Some(Value::Null) => {}
        Some(v) if v.as_f64().is_some_and(|b| b > 0.0) => {}
        _ => return Err("max_weight_bound: missing, or not null / a positive number".into()),
    }
    let ci = doc.get("ci_bound_pct").ok_or("ci_bound_pct: missing")?;
    for metric in ["cpi", "l1i", "l1d", "l2", "l3"] {
        let v = ci
            .get(metric)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("ci_bound_pct.{metric}: missing or not a number"))?;
        if v < 0.0 {
            return Err(format!("ci_bound_pct.{metric}: must be >= 0, got {v}"));
        }
    }
    let soundness = doc
        .get("soundness")
        .and_then(Value::as_array)
        .ok_or("soundness: missing or not an array")?;
    for (i, d) in soundness.iter().enumerate() {
        for field in ["code", "severity", "message", "help"] {
            d.get(field)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("soundness[{i}].{field}: missing or not a string"))?;
        }
        d.get("location")
            .and_then(|l| l.get("kind"))
            .and_then(Value::as_str)
            .ok_or_else(|| format!("soundness[{i}].location: missing or missing a kind"))?;
    }
    Ok(())
}

/// Truth values (in percent / absolute CPI) below this threshold exempt
/// the metric from the oracle: relative error is numerically meaningless
/// against a near-zero denominator (a miss rate of 0.001% observed as
/// 0.002% is a 100% "error" on noise).
pub const ORACLE_TRUTH_FLOOR: f64 = 0.05;

/// The plan-vs-compare consistency check: every observed relative error
/// in `compare` must fall within the corresponding plan's predicted CI
/// bound. Metrics whose truth value is below [`ORACLE_TRUTH_FLOOR`] are
/// skipped (relative error is undefined near zero). Returns every
/// violation found; an empty vector means the static model held.
pub fn check_against_compare(
    plans: &[PlanReport],
    compare: &crate::compare::CompareReport,
) -> Vec<PlanViolation> {
    let mut violations = Vec::new();
    let truth_mr = compare.truth.miss_rates;
    for row in &compare.strategies {
        let Some(plan) = plans.iter().find(|p| p.strategy == row.strategy) else {
            continue;
        };
        let truth_cpi = compare.truth.cpi.unwrap_or(0.0);
        let mut checks: Vec<(&'static str, f64, f64, f64)> =
            vec![("cpi", row.cpi.error_pct, plan.ci_bound_pct.cpi, truth_cpi)];
        if let Some(mr) = truth_mr {
            checks.push((
                "l1i",
                row.miss_rates.l1i.error_pct,
                plan.ci_bound_pct.l1i,
                mr.l1i,
            ));
            checks.push((
                "l1d",
                row.miss_rates.l1d.error_pct,
                plan.ci_bound_pct.l1d,
                mr.l1d,
            ));
            checks.push((
                "l2",
                row.miss_rates.l2.error_pct,
                plan.ci_bound_pct.l2,
                mr.l2,
            ));
            checks.push((
                "l3",
                row.miss_rates.l3.error_pct,
                plan.ci_bound_pct.l3,
                mr.l3,
            ));
        }
        for (metric, observed, bound, truth) in checks {
            if truth < ORACLE_TRUTH_FLOOR {
                continue;
            }
            if observed > bound {
                violations.push(PlanViolation {
                    strategy: row.strategy.clone(),
                    metric,
                    observed_pct: observed,
                    bound_pct: bound,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_simpoint::SimPointOptions;
    use sampsim_workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("plan-test", 13)
            .total_insts(120_000)
            .phase(PhaseSpec::memory_bound(1.0))
            .phase(PhaseSpec::compute_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 6_000,
                jitter: 0.3,
                align: 0,
            })
            .build()
            .build()
    }

    fn config() -> PinPointsConfig {
        PinPointsConfig {
            slice_size: 1_000,
            simpoint: SimPointOptions {
                max_k: 6,
                ..Default::default()
            },
            warmup_slices: 5,
            profile_cache: None,
            ..Default::default()
        }
    }

    #[test]
    fn plans_cover_the_registry_and_validate() {
        for spec in StrategySpec::registry() {
            let plan = plan_strategy(&program(), &config(), Some(&spec)).unwrap();
            assert_eq!(plan.strategy, spec.name());
            assert_eq!(plan.slices, 120);
            assert!(plan.regions >= 1);
            assert!(plan.predicted_instructions > 0);
            // On this tiny fixture stratified2p's 30-sample default costs
            // more than the whole run — which is exactly what SA145 is
            // for, so the plan must say so rather than flatter it.
            assert!(plan.speedup_bound > 0.0, "{}: {plan:?}", spec.name());
            if plan.speedup_bound <= 1.0 {
                assert!(
                    plan.soundness.iter().any(|d| d.rule.code() == "SA145"),
                    "{}: sub-1.0 speedup without SA145: {plan:?}",
                    spec.name()
                );
            }
            for (metric, bound) in plan.ci_bound_pct.named() {
                assert!(bound > 0.0, "{}: {metric} bound is {bound}", spec.name());
            }
            validate_report(&plan.to_json()).unwrap();
        }
    }

    #[test]
    fn plan_embeds_soundness_findings() {
        // rss:replicates=1 is the SA144 trigger; the plan must report it
        // rather than refuse to plan.
        let spec = StrategySpec::parse_spec("rss:replicates=1").unwrap();
        let plan = plan_strategy(&program(), &config(), Some(&spec)).unwrap();
        assert!(
            plan.soundness.iter().any(|d| d.rule.code() == "SA144"),
            "{:?}",
            plan.soundness
        );
        let json = plan.to_json();
        assert!(json.contains("\"SA144\""), "{json}");
        validate_report(&json).unwrap();
        // Structural errors still abort: slice_size 0 cannot be planned.
        let mut broken = config();
        broken.slice_size = 0;
        assert!(matches!(
            plan_strategy(&program(), &broken, None),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn census_plans_have_zero_ci_bounds_and_no_speedup() {
        // MaxK 500 over 120 slices: a census. The CI bound collapses to 0
        // and SA141 appears in the embedded soundness findings.
        let mut cfg = config();
        cfg.simpoint.max_k = 500;
        let plan = plan_strategy(&program(), &cfg, None).unwrap();
        assert_eq!(plan.regions as u64, plan.slices);
        for (metric, bound) in plan.ci_bound_pct.named() {
            assert_eq!(bound, 0.0, "{metric}");
        }
        assert!(plan.soundness.iter().any(|d| d.rule.code() == "SA141"));
    }

    #[test]
    fn ci_bound_is_monotone_non_increasing_in_samples() {
        let mut prev = f64::INFINITY;
        for samples in 1..=240 {
            let b = ci_bound_pct(CPI_CV_BOUND, samples, 240);
            assert!(b <= prev, "samples {samples}: {b} > {prev}");
            assert!(b >= 0.0);
            prev = b;
        }
        assert_eq!(ci_bound_pct(CPI_CV_BOUND, 240, 240), 0.0);
    }

    #[test]
    fn validator_rejects_drift() {
        let plan = plan_strategy(&program(), &config(), None).unwrap();
        let json = plan.to_json();
        validate_report(&json).unwrap();
        let unknown = json.replace("\"strategy\":\"simpoint\"", "\"strategy\":\"frobnicate\"");
        assert!(validate_report(&unknown)
            .unwrap_err()
            .contains("frobnicate"));
        let wrong = json.replace(SCHEMA, "sampsim-plan/v0");
        assert!(validate_report(&wrong).unwrap_err().contains("schema"));
        let negative = json.replace("\"samples\":6", "\"samples\":0");
        assert!(validate_report(&negative).unwrap_err().contains("samples"));
        assert!(validate_report("nonsense").is_err());
    }

    #[test]
    fn check_against_compare_flags_escapes() {
        let plans: Vec<PlanReport> = StrategySpec::registry()
            .iter()
            .map(|s| plan_strategy(&program(), &config(), Some(s)).unwrap())
            .collect();
        let compare =
            crate::compare::compare_strategies(&program(), &config(), 2, sampsim_exec::SERIAL)
                .unwrap();
        // The honest plans hold on this workload...
        let violations = check_against_compare(&plans, &compare);
        assert!(violations.is_empty(), "{violations:?}");
        // ...and doctored (too-narrow) bounds are caught.
        let doctored: Vec<PlanReport> = plans
            .iter()
            .map(|p| {
                let mut d = p.clone();
                d.ci_bound_pct = CiBounds {
                    cpi: p.ci_bound_pct.cpi / 1e6,
                    l1i: p.ci_bound_pct.l1i / 1e6,
                    l1d: p.ci_bound_pct.l1d / 1e6,
                    l2: p.ci_bound_pct.l2 / 1e6,
                    l3: p.ci_bound_pct.l3 / 1e6,
                };
                d
            })
            .collect();
        let violations = check_against_compare(&doctored, &compare);
        assert!(!violations.is_empty());
    }
}

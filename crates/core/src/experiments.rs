//! Table/figure-level experiment drivers.
//!
//! [`Study`] computes (and caches) per-benchmark [`BenchResult`]s; the
//! sweep functions implement the paper's design-space explorations. The
//! benchmark harness (`sampsim-bench`) formats these into the tables and
//! series the paper reports.

use crate::artifacts::ArtifactStore;
use crate::bench_result::{BenchResult, StudyConfig};
use crate::error::CoreError;
use crate::metrics::{aggregate_weighted, AggregatedMetrics, MissRates, RunMetrics};
use crate::pipeline::Pipeline;
use crate::runs::{self, WarmupMode};
use sampsim_cache::configs;
use sampsim_simpoint::{SimPointAnalysis, SimPointOptions};
use sampsim_spec2017::{benchmark, BenchmarkId};
use sampsim_util::hash::Fnv64;
use sampsim_util::scale::Scale;

/// One row of a MaxK / slice-size sweep (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The swept parameter value (MaxK, or slice size in instructions).
    pub param: u64,
    /// Number of simulation points chosen.
    pub num_points: usize,
    /// Weighted instruction-mix distribution of the sampled run.
    pub mix_pct: [f64; 4],
    /// Weighted cache miss rates of the sampled run.
    pub miss_rates: MissRates,
}

/// Result of a design-space sweep, with the whole-run reference row.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Benchmark swept.
    pub name: String,
    /// Whole-run reference (mix + miss rates).
    pub whole: AggregatedMetrics,
    /// One row per swept value.
    pub rows: Vec<SweepRow>,
}

/// Computes and caches per-benchmark study results.
#[derive(Debug)]
pub struct Study {
    config: StudyConfig,
    scale: Scale,
    store: Option<ArtifactStore>,
    /// Print progress lines to stderr while computing.
    pub verbose: bool,
}

impl Study {
    /// A study at the given scale with the default (paper) configuration.
    pub fn new(scale: Scale) -> Self {
        Self {
            config: StudyConfig::default(),
            scale,
            store: None,
            verbose: false,
        }
    }

    /// Overrides the study configuration.
    pub fn with_config(mut self, config: StudyConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an on-disk artifact store.
    pub fn with_store(mut self, store: ArtifactStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The study configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The workload scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    fn cache_key(&self, id: BenchmarkId) -> String {
        let mut h = Fnv64::new();
        h.write_str(&format!("{:?}", self.config));
        h.write_f64(self.scale.factor());
        // The program digest ties the artifact to the exact generated
        // workload, so suite re-calibrations invalidate stale results.
        h.write_u64(benchmark(id).scaled(self.scale).build().digest());
        format!("{}-{:016x}", id.name(), h.finish())
    }

    /// Computes (or loads) the full measurement record for one benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when simulation or the artifact store fails.
    pub fn bench_result(&self, id: BenchmarkId) -> Result<BenchResult, CoreError> {
        let compute = || {
            if self.verbose {
                eprintln!("[sampsim] computing {} ...", id.name());
            }
            let started = std::time::Instant::now();
            let r = BenchResult::compute(&benchmark(id), self.scale, &self.config);
            if self.verbose {
                if let Ok(ref r) = r {
                    eprintln!(
                        "[sampsim]   {}: {} slices, {} points, {:.1}s",
                        id.name(),
                        r.num_slices,
                        r.num_points(),
                        started.elapsed().as_secs_f64()
                    );
                }
            }
            r
        };
        match &self.store {
            Some(store) => store.get_or_compute(&self.cache_key(id), compute),
            None => compute(),
        }
    }

    /// Computes (or loads) the whole suite, in Table II order.
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn suite_results(&self) -> Result<Vec<BenchResult>, CoreError> {
        BenchmarkId::ALL
            .iter()
            .map(|&id| self.bench_result(id))
            .collect()
    }
}

/// Runs the Fig. 3(a) MaxK sweep for one benchmark: profile once, recluster
/// per MaxK, replay the resulting simulation points cold, and compare mix +
/// miss rates against the whole run.
///
/// # Errors
///
/// Returns [`CoreError`] when the pipeline or a replay fails.
pub fn maxk_sweep(
    id: BenchmarkId,
    maxks: &[usize],
    scale: Scale,
    config: &StudyConfig,
) -> Result<SweepResult, CoreError> {
    let config = config.scaled(scale);
    let program = benchmark(id).scaled(scale).build();
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = Some(configs::allcache_table1());
    let pipeline = Pipeline::new(pp.clone());
    let (bbvs, starts, whole) = pipeline.profile(&program);
    let whole_agg = crate::metrics::whole_as_aggregate(&whole);
    let mut rows = Vec::with_capacity(maxks.len());
    for &maxk in maxks {
        let opts = SimPointOptions {
            max_k: maxk,
            ..pp.simpoint
        };
        let simpoints = SimPointAnalysis::new(opts).run(&bbvs, pp.slice_size)?;
        let regional = pipeline.regionals_for(&program, &simpoints, &starts);
        let region_metrics = runs::run_regions_functional(
            &program,
            &regional,
            configs::allcache_table1(),
            WarmupMode::None,
        )?;
        let agg = aggregate_weighted(&region_metrics);
        rows.push(SweepRow {
            param: maxk as u64,
            num_points: regional.len(),
            mix_pct: agg.mix_pct,
            miss_rates: agg.miss_rates.expect("cache stats collected"),
        });
    }
    Ok(SweepResult {
        name: id.name().to_string(),
        whole: whole_agg,
        rows,
    })
}

/// Runs the Fig. 3(b) slice-size sweep for one benchmark: re-profile per
/// slice size (BBV granularity changes), cluster at the configured MaxK,
/// replay cold and compare against the whole run.
///
/// # Errors
///
/// Returns [`CoreError`] when the pipeline or a replay fails.
pub fn slice_sweep(
    id: BenchmarkId,
    slice_sizes: &[u64],
    scale: Scale,
    config: &StudyConfig,
) -> Result<SweepResult, CoreError> {
    let config = config.scaled(scale);
    let program = benchmark(id).scaled(scale).build();
    // Whole-run reference measured once (it does not depend on slicing).
    let whole = runs::run_whole_functional(&program, configs::allcache_table1());
    let whole_agg = crate::metrics::whole_as_aggregate(&whole);
    let mut rows = Vec::with_capacity(slice_sizes.len());
    for &slice in slice_sizes {
        let mut pp = config.pinpoints.clone();
        pp.slice_size = slice;
        pp.profile_cache = None;
        let pipeline = Pipeline::new(pp.clone());
        let (bbvs, starts, _metrics) = pipeline.profile(&program);
        let simpoints = SimPointAnalysis::new(pp.simpoint).run(&bbvs, slice)?;
        let regional = pipeline.regionals_for(&program, &simpoints, &starts);
        let region_metrics = runs::run_regions_functional(
            &program,
            &regional,
            configs::allcache_table1(),
            WarmupMode::None,
        )?;
        let agg = aggregate_weighted(&region_metrics);
        rows.push(SweepRow {
            param: slice,
            num_points: regional.len(),
            mix_pct: agg.mix_pct,
            miss_rates: agg.miss_rates.expect("cache stats collected"),
        });
    }
    Ok(SweepResult {
        name: id.name().to_string(),
        whole: whole_agg,
        rows,
    })
}

/// One row of the Fig. 9 percentile sweep: suite-average errors vs the
/// whole run, plus total simulation time, when only the top-weighted
/// simulation points covering `percentile` are executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileRow {
    /// Percentile of total weight retained (e.g. 90).
    pub percentile: u32,
    /// Suite-average instruction-mix error (max over categories), in
    /// percentage points.
    pub mix_err_pp: f64,
    /// Suite-average absolute L1D miss-rate error (pp).
    pub l1d_err_pp: f64,
    /// Suite-average absolute L2 miss-rate error (pp).
    pub l2_err_pp: f64,
    /// Suite-average absolute L3 miss-rate error (pp).
    pub l3_err_pp: f64,
    /// Total wall-clock seconds to simulate the retained regions across
    /// the suite.
    pub exec_seconds: f64,
    /// Average number of retained points per benchmark.
    pub avg_points: f64,
}

/// Computes the Fig. 9 sweep from already-computed benchmark results (the
/// reduced runs reuse the cached per-region replays).
///
/// # Panics
///
/// Panics if `results` is empty or a percentile is outside `(0, 100]`.
pub fn percentile_sweep(results: &[BenchResult], percentiles: &[u32]) -> Vec<PercentileRow> {
    assert!(!results.is_empty(), "no benchmark results");
    percentiles
        .iter()
        .map(|&pct| {
            assert!((1..=100).contains(&pct), "percentile out of range");
            let p = f64::from(pct) / 100.0;
            let mut mix_err = 0.0;
            let (mut l1d, mut l2, mut l3) = (0.0, 0.0, 0.0);
            let mut secs = 0.0;
            let mut points = 0usize;
            for r in results {
                let whole = r.whole_aggregate();
                let reduced = r.reduced_aggregate(p);
                let whole_mr = whole.miss_rates.expect("whole cache stats");
                let red_mr = reduced.miss_rates.expect("regional cache stats");
                mix_err += max_abs_diff(&reduced.mix_pct, &whole.mix_pct);
                l1d += (red_mr.l1d - whole_mr.l1d).abs();
                l2 += (red_mr.l2 - whole_mr.l2).abs();
                l3 += (red_mr.l3 - whole_mr.l3).abs();
                secs += reduced.total_wall_seconds;
                points += r.num_points_at(p);
            }
            let n = results.len() as f64;
            PercentileRow {
                percentile: pct,
                mix_err_pp: mix_err / n,
                l1d_err_pp: l1d / n,
                l2_err_pp: l2 / n,
                l3_err_pp: l3 / n,
                exec_seconds: secs,
                avg_points: points as f64 / n,
            }
        })
        .collect()
}

fn max_abs_diff(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Convenience: computes a baseline-sampler aggregate (periodic or random
/// slice selection) for comparison against SimPoint selection on the same
/// program — used by the ablation benches.
///
/// # Errors
///
/// Returns [`CoreError`] when a replay fails.
pub fn baseline_aggregate(
    id: BenchmarkId,
    scale: Scale,
    config: &StudyConfig,
    points: &[sampsim_simpoint::SimPoint],
) -> Result<(AggregatedMetrics, AggregatedMetrics), CoreError> {
    let config = config.scaled(scale);
    let program = benchmark(id).scaled(scale).build();
    let mut pp = config.pinpoints.clone();
    pp.profile_cache = Some(configs::allcache_table1());
    let pipeline = Pipeline::new(pp.clone());
    let (_bbvs, starts, whole) = pipeline.profile(&program);
    let fake = sampsim_simpoint::SimPointsResult {
        k: points.len(),
        slice_size: pp.slice_size,
        assignments: vec![],
        points: points.to_vec(),
        bic_scores: vec![],
        avg_variance: 0.0,
    };
    let regional = pipeline.regionals_for(&program, &fake, &starts);
    let metrics = runs::run_regions_functional(
        &program,
        &regional,
        configs::allcache_table1(),
        WarmupMode::None,
    )?;
    Ok((
        aggregate_weighted(&metrics),
        crate::metrics::whole_as_aggregate(&whole),
    ))
}

/// Whole-run metrics alone (used by baselines that need the reference
/// without a full study).
pub fn whole_reference(id: BenchmarkId, scale: Scale) -> RunMetrics {
    let program = benchmark(id).scaled(scale).build();
    runs::run_whole_functional(&program, configs::allcache_table1())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> StudyConfig {
        let mut c = StudyConfig::default();
        c.pinpoints.simpoint = SimPointOptions {
            max_k: 6,
            sample_size: 1_000,
            ..Default::default()
        };
        c.fig4_ks = vec![2, 4];
        c
    }

    #[test]
    fn study_cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sampsim-study-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        let study = Study::new(Scale::new(0.01))
            .with_config(tiny_config())
            .with_store(store);
        let a = study.bench_result(BenchmarkId::OmnetppS).unwrap();
        let b = study.bench_result(BenchmarkId::OmnetppS).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn maxk_sweep_shapes() {
        let r = maxk_sweep(
            BenchmarkId::OmnetppS,
            &[2, 6],
            Scale::new(0.01),
            &tiny_config(),
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows[0].num_points <= 2);
        // Larger MaxK should not track the whole run worse on the mix.
        let err = |row: &SweepRow| max_abs_diff(&row.mix_pct, &r.whole.mix_pct);
        assert!(err(&r.rows[1]) <= err(&r.rows[0]) + 1.5);
    }

    #[test]
    fn percentile_sweep_monotone_cost() {
        let study = Study::new(Scale::new(0.01)).with_config(tiny_config());
        let results = vec![study.bench_result(BenchmarkId::OmnetppS).unwrap()];
        let rows = percentile_sweep(&results, &[50, 90, 100]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].avg_points <= rows[2].avg_points);
        // 100th percentile = full regional run: lowest errors typically.
        assert!(rows[2].mix_err_pp <= rows[0].mix_err_pp + 2.0);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use sampsim_simpoint::SimPointOptions;

    fn tiny() -> StudyConfig {
        let mut c = StudyConfig::default();
        c.pinpoints.simpoint = SimPointOptions {
            max_k: 6,
            sample_size: 1_000,
            ..Default::default()
        };
        c
    }

    #[test]
    fn slice_sweep_rows_and_llc_trend() {
        let scale = Scale::new(0.01);
        let slices = [scale.apply(5_000), scale.apply(10_000), scale.apply(33_333)];
        let r = slice_sweep(BenchmarkId::OmnetppS, &slices, scale, &tiny()).unwrap();
        assert_eq!(r.rows.len(), 3);
        let whole_l3 = r.whole.miss_rates.expect("cache stats").l3;
        // Every cold sampled run over-reports the L3 miss rate, and the
        // largest slice is closest to the full run (Fig. 3(b) trend).
        for row in &r.rows {
            assert!(row.miss_rates.l3 >= whole_l3 - 1e-9);
        }
        let small_err = (r.rows[0].miss_rates.l3 - whole_l3).abs();
        let large_err = (r.rows[2].miss_rates.l3 - whole_l3).abs();
        assert!(
            large_err <= small_err + 1e-9,
            "L3 error should shrink with slice size ({small_err:.2} -> {large_err:.2})"
        );
    }

    #[test]
    fn baseline_aggregate_runs_periodic_points() {
        let scale = Scale::new(0.01);
        let points = sampsim_simpoint::baselines::periodic(50, 5);
        let (sampled, whole) =
            baseline_aggregate(BenchmarkId::OmnetppS, scale, &tiny(), &points).unwrap();
        assert!(sampled.total_instructions > 0);
        assert!(whole.total_instructions > sampled.total_instructions);
    }
}

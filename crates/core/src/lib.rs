//! The PinPoints pipeline and the paper's experiments.
//!
//! This crate ties every substrate together into the methodology of Fig. 2
//! of the paper:
//!
//! ```text
//!  program ──▶ whole profiling pass ──▶ BBVs + slice checkpoints
//!                      │                        │
//!                      ▼                        ▼
//!               whole pinball           SimPoint clustering
//!                                               │
//!                                               ▼
//!                                     regional pinballs (+weights)
//!                                               │
//!                         ┌─────────────────────┼──────────────────┐
//!                         ▼                     ▼                  ▼
//!                 Regional Run         Reduced Regional     Warmup Regional
//!                 (all points)         (90th percentile)    (primed caches)
//! ```
//!
//! * [`pipeline`] — [`pipeline::Pipeline`] produces simulation
//!   points and checkpoints from a program in one profiling pass.
//! * [`metrics`] — run metrics and the weighted-aggregation rules (only
//!   per-instruction-normalized statistics may be weighted; the paper
//!   stresses CPI is safe where IPC is not).
//! * [`runs`] — executors for the four run kinds over functional tools and
//!   the timing model.
//! * [`bench_result`] — everything the paper measures for one benchmark,
//!   cacheable on disk via [`artifacts`].
//! * [`experiments`] — the table/figure-level drivers (`MaxK` and slice
//!   sweeps, percentile sweep, suite runner).
//!
//! # Example
//!
//! ```
//! use sampsim_core::{PinPointsConfig, Pipeline};
//! use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
//!
//! let program = WorkloadSpec::builder("demo", 3)
//!     .total_insts(60_000)
//!     .phase(PhaseSpec::balanced(1.0))
//!     .phase(PhaseSpec::memory_bound(1.0))
//!     .build()
//!     .build();
//! let mut config = PinPointsConfig::default();
//! config.slice_size = 1_000;
//! config.simpoint.max_k = 10;
//! let result = Pipeline::new(config).run(&program).unwrap();
//! assert!(result.regional.len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod bench_result;
pub mod compare;
pub mod error;
pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod plan;
pub mod runs;
pub mod stage_cache;

pub use bench_result::BenchResult;
pub use error::CoreError;
pub use metrics::{AggregatedMetrics, RunMetrics};
pub use pipeline::{PinPointsConfig, Pipeline, PipelineResult, Preflight};
pub use plan::{plan_strategy, PlanReport};
pub use runs::WarmupMode;
pub use stage_cache::{MemoryStageCache, NoCache, StageCache};

//! The complete measurement record for one benchmark.
//!
//! [`BenchResult::compute`] performs every run the paper's evaluation needs
//! for a benchmark (two whole passes + per-region replays) and the record
//! is serializable, so the benchmark harness computes each benchmark once
//! and regenerates all figures from the cached artifact.

use crate::error::CoreError;
use crate::metrics::{aggregate_weighted, AggregatedMetrics, RunMetrics};
use crate::pipeline::{PinPointsConfig, Pipeline};
use crate::runs::{self, WarmupMode};
use sampsim_cache::{configs, HierarchyConfig};
use sampsim_simpoint::select::{reduce_to_percentile, SimPoint};
use sampsim_simpoint::variance::variance_sweep;
use sampsim_spec2017::BenchmarkSpec;
use sampsim_uarch::{native, CoreConfig, NativeConfig, PerfCounters};
use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use sampsim_util::scale::Scale;

/// Study-wide configuration: everything an experiment fixes across the
/// suite.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// Pipeline (slice size, MaxK, warmup, profile cache).
    pub pinpoints: PinPointsConfig,
    /// Core model for timing runs (Table III).
    pub core: CoreConfig,
    /// Memory system for timing runs (Table III).
    pub timing_hierarchy: HierarchyConfig,
    /// Native-machine perturbation model.
    pub native: NativeConfig,
    /// Cluster counts for the Fig. 4 variance sweep.
    pub fig4_ks: Vec<usize>,
    /// Maximum slices used for the Fig. 4 sweep (subsampled beyond this).
    pub fig4_sample: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        let pinpoints = PinPointsConfig {
            profile_cache: Some(configs::allcache_table1()),
            ..PinPointsConfig::default()
        };
        Self {
            pinpoints,
            core: CoreConfig::table3(),
            timing_hierarchy: configs::i7_table3(),
            native: NativeConfig::default(),
            fig4_ks: vec![5, 10, 15, 20, 25, 30, 35],
            fig4_sample: 3_000,
        }
    }
}

impl StudyConfig {
    /// Returns a copy with slice-linked parameters scaled, so tests and
    /// examples can run the same study at reduced size while keeping the
    /// slices-per-program ratio.
    pub fn scaled(&self, scale: Scale) -> Self {
        let mut out = self.clone();
        out.pinpoints.slice_size = scale.apply(self.pinpoints.slice_size);
        out
    }
}

/// Per-region measurements (one simulation point).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionMetrics {
    /// Slice index of the region.
    pub slice: u64,
    /// SimPoint weight.
    pub weight: f64,
    /// Cluster id.
    pub cluster: u32,
    /// Functional replay with cold caches (the default Regional Run).
    pub cold: RunMetrics,
    /// Functional replay after checkpointed warmup (Warmup Regional Run).
    pub warm: RunMetrics,
    /// Timing replay (Sniper) after warmup.
    pub timing: RunMetrics,
}

impl RegionMetrics {
    fn simpoint(&self) -> SimPoint {
        SimPoint {
            slice: self.slice,
            cluster: self.cluster,
            weight: self.weight,
        }
    }
}

/// Everything the paper measures for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// SPEC benchmark name.
    pub name: String,
    /// Sub-suite label.
    pub suite_label: String,
    /// Slice size used.
    pub slice_size: u64,
    /// Number of slices in the whole run.
    pub num_slices: u64,
    /// Chosen cluster count.
    pub chosen_k: usize,
    /// Whole run: functional metrics incl. Table I cache stats; wall time
    /// covers the full profiling pass (checkpoint logging + tools).
    pub whole: RunMetrics,
    /// Whole run through the timing model (Table III machine).
    pub whole_timing: RunMetrics,
    /// Native-hardware perf counters for the whole program.
    pub native: PerfCounters,
    /// Per-simulation-point measurements, sorted by slice.
    pub regions: Vec<RegionMetrics>,
    /// Fig. 4 sweep: `(k, average intra-cluster variance)`.
    pub cluster_variance: Vec<(usize, f64)>,
}

impl BenchResult {
    /// Runs the full study for one benchmark at the given scale.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the pipeline or a replay fails.
    pub fn compute(
        spec: &BenchmarkSpec,
        scale: Scale,
        config: &StudyConfig,
    ) -> Result<Self, CoreError> {
        let config = config.scaled(scale);
        let program = spec.scaled(scale).build();
        let pipeline = Pipeline::new(config.pinpoints.clone());

        // One profiling pass: BBVs, slice checkpoints, ldstmix + allcache.
        let (bbvs, starts, whole) = pipeline.profile(&program);
        let simpoints = sampsim_simpoint::SimPointAnalysis::new(config.pinpoints.simpoint)
            .run(&bbvs, config.pinpoints.slice_size)?;
        let regional = pipeline.regionals_for(&program, &simpoints, &starts);

        // Fig. 4 variance sweep on a subsample of the same BBVs.
        let sampled: Vec<_> = if bbvs.len() > config.fig4_sample {
            let step = bbvs.len().div_ceil(config.fig4_sample);
            bbvs.iter().step_by(step).cloned().collect()
        } else {
            bbvs.clone()
        };
        let ks: Vec<usize> = config
            .fig4_ks
            .iter()
            .copied()
            .filter(|&k| k <= sampled.len())
            .collect();
        let cluster_variance = variance_sweep(&sampled, &ks, &config.pinpoints.simpoint);
        drop(bbvs);
        drop(starts);

        // Whole timing pass + native perturbation.
        let whole_timing = runs::run_whole_timing(&program, config.core, config.timing_hierarchy);
        let native = native::perturb(
            whole_timing.timing.as_ref().expect("timing run"),
            &config.native,
            0xACE,
            program.digest(),
        );

        // Per-region replays.
        let cache_cfg = config
            .pinpoints
            .profile_cache
            .unwrap_or_else(configs::allcache_table1);
        let mut regions = Vec::with_capacity(regional.len());
        for pb in &regional {
            let cold = runs::run_region_functional(&program, pb, cache_cfg, WarmupMode::None)?;
            let warm =
                runs::run_region_functional(&program, pb, cache_cfg, WarmupMode::Checkpointed)?;
            let timing = runs::run_region_timing(
                &program,
                pb,
                config.core,
                config.timing_hierarchy,
                WarmupMode::Checkpointed,
            )?;
            regions.push(RegionMetrics {
                slice: pb.slice_index,
                weight: pb.weight,
                cluster: pb.cluster,
                cold,
                warm,
                timing,
            });
        }

        Ok(Self {
            name: spec.name().to_string(),
            suite_label: spec.suite().label().to_string(),
            slice_size: config.pinpoints.slice_size,
            num_slices: simpoints.assignments.len() as u64,
            chosen_k: simpoints.k,
            whole,
            whole_timing,
            native,
            regions,
            cluster_variance,
        })
    }

    /// Number of simulation points.
    pub fn num_points(&self) -> usize {
        self.regions.len()
    }

    /// Number of points covering `percentile` of total weight
    /// (Table II column 3 uses 0.9).
    pub fn num_points_at(&self, percentile: f64) -> usize {
        let points: Vec<SimPoint> = self.regions.iter().map(|r| r.simpoint()).collect();
        reduce_to_percentile(&points, percentile).len()
    }

    /// The subset of regions covering `percentile` of total weight, with
    /// renormalized weights (the Reduced Regional Run derives from the same
    /// per-region replays — each region executes identically cold).
    pub fn reduced_regions(&self, percentile: f64) -> Vec<(&RegionMetrics, f64)> {
        let points: Vec<SimPoint> = self.regions.iter().map(|r| r.simpoint()).collect();
        let reduced = reduce_to_percentile(&points, percentile);
        reduced
            .iter()
            .map(|p| {
                let region = self
                    .regions
                    .iter()
                    .find(|r| r.slice == p.slice)
                    .expect("reduced point maps to a region");
                (region, p.weight)
            })
            .collect()
    }

    /// Weighted aggregate of the cold Regional Run.
    pub fn regional_aggregate(&self) -> AggregatedMetrics {
        let pairs: Vec<(RunMetrics, f64)> = self
            .regions
            .iter()
            .map(|r| (r.cold.clone(), r.weight))
            .collect();
        aggregate_weighted(&pairs)
    }

    /// Weighted aggregate of the Reduced Regional Run at `percentile`.
    pub fn reduced_aggregate(&self, percentile: f64) -> AggregatedMetrics {
        let pairs: Vec<(RunMetrics, f64)> = self
            .reduced_regions(percentile)
            .into_iter()
            .map(|(r, w)| (r.cold.clone(), w))
            .collect();
        aggregate_weighted(&pairs)
    }

    /// Weighted aggregate of the Warmup Regional Run.
    pub fn warmup_aggregate(&self) -> AggregatedMetrics {
        let pairs: Vec<(RunMetrics, f64)> = self
            .regions
            .iter()
            .map(|r| (r.warm.clone(), r.weight))
            .collect();
        aggregate_weighted(&pairs)
    }

    /// Weighted CPI of the timing Regional Run (Sniper on simulation
    /// points).
    pub fn regional_cpi(&self) -> f64 {
        let pairs: Vec<(RunMetrics, f64)> = self
            .regions
            .iter()
            .map(|r| (r.timing.clone(), r.weight))
            .collect();
        aggregate_weighted(&pairs).cpi.expect("timing metrics")
    }

    /// Weighted CPI of the reduced timing run at `percentile`.
    pub fn reduced_cpi(&self, percentile: f64) -> f64 {
        let pairs: Vec<(RunMetrics, f64)> = self
            .reduced_regions(percentile)
            .into_iter()
            .map(|(r, w)| (r.timing.clone(), w))
            .collect();
        aggregate_weighted(&pairs).cpi.expect("timing metrics")
    }

    /// The whole run expressed in aggregate form.
    pub fn whole_aggregate(&self) -> AggregatedMetrics {
        crate::metrics::whole_as_aggregate(&self.whole)
    }
}

impl Encode for RegionMetrics {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.slice);
        enc.put_f64(self.weight);
        enc.put_u32(self.cluster);
        self.cold.encode(enc);
        self.warm.encode(enc);
        self.timing.encode(enc);
    }
}

impl Decode for RegionMetrics {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            slice: dec.take_u64()?,
            weight: dec.take_f64()?,
            cluster: dec.take_u32()?,
            cold: RunMetrics::decode(dec)?,
            warm: RunMetrics::decode(dec)?,
            timing: RunMetrics::decode(dec)?,
        })
    }
}

impl Encode for BenchResult {
    fn encode(&self, enc: &mut Encoder) {
        self.name.encode(enc);
        self.suite_label.encode(enc);
        enc.put_u64(self.slice_size);
        enc.put_u64(self.num_slices);
        self.chosen_k.encode(enc);
        self.whole.encode(enc);
        self.whole_timing.encode(enc);
        self.native.encode(enc);
        self.regions.encode(enc);
        enc.put_u32(self.cluster_variance.len() as u32);
        for &(k, v) in &self.cluster_variance {
            k.encode(enc);
            enc.put_f64(v);
        }
    }
}

impl Decode for BenchResult {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let name = String::decode(dec)?;
        let suite_label = String::decode(dec)?;
        let slice_size = dec.take_u64()?;
        let num_slices = dec.take_u64()?;
        let chosen_k = usize::decode(dec)?;
        let whole = RunMetrics::decode(dec)?;
        let whole_timing = RunMetrics::decode(dec)?;
        let native = PerfCounters::decode(dec)?;
        let regions = Vec::<RegionMetrics>::decode(dec)?;
        let n = dec.take_u32()? as usize;
        let mut cluster_variance = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let k = usize::decode(dec)?;
            let v = dec.take_f64()?;
            cluster_variance.push((k, v));
        }
        Ok(Self {
            name,
            suite_label,
            slice_size,
            num_slices,
            chosen_k,
            whole,
            whole_timing,
            native,
            regions,
            cluster_variance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_simpoint::SimPointOptions;
    use sampsim_spec2017::BenchmarkId;

    fn small_config() -> StudyConfig {
        let mut c = StudyConfig::default();
        c.pinpoints.simpoint = SimPointOptions {
            max_k: 8,
            sample_size: 1_500,
            ..Default::default()
        };
        c.fig4_ks = vec![2, 4, 8];
        c
    }

    #[test]
    fn compute_small_benchmark() {
        let spec = sampsim_spec2017::benchmark(BenchmarkId::OmnetppS);
        let r = BenchResult::compute(&spec, Scale::new(0.02), &small_config()).unwrap();
        assert_eq!(r.name, "620.omnetpp_s");
        assert!(r.num_points() >= 2, "points {}", r.num_points());
        assert!(r.num_points_at(0.9) <= r.num_points());
        let agg = r.regional_aggregate();
        let whole = r.whole_aggregate();
        // Instruction mix within a few points of the whole run even at
        // tiny scale.
        for (a, b) in agg.mix_pct.iter().zip(&whole.mix_pct) {
            assert!((a - b).abs() < 6.0, "mix {a} vs {b}");
        }
        assert!(r.regional_cpi() > 0.25);
        assert!(r.native.cpi() > 0.25);
        assert_eq!(r.cluster_variance.len(), 3);
        // Variance shrinks with k.
        assert!(r.cluster_variance[0].1 >= r.cluster_variance[2].1 - 1e-12);
    }

    #[test]
    fn codec_roundtrip() {
        let spec = sampsim_spec2017::benchmark(BenchmarkId::OmnetppS);
        let r = BenchResult::compute(&spec, Scale::new(0.01), &small_config()).unwrap();
        let bytes = sampsim_util::codec::to_bytes(&r);
        let back: BenchResult = sampsim_util::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn reduced_weights_renormalized() {
        let spec = sampsim_spec2017::benchmark(BenchmarkId::OmnetppS);
        let r = BenchResult::compute(&spec, Scale::new(0.01), &small_config()).unwrap();
        let reduced = r.reduced_regions(0.9);
        let w: f64 = reduced.iter().map(|(_, w)| *w).sum();
        assert!((w - 1.0).abs() < 1e-9);
        assert!(reduced.len() <= r.num_points());
    }
}

//! Crate-wide error type.

use sampsim_analyze::{Diagnostic, Severity};
use sampsim_pinball::store::StoreError;
use sampsim_pinball::PinballError;
use sampsim_simpoint::SimPointError;
use std::fmt;

/// Errors raised by the pipeline and experiment runners.
#[derive(Debug)]
pub enum CoreError {
    /// The pipeline configuration failed its lint pass. Carries every
    /// error-severity diagnostic the pass produced.
    Config(Vec<Diagnostic>),
    /// SimPoint analysis failed.
    SimPoint(SimPointError),
    /// Checkpoint attach/replay failed.
    Pinball(PinballError),
    /// Artifact or pinball file I/O failed.
    Store(StoreError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(diags) => {
                write!(f, "invalid pipeline configuration:")?;
                for d in diags.iter().filter(|d| d.severity == Severity::Error) {
                    write!(f, " [{}] {};", d.rule.code(), d.message)?;
                }
                Ok(())
            }
            CoreError::SimPoint(e) => write!(f, "simpoint analysis failed: {e}"),
            CoreError::Pinball(e) => write!(f, "pinball error: {e}"),
            CoreError::Store(e) => write!(f, "artifact store error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Config(_) => None,
            CoreError::SimPoint(e) => Some(e),
            CoreError::Pinball(e) => Some(e),
            CoreError::Store(e) => Some(e),
        }
    }
}

impl From<SimPointError> for CoreError {
    fn from(e: SimPointError) -> Self {
        CoreError::SimPoint(e)
    }
}

impl From<PinballError> for CoreError {
    fn from(e: PinballError) -> Self {
        CoreError::Pinball(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let e = CoreError::from(SimPointError::NoSlices);
        assert!(!e.to_string().is_empty());
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Run metrics and weighted aggregation.
//!
//! The paper (§IV-D) adopts the PinPoints reporting rule: each regional
//! pinball is profiled individually and a *weighted average of statistics
//! normalized by instruction count* is reported. Rates (miss rates, CPI)
//! are therefore aggregated by weighting each region's per-instruction
//! numerator and denominator, never by averaging the rates themselves.

use sampsim_cache::HierarchyStats;
use sampsim_pin::tools::MixCounts;
use sampsim_uarch::{CpiStack, TimingStats};
use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Everything measured for one run (whole or one region).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMetrics {
    /// Instructions executed.
    pub instructions: u64,
    /// `ldstmix` category counts.
    pub mix: MixCounts,
    /// Cache hierarchy counters (functional runs).
    pub cache: Option<HierarchyStats>,
    /// Timing-model counters (Sniper runs).
    pub timing: Option<TimingStats>,
    /// Host wall-clock seconds spent simulating this run.
    pub wall_seconds: f64,
}

impl RunMetrics {
    /// Equality over every deterministic field — everything except
    /// `wall_seconds`, which measures the host and legitimately differs
    /// between runs. This is the comparison the parallel differential
    /// harness uses: two runs of the same work must agree bit-for-bit
    /// here regardless of the job count.
    pub fn deterministic_eq(&self, other: &Self) -> bool {
        self.instructions == other.instructions
            && self.mix == other.mix
            && self.cache == other.cache
            && self.timing == other.timing
    }
}

impl Encode for RunMetrics {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.instructions);
        self.mix.encode(enc);
        self.cache.encode(enc);
        self.timing.encode(enc);
        enc.put_f64(self.wall_seconds);
    }
}

impl Decode for RunMetrics {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            instructions: dec.take_u64()?,
            mix: MixCounts::decode(dec)?,
            cache: Option::<HierarchyStats>::decode(dec)?,
            timing: Option::<TimingStats>::decode(dec)?,
            wall_seconds: dec.take_f64()?,
        })
    }
}

/// Per-level cache miss rates in percent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MissRates {
    /// L1 instruction cache.
    pub l1i: f64,
    /// L1 data cache.
    pub l1d: f64,
    /// Unified L2.
    pub l2: f64,
    /// Unified L3 (LLC).
    pub l3: f64,
}

/// The weighted combination of a set of per-region metrics — what a
/// Regional / Reduced Regional / Warmup Regional run reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggregatedMetrics {
    /// Weighted instruction-mix distribution in percent
    /// (`NO_MEM, MEM_R, MEM_W, MEM_RW`).
    pub mix_pct: [f64; 4],
    /// Weighted cache miss rates (present when regions carried cache
    /// stats).
    pub miss_rates: Option<MissRates>,
    /// Weighted CPI (present when regions carried timing stats).
    pub cpi: Option<f64>,
    /// Weighted CPI stack, normalized per instruction.
    pub cpi_stack: Option<CpiStack>,
    /// Raw (unweighted) totals across the simulated regions: instructions.
    pub total_instructions: u64,
    /// Raw total L3 accesses across simulated regions (Fig. 10's metric).
    pub total_l3_accesses: u64,
    /// Total host wall-clock seconds across regions.
    pub total_wall_seconds: f64,
}

/// Weighted-aggregates `regions` (paired with their SimPoint weights).
///
/// Per-instruction rates are formed per region, weighted, and recombined:
/// e.g. the aggregate L3 miss rate is
/// `Σ wᵢ·(missesᵢ/instrᵢ) / Σ wᵢ·(accessesᵢ/instrᵢ)`.
///
/// # Panics
///
/// Panics if `regions` is empty, weights do not sum to ~1, or any region
/// has zero instructions.
pub fn aggregate_weighted(regions: &[(RunMetrics, f64)]) -> AggregatedMetrics {
    assert!(!regions.is_empty(), "no regions to aggregate");
    let wsum: f64 = regions.iter().map(|(_, w)| *w).sum();
    assert!(
        (wsum - 1.0).abs() < 1e-6,
        "weights must sum to 1 (got {wsum})"
    );
    assert!(
        regions.iter().all(|(m, _)| m.instructions > 0),
        "regions must have instructions"
    );

    // Instruction mix: weighted average of per-region distributions.
    let mut mix_pct = [0.0; 4];
    for (m, w) in regions {
        let d = m.mix.distribution_pct();
        for (acc, v) in mix_pct.iter_mut().zip(&d) {
            *acc += v * w;
        }
    }

    // Cache rates: weighted per-instruction numerators/denominators.
    let have_cache = regions.iter().all(|(m, _)| m.cache.is_some());
    let miss_rates = have_cache.then(|| {
        let rate = |get: &dyn Fn(&HierarchyStats) -> (u64, u64)| -> f64 {
            let (mut acc_n, mut acc_d) = (0.0, 0.0);
            for (m, w) in regions {
                let s = m.cache.as_ref().expect("checked have_cache");
                let (miss, acc) = get(s);
                let per = m.instructions as f64;
                acc_n += w * miss as f64 / per;
                acc_d += w * acc as f64 / per;
            }
            if acc_d == 0.0 {
                0.0
            } else {
                100.0 * acc_n / acc_d
            }
        };
        MissRates {
            l1i: rate(&|s| (s.l1i.misses, s.l1i.accesses)),
            l1d: rate(&|s| (s.l1d.misses, s.l1d.accesses)),
            l2: rate(&|s| (s.l2.misses, s.l2.accesses)),
            l3: rate(&|s| (s.l3.misses, s.l3.accesses)),
        }
    });

    // CPI: weighted cycles-per-instruction (normalized by instructions, so
    // weighting is legitimate — the paper's IPC caveat).
    let have_timing = regions.iter().all(|(m, _)| m.timing.is_some());
    let (cpi, cpi_stack) = if have_timing {
        let mut cpi_acc = 0.0;
        let mut stack = CpiStack::default();
        for (m, w) in regions {
            let t = m.timing.as_ref().expect("checked have_timing");
            let per = t.instructions.max(1) as f64;
            cpi_acc += w * t.cycles / per;
            stack.merge_scaled(&t.stack, w / per);
        }
        (Some(cpi_acc), Some(stack))
    } else {
        (None, None)
    };

    AggregatedMetrics {
        mix_pct,
        miss_rates,
        cpi,
        cpi_stack,
        total_instructions: regions.iter().map(|(m, _)| m.instructions).sum(),
        total_l3_accesses: regions
            .iter()
            .filter_map(|(m, _)| m.cache.as_ref().map(|c| c.l3.accesses))
            .sum(),
        total_wall_seconds: regions.iter().map(|(m, _)| m.wall_seconds).sum(),
    }
}

/// Converts whole-run metrics into the same aggregate shape for uniform
/// comparisons.
pub fn whole_as_aggregate(whole: &RunMetrics) -> AggregatedMetrics {
    aggregate_weighted(&[(whole.clone(), 1.0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_cache::CacheStats;
    use sampsim_workload::MemClass;

    fn metrics(insts: u64, reads: u64, l3_miss: u64, l3_acc: u64) -> RunMetrics {
        let mut mix = MixCounts::new();
        for _ in 0..reads {
            mix.record(MemClass::Read);
        }
        for _ in 0..insts - reads {
            mix.record(MemClass::NoMem);
        }
        let mut cache = HierarchyStats {
            l3: CacheStats {
                accesses: l3_acc,
                misses: l3_miss,
                writebacks: 0,
            },
            ..HierarchyStats::default()
        };
        cache.l1d = CacheStats {
            accesses: reads,
            misses: l3_acc,
            writebacks: 0,
        };
        RunMetrics {
            instructions: insts,
            mix,
            cache: Some(cache),
            timing: None,
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn equal_regions_average_plainly() {
        let a = metrics(100, 40, 5, 10);
        let b = metrics(100, 20, 1, 10);
        let agg = aggregate_weighted(&[(a, 0.5), (b, 0.5)]);
        assert!((agg.mix_pct[1] - 30.0).abs() < 1e-9);
        let mr = agg.miss_rates.unwrap();
        assert!((mr.l3 - 30.0).abs() < 1e-9); // (5+1)/(10+10)
        assert_eq!(agg.total_instructions, 200);
        assert_eq!(agg.total_l3_accesses, 20);
        assert!((agg.total_wall_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_the_aggregate() {
        let a = metrics(100, 100, 0, 100); // all reads, 0% l3 miss
        let b = metrics(100, 0, 0, 0); // no memory
        let agg = aggregate_weighted(&[(a, 0.9), (b, 0.1)]);
        assert!((agg.mix_pct[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn whole_as_aggregate_is_identity_shaped() {
        let w = metrics(1000, 300, 10, 50);
        let agg = whole_as_aggregate(&w);
        assert!((agg.mix_pct[1] - 30.0).abs() < 1e-9);
        assert!((agg.miss_rates.unwrap().l3 - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "weights must sum to 1")]
    fn bad_weights_panic() {
        let a = metrics(10, 1, 0, 0);
        aggregate_weighted(&[(a, 0.5)]);
    }

    #[test]
    fn codec_roundtrip() {
        let m = metrics(123, 45, 6, 7);
        let bytes = sampsim_util::codec::to_bytes(&m);
        let back: RunMetrics = sampsim_util::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn timing_aggregation() {
        let mk = |cycles: f64| -> RunMetrics {
            let mut m = metrics(100, 10, 0, 0);
            m.timing = Some(TimingStats {
                instructions: 100,
                cycles,
                ..Default::default()
            });
            m
        };
        let agg = aggregate_weighted(&[(mk(100.0), 0.5), (mk(300.0), 0.5)]);
        assert!((agg.cpi.unwrap() - 2.0).abs() < 1e-9);
    }
}

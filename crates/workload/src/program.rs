//! The static program artifact.
//!
//! A [`Program`] bundles the basic blocks, phases, global stream table and
//! schedule generated from a [`crate::spec::WorkloadSpec`]. Programs are
//! immutable once built; their content digest identifies them inside
//! pinball checkpoints.

use crate::block::BasicBlock;
use crate::error::IrError;
use crate::phase::Phase;
use crate::schedule::Schedule;
use sampsim_util::hash::Fnv64;

/// An immutable synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
    phases: Vec<Phase>,
    schedule: Schedule,
    seed: u64,
    num_streams: u32,
    digest: u64,
}

impl Program {
    /// Assembles a program and computes its digest.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if the schedule references a phase out of
    /// range, a phase references a block out of range, stream bases are
    /// inconsistent, or an instruction indexes a stream its phase does
    /// not own.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        phases: Vec<Phase>,
        schedule: Schedule,
        seed: u64,
    ) -> Result<Self, IrError> {
        let name = name.into();
        for (segment, seg) in schedule.segments().iter().enumerate() {
            if (seg.phase as usize) >= phases.len() {
                return Err(IrError::DanglingPhaseRef {
                    segment,
                    phase: seg.phase,
                    num_phases: phases.len(),
                });
            }
        }
        let mut num_streams = 0u32;
        for (phase_idx, phase) in phases.iter().enumerate() {
            for &b in &phase.blocks {
                if (b as usize) >= blocks.len() {
                    return Err(IrError::DanglingBlockRef {
                        phase: phase_idx,
                        block: b,
                        num_blocks: blocks.len(),
                    });
                }
            }
            if phase.stream_base != num_streams {
                return Err(IrError::StreamBaseMismatch {
                    phase: phase_idx,
                    actual: phase.stream_base,
                    expected: num_streams,
                });
            }
            num_streams += phase.streams.len() as u32;
            for &block_id in &phase.blocks {
                for inst in &blocks[block_id as usize].insts {
                    if let Some(s) = inst.stream() {
                        if (s as usize) >= phase.streams.len() {
                            return Err(IrError::DanglingStreamRef {
                                phase: phase_idx,
                                block: block_id,
                                stream: s,
                                num_streams: phase.streams.len(),
                            });
                        }
                    }
                }
            }
        }
        let mut h = Fnv64::new();
        h.write_str(&name);
        h.write_u64(seed);
        h.write_u64(blocks.len() as u64);
        for b in &blocks {
            b.hash_into(&mut h);
        }
        h.write_u64(phases.len() as u64);
        for p in &phases {
            p.hash_into(&mut h);
        }
        schedule.hash_into(&mut h);
        let digest = h.finish();
        Ok(Self {
            name,
            blocks,
            phases,
            schedule,
            seed,
            num_streams,
            digest,
        })
    }

    /// Program name (benchmark name for suite programs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All basic blocks; indices are global block ids.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The phase schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The seed the executor derives its RNG from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of address streams across all phases.
    pub fn num_streams(&self) -> u32 {
        self.num_streams
    }

    /// Total dynamic instruction count of a whole run.
    pub fn total_insts(&self) -> u64 {
        self.schedule.total_insts()
    }

    /// Content digest identifying this program inside checkpoints.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{InstKind, StaticInst};
    use crate::schedule::Segment;

    fn tiny_blocks() -> Vec<BasicBlock> {
        vec![BasicBlock::new(
            0x400000,
            vec![
                StaticInst {
                    kind: InstKind::Alu,
                },
                StaticInst {
                    kind: InstKind::Branch { bias: 60000 },
                },
            ],
        )
        .unwrap()]
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let p1 = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0).unwrap()],
            Schedule::new(vec![Segment {
                phase: 0,
                insts: 10,
            }])
            .unwrap(),
            1,
        )
        .unwrap();
        let p2 = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0).unwrap()],
            Schedule::new(vec![Segment {
                phase: 0,
                insts: 10,
            }])
            .unwrap(),
            1,
        )
        .unwrap();
        assert_eq!(p1.digest(), p2.digest());
        let p3 = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0).unwrap()],
            Schedule::new(vec![Segment {
                phase: 0,
                insts: 11,
            }])
            .unwrap(),
            1,
        )
        .unwrap();
        assert_ne!(p1.digest(), p3.digest());
    }

    #[test]
    fn schedule_phase_bounds_checked() {
        let err = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0).unwrap()],
            Schedule::new(vec![Segment {
                phase: 5,
                insts: 10,
            }])
            .unwrap(),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            IrError::DanglingPhaseRef {
                segment: 0,
                phase: 5,
                num_phases: 1
            }
        );
    }

    #[test]
    fn phase_block_bounds_checked() {
        let err = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![9], vec![1.0], vec![], 0).unwrap()],
            Schedule::new(vec![]).unwrap(),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            IrError::DanglingBlockRef {
                phase: 0,
                block: 9,
                num_blocks: 1
            }
        );
    }
}

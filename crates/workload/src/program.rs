//! The static program artifact.
//!
//! A [`Program`] bundles the basic blocks, phases, global stream table and
//! schedule generated from a [`crate::spec::WorkloadSpec`]. Programs are
//! immutable once built; their content digest identifies them inside
//! pinball checkpoints.

use crate::block::BasicBlock;
use crate::phase::Phase;
use crate::schedule::Schedule;
use sampsim_util::hash::Fnv64;

/// An immutable synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
    phases: Vec<Phase>,
    schedule: Schedule,
    seed: u64,
    num_streams: u32,
    digest: u64,
}

impl Program {
    /// Assembles a program and computes its digest.
    ///
    /// # Panics
    ///
    /// Panics if the schedule references a phase out of range, a phase
    /// references a block out of range, or stream bases are inconsistent.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        phases: Vec<Phase>,
        schedule: Schedule,
        seed: u64,
    ) -> Self {
        let name = name.into();
        for seg in schedule.segments() {
            assert!(
                (seg.phase as usize) < phases.len(),
                "schedule references phase {} of {}",
                seg.phase,
                phases.len()
            );
        }
        let mut num_streams = 0u32;
        for phase in &phases {
            for &b in &phase.blocks {
                assert!(
                    (b as usize) < blocks.len(),
                    "phase references block {b} of {}",
                    blocks.len()
                );
            }
            assert_eq!(
                phase.stream_base, num_streams,
                "phase stream bases must be densely packed"
            );
            num_streams += phase.streams.len() as u32;
            for block_id in &phase.blocks {
                for inst in &blocks[*block_id as usize].insts {
                    if let Some(s) = inst.stream() {
                        assert!(
                            (s as usize) < phase.streams.len(),
                            "instruction references stream {s} of {}",
                            phase.streams.len()
                        );
                    }
                }
            }
        }
        let mut h = Fnv64::new();
        h.write_str(&name);
        h.write_u64(seed);
        h.write_u64(blocks.len() as u64);
        for b in &blocks {
            b.hash_into(&mut h);
        }
        h.write_u64(phases.len() as u64);
        for p in &phases {
            p.hash_into(&mut h);
        }
        schedule.hash_into(&mut h);
        let digest = h.finish();
        Self {
            name,
            blocks,
            phases,
            schedule,
            seed,
            num_streams,
            digest,
        }
    }

    /// Program name (benchmark name for suite programs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All basic blocks; indices are global block ids.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The phase schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The seed the executor derives its RNG from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of address streams across all phases.
    pub fn num_streams(&self) -> u32 {
        self.num_streams
    }

    /// Total dynamic instruction count of a whole run.
    pub fn total_insts(&self) -> u64 {
        self.schedule.total_insts()
    }

    /// Content digest identifying this program inside checkpoints.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{InstKind, StaticInst};
    use crate::schedule::Segment;

    fn tiny_blocks() -> Vec<BasicBlock> {
        vec![BasicBlock::new(
            0x400000,
            vec![
                StaticInst {
                    kind: InstKind::Alu,
                },
                StaticInst {
                    kind: InstKind::Branch { bias: 60000 },
                },
            ],
        )]
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let p1 = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0)],
            Schedule::new(vec![Segment {
                phase: 0,
                insts: 10,
            }]),
            1,
        );
        let p2 = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0)],
            Schedule::new(vec![Segment {
                phase: 0,
                insts: 10,
            }]),
            1,
        );
        assert_eq!(p1.digest(), p2.digest());
        let p3 = Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0)],
            Schedule::new(vec![Segment {
                phase: 0,
                insts: 11,
            }]),
            1,
        );
        assert_ne!(p1.digest(), p3.digest());
    }

    #[test]
    #[should_panic(expected = "references phase")]
    fn schedule_phase_bounds_checked() {
        Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![0], vec![1.0], vec![], 0)],
            Schedule::new(vec![Segment {
                phase: 5,
                insts: 10,
            }]),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "references block")]
    fn phase_block_bounds_checked() {
        Program::new(
            "a",
            tiny_blocks(),
            vec![Phase::new(vec![9], vec![1.0], vec![], 0)],
            Schedule::new(vec![]),
            1,
        );
    }
}

//! The deterministic executor.
//!
//! [`Executor`] walks a [`Program`]'s schedule and retires one instruction
//! at a time. All execution state lives in a compact [`Cursor`] value that
//! can be captured at any instruction boundary and later resumed
//! bit-exactly — the mechanism underlying pinball checkpoints.

use crate::block::InstKind;
use crate::mem::{MemClass, StreamState};
use crate::program::Program;
use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use sampsim_util::rng::Xoshiro256StarStar;

/// One retired (dynamically executed) instruction — everything a dynamic
/// instrumentation framework can observe about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Global id of the basic block this instruction belongs to.
    pub block: u32,
    /// Synthetic program counter.
    pub pc: u64,
    /// `ldstmix` category.
    pub mem: MemClass,
    /// Effective address (meaningful when `mem != NoMem`).
    pub addr: u64,
    /// Whether this is the block-terminating conditional branch.
    pub is_branch: bool,
    /// Branch outcome (meaningful when `is_branch`).
    pub taken: bool,
    /// Whether this is a serialized (pointer-chase) load, i.e. no
    /// memory-level parallelism is available to hide its latency.
    pub dependent: bool,
}

/// Sentinel for "no block selected yet".
const NO_BLOCK: u32 = u32::MAX;

/// The complete execution state of a program at an instruction boundary.
///
/// Cursors are small (a few hundred bytes for typical stream counts) and
/// serializable; a pinball is essentially a cursor plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cursor {
    /// Index of the current schedule segment.
    pub seg_idx: u32,
    /// Instructions already retired within the current segment.
    pub seg_retired: u64,
    /// Current basic block ([`u32::MAX`] when none is in flight).
    pub block: u32,
    /// Next instruction index within the current block.
    pub inst_idx: u32,
    /// RNG state.
    pub rng: [u64; 4],
    /// Per-stream positions (global stream table order).
    pub streams: Vec<u64>,
    /// Per-phase low-discrepancy block-selection counters.
    pub phase_sel: Vec<u32>,
    /// Total instructions retired since program start.
    pub retired: u64,
}

impl Cursor {
    /// The initial cursor for `program`.
    pub fn start(program: &Program) -> Self {
        Self {
            seg_idx: 0,
            seg_retired: 0,
            block: NO_BLOCK,
            inst_idx: 0,
            rng: Xoshiro256StarStar::seed_from_u64(program.seed()).state(),
            streams: vec![0; program.num_streams() as usize],
            phase_sel: vec![0; program.phases().len()],
            retired: 0,
        }
    }
}

impl Encode for Cursor {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.seg_idx);
        enc.put_u64(self.seg_retired);
        enc.put_u32(self.block);
        enc.put_u32(self.inst_idx);
        self.rng.encode(enc);
        self.streams.encode(enc);
        self.phase_sel.encode(enc);
        enc.put_u64(self.retired);
    }
}

impl Decode for Cursor {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            seg_idx: dec.take_u32()?,
            seg_retired: dec.take_u64()?,
            block: dec.take_u32()?,
            inst_idx: dec.take_u32()?,
            rng: <[u64; 4]>::decode(dec)?,
            streams: Vec::<u64>::decode(dec)?,
            phase_sel: Vec::<u32>::decode(dec)?,
            retired: dec.take_u64()?,
        })
    }
}

/// Deterministic instruction-level executor for a [`Program`].
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    rng: Xoshiro256StarStar,
    streams: Vec<StreamState>,
    seg_idx: u32,
    seg_retired: u64,
    block: u32,
    inst_idx: u32,
    retired: u64,
    phase_sel: Vec<u32>,
    /// Per-phase cumulative block weights (selection tables).
    cums: Vec<Vec<f64>>,
}

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the start of `program`.
    pub fn new(program: &'p Program) -> Self {
        Self::with_cursor(program, Cursor::start(program))
    }

    /// Creates an executor resuming from `cursor`.
    ///
    /// # Panics
    ///
    /// Panics if the cursor's stream-state count does not match the
    /// program (i.e. the cursor came from a different program).
    pub fn with_cursor(program: &'p Program, cursor: Cursor) -> Self {
        assert_eq!(
            cursor.streams.len(),
            program.num_streams() as usize,
            "cursor stream count does not match program"
        );
        assert_eq!(
            cursor.phase_sel.len(),
            program.phases().len(),
            "cursor phase count does not match program"
        );
        let cums = program
            .phases()
            .iter()
            .map(|p| p.cumulative_weights())
            .collect();
        Self {
            program,
            rng: Xoshiro256StarStar::from_state(cursor.rng),
            streams: cursor
                .streams
                .iter()
                .map(|&pos| StreamState { pos })
                .collect(),
            seg_idx: cursor.seg_idx,
            seg_retired: cursor.seg_retired,
            block: cursor.block,
            inst_idx: cursor.inst_idx,
            retired: cursor.retired,
            phase_sel: cursor.phase_sel.clone(),
            cums,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Total instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Captures the complete execution state.
    pub fn cursor(&self) -> Cursor {
        Cursor {
            seg_idx: self.seg_idx,
            seg_retired: self.seg_retired,
            block: self.block,
            inst_idx: self.inst_idx,
            rng: self.rng.state(),
            streams: self.streams.iter().map(|s| s.pos).collect(),
            phase_sel: self.phase_sel.clone(),
            retired: self.retired,
        }
    }

    /// Whether the whole schedule has been executed.
    pub fn is_finished(&self) -> bool {
        self.retired >= self.program.total_insts()
    }

    #[inline]
    fn select_block(&mut self, phase_idx: usize) {
        let cums = &self.cums[phase_idx];
        let total = *cums.last().expect("phase has blocks");
        // Blend a low-discrepancy (Weyl) walk over the weight CDF with a
        // random fraction given by the phase's selection noise: phases are
        // highly self-similar slice-to-slice yet not sterile.
        let phase = &self.program.phases()[phase_idx];
        let u = if self.rng.chance(phase.selection_noise) {
            self.rng.next_f64()
        } else {
            const PHI_FRAC: f64 = 0.618_033_988_749_894_9;
            let s = self.phase_sel[phase_idx];
            self.phase_sel[phase_idx] = s.wrapping_add(1);
            (f64::from(s) * PHI_FRAC).fract()
        };
        let target = u * total;
        // Phases have at most a few dozen blocks; linear scan beats binary
        // search at this size and is branch-predictor friendly.
        let mut idx = 0;
        while idx + 1 < cums.len() && cums[idx] <= target {
            idx += 1;
        }
        self.block = self.program.phases()[phase_idx].blocks[idx];
        self.inst_idx = 0;
    }

    /// Retires the next instruction, or returns `None` when the program has
    /// run to completion.
    #[inline]
    pub fn next_inst(&mut self) -> Option<Retired> {
        let schedule = self.program.schedule();
        let segments = schedule.segments();
        // Advance past exhausted segments; a segment switch abandons any
        // in-flight block (the new phase starts at a fresh block).
        loop {
            let seg = segments.get(self.seg_idx as usize)?;
            if self.seg_retired < seg.insts {
                break;
            }
            self.seg_idx += 1;
            self.seg_retired = 0;
            self.block = NO_BLOCK;
        }
        let seg = segments[self.seg_idx as usize];
        let phase_idx = seg.phase as usize;
        let phase = &self.program.phases()[phase_idx];
        let blocks = self.program.blocks();
        if self.block == NO_BLOCK || self.inst_idx as usize >= blocks[self.block as usize].len() {
            self.select_block(phase_idx);
        }
        let block = &blocks[self.block as usize];
        let inst = block.insts[self.inst_idx as usize];
        let pc = block.pc_of(self.inst_idx as usize);
        let mut out = Retired {
            block: self.block,
            pc,
            mem: MemClass::NoMem,
            addr: 0,
            is_branch: false,
            taken: false,
            dependent: false,
        };
        match inst.kind {
            InstKind::Alu => {}
            InstKind::Load { stream } => {
                self.gen_addr(
                    phase.stream_base,
                    stream,
                    MemClass::Read,
                    &mut out,
                    phase_idx,
                );
            }
            InstKind::Store { stream } => {
                self.gen_addr(
                    phase.stream_base,
                    stream,
                    MemClass::Write,
                    &mut out,
                    phase_idx,
                );
            }
            InstKind::LoadStore { stream } => {
                self.gen_addr(
                    phase.stream_base,
                    stream,
                    MemClass::ReadWrite,
                    &mut out,
                    phase_idx,
                );
            }
            InstKind::Branch { bias } => {
                out.is_branch = true;
                out.taken = ((self.rng.next_u64() >> 48) as u16) < bias;
            }
        }
        self.inst_idx += 1;
        self.seg_retired += 1;
        self.retired += 1;
        Some(out)
    }

    #[inline]
    fn gen_addr(
        &mut self,
        stream_base: u32,
        stream: u16,
        mem: MemClass,
        out: &mut Retired,
        phase_idx: usize,
    ) {
        let spec = &self.program.phases()[phase_idx].streams[stream as usize];
        let global = stream_base as usize + stream as usize;
        out.mem = mem;
        out.addr = self.streams[global].next_addr(spec, &mut self.rng);
        out.dependent = spec.is_dependent();
    }

    /// Retires up to `n` instructions, invoking `f` on each. Returns the
    /// number actually retired (less than `n` only at program end).
    pub fn run(&mut self, n: u64, mut f: impl FnMut(&Retired)) -> u64 {
        let mut done = 0;
        while done < n {
            match self.next_inst() {
                Some(inst) => {
                    f(&inst);
                    done += 1;
                }
                None => break,
            }
        }
        done
    }

    /// Fast-forwards `n` instructions without observing them. Returns the
    /// number actually skipped.
    pub fn skip(&mut self, n: u64) -> u64 {
        self.run(n, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BasicBlock, InstKind, StaticInst};
    use crate::mem::{AddressPattern, MemRegion, StreamSpec};
    use crate::phase::Phase;
    use crate::schedule::{Schedule, Segment};

    fn test_program() -> Program {
        let blocks = vec![
            BasicBlock::new(
                0x400000,
                vec![
                    StaticInst {
                        kind: InstKind::Alu,
                    },
                    StaticInst {
                        kind: InstKind::Load { stream: 0 },
                    },
                    StaticInst {
                        kind: InstKind::Branch { bias: 50000 },
                    },
                ],
            )
            .unwrap(),
            BasicBlock::new(
                0x400100,
                vec![
                    StaticInst {
                        kind: InstKind::Store { stream: 0 },
                    },
                    StaticInst {
                        kind: InstKind::Branch { bias: 10000 },
                    },
                ],
            )
            .unwrap(),
            BasicBlock::new(
                0x400200,
                vec![
                    StaticInst {
                        kind: InstKind::LoadStore { stream: 0 },
                    },
                    StaticInst {
                        kind: InstKind::Branch { bias: 60000 },
                    },
                ],
            )
            .unwrap(),
        ];
        let phases = vec![
            Phase::new(
                vec![0, 1],
                vec![3.0, 1.0],
                vec![StreamSpec {
                    region: MemRegion::new(0x1000_0000, 1 << 16).unwrap(),
                    pattern: AddressPattern::Stride { stride: 64 },
                }],
                0,
            )
            .unwrap(),
            Phase::new(
                vec![2],
                vec![1.0],
                vec![StreamSpec {
                    region: MemRegion::new(0x2000_0000, 1 << 20).unwrap(),
                    pattern: AddressPattern::Random,
                }],
                1,
            )
            .unwrap(),
        ];
        let schedule = Schedule::new(vec![
            Segment {
                phase: 0,
                insts: 500,
            },
            Segment {
                phase: 1,
                insts: 300,
            },
            Segment {
                phase: 0,
                insts: 200,
            },
        ])
        .unwrap();
        Program::new("exec-test", blocks, phases, schedule, 7).unwrap()
    }

    #[test]
    fn runs_exactly_total_insts() {
        let p = test_program();
        let mut e = Executor::new(&p);
        let mut n = 0;
        while e.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
        assert_eq!(e.retired(), 1000);
        assert!(e.is_finished());
        assert!(e.next_inst().is_none(), "stays finished");
    }

    #[test]
    fn deterministic_streams() {
        let p = test_program();
        let mut a = Executor::new(&p);
        let mut b = Executor::new(&p);
        for _ in 0..1000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        let p = test_program();
        let mut reference = Executor::new(&p);
        let mut checkpointed = Executor::new(&p);
        checkpointed.skip(333);
        reference.skip(333);
        let cur = checkpointed.cursor();
        let mut resumed = Executor::with_cursor(&p, cur);
        for _ in 0..667 {
            assert_eq!(resumed.next_inst(), reference.next_inst());
        }
        assert!(resumed.next_inst().is_none());
    }

    #[test]
    fn cursor_codec_roundtrip() {
        let p = test_program();
        let mut e = Executor::new(&p);
        e.skip(123);
        let cur = e.cursor();
        let bytes = sampsim_util::codec::to_bytes(&cur);
        let back: Cursor = sampsim_util::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, cur);
    }

    #[test]
    fn phase_switch_changes_streams() {
        let p = test_program();
        let mut e = Executor::new(&p);
        let mut phase0_addrs = vec![];
        let mut phase1_addrs = vec![];
        while let Some(i) = e.next_inst() {
            if i.mem != MemClass::NoMem {
                if i.addr < 0x2000_0000 {
                    phase0_addrs.push(i.addr);
                } else {
                    phase1_addrs.push(i.addr);
                }
            }
        }
        assert!(!phase0_addrs.is_empty());
        assert!(!phase1_addrs.is_empty());
    }

    #[test]
    fn branch_bias_respected() {
        let p = test_program();
        let mut e = Executor::new(&p);
        let (mut taken, mut total) = (0u64, 0u64);
        while let Some(i) = e.next_inst() {
            if i.is_branch && i.block == 0 {
                total += 1;
                taken += u64::from(i.taken);
            }
        }
        // bias 50000/65536 ~ 0.76
        let rate = taken as f64 / total as f64;
        assert!((0.55..0.95).contains(&rate), "taken rate {rate}");
    }

    #[test]
    fn run_helper_counts() {
        let p = test_program();
        let mut e = Executor::new(&p);
        assert_eq!(e.run(400, |_| {}), 400);
        assert_eq!(e.run(10_000, |_| {}), 600);
    }

    #[test]
    #[should_panic(expected = "cursor stream count")]
    fn mismatched_cursor_rejected() {
        let p = test_program();
        let mut cur = Cursor::start(&p);
        cur.streams.push(0);
        let _ = Executor::with_cursor(&p, cur);
    }
}

#[cfg(test)]
mod weyl_tests {
    use super::*;
    use crate::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};

    /// With low selection noise, two disjoint windows of the same phase
    /// should have nearly identical block-frequency profiles (the Weyl walk
    /// makes slices self-similar — the property clustering relies on).
    #[test]
    fn weyl_selection_makes_windows_self_similar() {
        let program = WorkloadSpec::builder("weyl", 9)
            .total_insts(200_000)
            .phase(PhaseSpec::compute_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 200_000,
                jitter: 0.0,
                align: 0,
            })
            .build()
            .build();
        let mut exec = Executor::new(&program);
        let count_window = |exec: &mut Executor, n: u64| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..n {
                let i = exec.next_inst().expect("program long enough");
                *counts.entry(i.block).or_insert(0u64) += 1;
            }
            counts
        };
        let a = count_window(&mut exec, 50_000);
        let b = count_window(&mut exec, 50_000);
        for (block, &ca) in &a {
            let cb = *b.get(block).unwrap_or(&0) as f64;
            let rel = (ca as f64 - cb).abs() / ca as f64;
            assert!(rel < 0.15, "block {block}: {ca} vs {cb}");
        }
    }
}

//! Phases: recurring execution behaviours.
//!
//! A [`Phase`] owns a set of basic blocks (its inner-loop bodies), a table
//! of address streams, and a stationary block-selection distribution. While
//! a phase is active the executor repeatedly runs blocks drawn from that
//! distribution — producing the long, repetitive, self-similar behaviour
//! that SimPoint's basic-block vectors pick up.

use crate::error::IrError;
use crate::mem::StreamSpec;
use sampsim_util::hash::Fnv64;

/// One recurring behaviour of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Global ids of the blocks this phase executes.
    pub blocks: Vec<u32>,
    /// Selection weights, parallel to `blocks` (need not be normalized).
    pub block_weights: Vec<f64>,
    /// Address streams referenced by this phase's memory instructions
    /// (instructions index into this table).
    pub streams: Vec<StreamSpec>,
    /// Global index of this phase's first stream in the program-wide stream
    /// state table.
    pub stream_base: u32,
    /// Fraction of block selections drawn at random; the rest follow a
    /// low-discrepancy (Weyl) sequence over the weight distribution, so
    /// within-phase slices are highly self-similar, as in real
    /// phase-stable code.
    pub selection_noise: f64,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyPhase`] when `blocks` is empty and
    /// [`IrError::BadBlockWeights`] when the weight table length
    /// mismatches or any weight is not a positive finite value.
    pub fn new(
        blocks: Vec<u32>,
        block_weights: Vec<f64>,
        streams: Vec<StreamSpec>,
        stream_base: u32,
    ) -> Result<Self, IrError> {
        if blocks.is_empty() {
            return Err(IrError::EmptyPhase);
        }
        if blocks.len() != block_weights.len()
            || !block_weights.iter().all(|w| w.is_finite() && *w > 0.0)
        {
            return Err(IrError::BadBlockWeights {
                blocks: blocks.len(),
                weights: block_weights.len(),
            });
        }
        Ok(Self {
            blocks,
            block_weights,
            streams,
            stream_base,
            selection_noise: 0.15,
        })
    }

    /// Overrides the random fraction of block selections (builder-style).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadSelectionNoise`] unless `noise` is in
    /// `[0, 1]`.
    pub fn with_selection_noise(mut self, noise: f64) -> Result<Self, IrError> {
        if !(0.0..=1.0).contains(&noise) {
            return Err(IrError::BadSelectionNoise { noise });
        }
        self.selection_noise = noise;
        Ok(self)
    }

    /// Cumulative weight table used for fast weighted selection.
    pub fn cumulative_weights(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.block_weights
            .iter()
            .map(|w| {
                acc += w;
                acc
            })
            .collect()
    }

    /// Feeds the phase into a program digest.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_u64(self.blocks.len() as u64);
        for (&b, &w) in self.blocks.iter().zip(&self.block_weights) {
            h.write_u64(u64::from(b));
            h.write_f64(w);
        }
        h.write_u64(self.streams.len() as u64);
        for s in &self.streams {
            s.hash_into(h);
        }
        h.write_u64(u64::from(self.stream_base));
        h.write_f64(self.selection_noise);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{AddressPattern, MemRegion};

    #[test]
    fn cumulative_weights_monotone() {
        let p = Phase::new(vec![0, 1, 2], vec![1.0, 2.0, 3.0], vec![], 0).unwrap();
        assert_eq!(p.cumulative_weights(), vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn empty_phase_rejected() {
        assert_eq!(
            Phase::new(vec![], vec![], vec![], 0).unwrap_err(),
            IrError::EmptyPhase
        );
    }

    #[test]
    fn weight_mismatch_rejected() {
        assert_eq!(
            Phase::new(vec![0], vec![], vec![], 0).unwrap_err(),
            IrError::BadBlockWeights {
                blocks: 1,
                weights: 0
            }
        );
    }

    #[test]
    fn bad_noise_rejected() {
        let p = Phase::new(vec![0], vec![1.0], vec![], 0).unwrap();
        assert_eq!(
            p.with_selection_noise(1.5).unwrap_err(),
            IrError::BadSelectionNoise { noise: 1.5 }
        );
    }

    #[test]
    fn hash_includes_streams() {
        let s = StreamSpec {
            region: MemRegion::new(0, 64).unwrap(),
            pattern: AddressPattern::Random,
        };
        let a = Phase::new(vec![0], vec![1.0], vec![s], 0).unwrap();
        let b = Phase::new(vec![0], vec![1.0], vec![], 0).unwrap();
        let mut ha = Fnv64::new();
        a.hash_into(&mut ha);
        let mut hb = Fnv64::new();
        b.hash_into(&mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }
}

//! The phase schedule: which phase runs when.
//!
//! A [`Schedule`] is an explicit sequence of [`Segment`]s, each pinning one
//! phase for a number of instructions. It is generated once at program
//! build time so execution is trivially seekable and checkpointable.

use crate::error::IrError;
use sampsim_util::hash::Fnv64;

/// A contiguous stretch of execution within one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Phase index.
    pub phase: u32,
    /// Number of instructions retired in this segment.
    pub insts: u64,
}

/// The full phase schedule of a program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    segments: Vec<Segment>,
    total: u64,
}

impl Schedule {
    /// Creates a schedule from segments.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroLengthSegment`] if any segment retires zero
    /// instructions.
    pub fn new(segments: Vec<Segment>) -> Result<Self, IrError> {
        if let Some(segment) = segments.iter().position(|s| s.insts == 0) {
            return Err(IrError::ZeroLengthSegment { segment });
        }
        let total = segments.iter().map(|s| s.insts).sum();
        Ok(Self { segments, total })
    }

    /// The segments in execution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total dynamic instruction count.
    pub fn total_insts(&self) -> u64 {
        self.total
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total instructions attributed to `phase`.
    pub fn phase_insts(&self, phase: u32) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.insts)
            .sum()
    }

    /// Feeds the schedule into a program digest.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_u64(self.segments.len() as u64);
        for s in &self.segments {
            h.write_u64(u64::from(s.phase));
            h.write_u64(s.insts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = Schedule::new(vec![
            Segment {
                phase: 0,
                insts: 10,
            },
            Segment {
                phase: 1,
                insts: 20,
            },
            Segment { phase: 0, insts: 5 },
        ])
        .unwrap();
        assert_eq!(s.total_insts(), 35);
        assert_eq!(s.phase_insts(0), 15);
        assert_eq!(s.phase_insts(1), 20);
        assert_eq!(s.phase_insts(2), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_segment_rejected() {
        assert_eq!(
            Schedule::new(vec![Segment { phase: 0, insts: 0 }]).unwrap_err(),
            IrError::ZeroLengthSegment { segment: 0 }
        );
    }

    #[test]
    fn empty_schedule_is_valid() {
        let s = Schedule::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.total_insts(), 0);
    }
}

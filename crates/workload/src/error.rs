//! Typed construction errors for the workload IR.
//!
//! Every IR constructor ([`crate::Program::new`], [`crate::Schedule::new`],
//! [`crate::Phase::new`], [`crate::BasicBlock::new`],
//! [`crate::MemRegion::new`]) validates its input and returns an
//! [`IrError`] instead of panicking, so malformed IR surfaces as a value a
//! caller can route into diagnostics. The `sampsim-analyze` crate maps each
//! variant onto the lint rule that detects the same condition
//! (`SA001`/`SA002`/…), so constructor rejections and lint findings speak
//! the same language.

use std::fmt;

/// Why a workload IR constructor rejected its input.
///
/// Each variant corresponds to exactly one `sampsim-analyze` lint rule;
/// the mapping lives in `sampsim_analyze::diagnose_ir_error`.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A basic block holds no instructions (lint `SA010`).
    EmptyBlock {
        /// Program counter the block was declared at.
        pc: u64,
    },
    /// A basic block's last instruction is not a branch (lint `SA013`).
    MissingTerminalBranch {
        /// Program counter of the offending block.
        pc: u64,
    },
    /// A phase owns no basic blocks (lint `SA004`).
    EmptyPhase,
    /// `block_weights` does not parallel `blocks`, or a weight is not a
    /// positive finite value (lint `SA005`).
    BadBlockWeights {
        /// Number of blocks in the phase.
        blocks: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// `selection_noise` lies outside `[0, 1]` (lint `SA006`).
    BadSelectionNoise {
        /// The rejected noise value.
        noise: f64,
    },
    /// A stream region covers zero bytes (lint `SA012`).
    ZeroSizeRegion {
        /// Base address of the rejected region.
        base: u64,
    },
    /// A schedule segment retires zero instructions (lint `SA014`).
    ZeroLengthSegment {
        /// Index of the offending segment.
        segment: usize,
    },
    /// The schedule names a phase outside the phase table (lint `SA002`).
    DanglingPhaseRef {
        /// Index of the offending segment.
        segment: usize,
        /// The out-of-range phase id.
        phase: u32,
        /// Number of phases the program owns.
        num_phases: usize,
    },
    /// A phase names a block outside the block table (lint `SA001`).
    DanglingBlockRef {
        /// Index of the offending phase.
        phase: usize,
        /// The out-of-range block id.
        block: u32,
        /// Number of blocks the program owns.
        num_blocks: usize,
    },
    /// A phase's `stream_base` does not equal the running stream count
    /// (lint `SA011`).
    StreamBaseMismatch {
        /// Index of the offending phase.
        phase: usize,
        /// The base the phase declared.
        actual: u32,
        /// The densely packed base it should declare.
        expected: u32,
    },
    /// A memory instruction indexes a stream the phase does not own
    /// (lint `SA007`).
    DanglingStreamRef {
        /// Index of the offending phase.
        phase: usize,
        /// Block the instruction lives in.
        block: u32,
        /// The out-of-range stream operand.
        stream: u16,
        /// Number of streams the phase owns.
        num_streams: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyBlock { pc } => {
                write!(f, "basic block at {pc:#x} must be non-empty")
            }
            IrError::MissingTerminalBranch { pc } => {
                write!(f, "basic block at {pc:#x} must end in a branch")
            }
            IrError::EmptyPhase => f.write_str("phase must have at least one block"),
            IrError::BadBlockWeights { blocks, weights } if blocks != weights => {
                write!(
                    f,
                    "block/weight length mismatch: {blocks} block(s), {weights} weight(s)"
                )
            }
            IrError::BadBlockWeights { .. } => {
                f.write_str("block weights must be positive and finite")
            }
            IrError::BadSelectionNoise { noise } => {
                write!(f, "selection noise {noise} must be in [0, 1]")
            }
            IrError::ZeroSizeRegion { base } => {
                write!(f, "region at {base:#x} must have positive size")
            }
            IrError::ZeroLengthSegment { segment } => {
                write!(f, "schedule segment {segment} must be non-empty")
            }
            IrError::DanglingPhaseRef {
                segment,
                phase,
                num_phases,
            } => write!(
                f,
                "schedule segment {segment} references phase {phase} of {num_phases}"
            ),
            IrError::DanglingBlockRef {
                phase,
                block,
                num_blocks,
            } => write!(f, "phase {phase} references block {block} of {num_blocks}"),
            IrError::StreamBaseMismatch {
                phase,
                actual,
                expected,
            } => write!(
                f,
                "phase {phase} stream_base is {actual}, expected {expected}: \
                 phase stream bases must be densely packed"
            ),
            IrError::DanglingStreamRef {
                phase,
                block,
                stream,
                num_streams,
            } => write!(
                f,
                "instruction in block {block} of phase {phase} references \
                 stream {stream} of {num_streams}"
            ),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_values() {
        let e = IrError::DanglingBlockRef {
            phase: 2,
            block: 9,
            num_blocks: 4,
        };
        assert_eq!(e.to_string(), "phase 2 references block 9 of 4");
        let e = IrError::BadBlockWeights {
            blocks: 3,
            weights: 1,
        };
        assert!(e.to_string().contains("length mismatch"), "{e}");
        let e = IrError::BadBlockWeights {
            blocks: 2,
            weights: 2,
        };
        assert!(e.to_string().contains("positive"), "{e}");
    }
}

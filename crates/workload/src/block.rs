//! Static code: instructions and basic blocks.
//!
//! A [`BasicBlock`] is a straight-line sequence of [`StaticInst`]s ending in
//! a conditional branch (the classical definition). Blocks carry a synthetic
//! program counter so that instruction-fetch behaviour can be modelled; the
//! code footprint of a program is laid out contiguously from
//! [`CODE_BASE`].

use crate::error::IrError;
use crate::mem::MemClass;
use sampsim_util::hash::Fnv64;

/// Base address of the synthetic code segment.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Bytes per synthetic instruction (fixed-width encoding).
pub const INST_BYTES: u64 = 4;

/// One static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Register-only ALU operation (`NO_MEM`).
    Alu,
    /// Load from the phase-local stream with the given index (`MEM_R`).
    Load {
        /// Index into the owning phase's stream table.
        stream: u16,
    },
    /// Store to the stream (`MEM_W`).
    Store {
        /// Index into the owning phase's stream table.
        stream: u16,
    },
    /// Read-modify-write on the stream (`MEM_RW`, e.g. x86 `movs`).
    LoadStore {
        /// Index into the owning phase's stream table.
        stream: u16,
    },
    /// Conditional branch terminating the block; `bias` is the probability
    /// the branch is taken (a per-branch static property learned by
    /// predictors).
    Branch {
        /// Taken probability in fixed-point 1/65536ths.
        bias: u16,
    },
}

/// A static instruction (currently just its kind; a newtype-style wrapper
/// keeps room for per-instruction metadata without churning the API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticInst {
    /// Operation kind.
    pub kind: InstKind,
}

impl StaticInst {
    /// The `ldstmix` category of this instruction.
    pub fn mem_class(&self) -> MemClass {
        match self.kind {
            InstKind::Alu | InstKind::Branch { .. } => MemClass::NoMem,
            InstKind::Load { .. } => MemClass::Read,
            InstKind::Store { .. } => MemClass::Write,
            InstKind::LoadStore { .. } => MemClass::ReadWrite,
        }
    }

    /// The stream index, if this instruction touches memory.
    pub fn stream(&self) -> Option<u16> {
        match self.kind {
            InstKind::Load { stream }
            | InstKind::Store { stream }
            | InstKind::LoadStore { stream } => Some(stream),
            _ => None,
        }
    }

    fn hash_into(&self, h: &mut Fnv64) {
        match self.kind {
            InstKind::Alu => h.write_u64(0),
            InstKind::Load { stream } => {
                h.write_u64(1);
                h.write_u64(u64::from(stream));
            }
            InstKind::Store { stream } => {
                h.write_u64(2);
                h.write_u64(u64::from(stream));
            }
            InstKind::LoadStore { stream } => {
                h.write_u64(3);
                h.write_u64(u64::from(stream));
            }
            InstKind::Branch { bias } => {
                h.write_u64(4);
                h.write_u64(u64::from(bias));
            }
        }
    }
}

/// A basic block: straight-line instructions ending in a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Instructions; the last is always [`InstKind::Branch`].
    pub insts: Vec<StaticInst>,
    /// Program counter of the first instruction.
    pub pc: u64,
}

impl BasicBlock {
    /// Creates a block at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyBlock`] when `insts` is empty and
    /// [`IrError::MissingTerminalBranch`] when the last instruction is not
    /// a branch.
    pub fn new(pc: u64, insts: Vec<StaticInst>) -> Result<Self, IrError> {
        let Some(last) = insts.last() else {
            return Err(IrError::EmptyBlock { pc });
        };
        if !matches!(last.kind, InstKind::Branch { .. }) {
            return Err(IrError::MissingTerminalBranch { pc });
        }
        Ok(Self { insts, pc })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// A block always has at least one instruction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Program counter of instruction `idx`.
    #[inline]
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.pc + idx as u64 * INST_BYTES
    }

    /// Feeds the block into a program digest.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_u64(self.pc);
        h.write_u64(self.insts.len() as u64);
        for inst in &self.insts {
            inst.hash_into(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch() -> StaticInst {
        StaticInst {
            kind: InstKind::Branch { bias: 32768 },
        }
    }

    #[test]
    fn block_pc_layout() {
        let b = BasicBlock::new(
            CODE_BASE,
            vec![
                StaticInst {
                    kind: InstKind::Alu,
                },
                branch(),
            ],
        )
        .unwrap();
        assert_eq!(b.pc_of(0), CODE_BASE);
        assert_eq!(b.pc_of(1), CODE_BASE + INST_BYTES);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn block_must_end_in_branch() {
        let err = BasicBlock::new(
            0x40,
            vec![StaticInst {
                kind: InstKind::Alu,
            }],
        )
        .unwrap_err();
        assert_eq!(err, IrError::MissingTerminalBranch { pc: 0x40 });
    }

    #[test]
    fn block_must_be_nonempty() {
        assert_eq!(
            BasicBlock::new(0, vec![]).unwrap_err(),
            IrError::EmptyBlock { pc: 0 }
        );
    }

    #[test]
    fn mem_class_mapping() {
        assert_eq!(
            StaticInst {
                kind: InstKind::Alu
            }
            .mem_class(),
            MemClass::NoMem
        );
        assert_eq!(
            StaticInst {
                kind: InstKind::Load { stream: 0 }
            }
            .mem_class(),
            MemClass::Read
        );
        assert_eq!(
            StaticInst {
                kind: InstKind::Store { stream: 1 }
            }
            .mem_class(),
            MemClass::Write
        );
        assert_eq!(
            StaticInst {
                kind: InstKind::LoadStore { stream: 2 }
            }
            .mem_class(),
            MemClass::ReadWrite
        );
        assert_eq!(branch().mem_class(), MemClass::NoMem);
    }

    #[test]
    fn stream_extraction() {
        assert_eq!(
            StaticInst {
                kind: InstKind::Load { stream: 7 }
            }
            .stream(),
            Some(7)
        );
        assert_eq!(
            StaticInst {
                kind: InstKind::Alu
            }
            .stream(),
            None
        );
    }

    #[test]
    fn digests_differ_for_different_blocks() {
        let a = BasicBlock::new(
            0,
            vec![
                StaticInst {
                    kind: InstKind::Alu,
                },
                branch(),
            ],
        )
        .unwrap();
        let b = BasicBlock::new(
            0,
            vec![
                StaticInst {
                    kind: InstKind::Load { stream: 0 },
                },
                branch(),
            ],
        )
        .unwrap();
        let mut ha = Fnv64::new();
        a.hash_into(&mut ha);
        let mut hb = Fnv64::new();
        b.hash_into(&mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }
}

//! Phase-structured synthetic program model and deterministic executor.
//!
//! This crate is the stand-in for SPEC CPU2017 binaries + Pin's view of
//! their execution (DESIGN.md §2). A [`Program`] is a static artifact —
//! basic blocks, address streams, phases and a phase schedule — and an
//! [`Executor`] deterministically *retires* one instruction at a time,
//! exposing exactly what a dynamic binary instrumentation framework
//! observes: the basic block, the instruction's memory class and effective
//! address, and branch outcomes.
//!
//! The SimPoint methodology only ever sees this retired-instruction stream,
//! so a synthetic program with realistic phase structure exercises the
//! sampling pipeline identically to a native binary.
//!
//! Key properties:
//!
//! * **Determinism** — the same [`Program`] always produces the identical
//!   instruction stream; all randomness flows from the program seed.
//! * **Checkpointability** — execution state is a small [`Cursor`] value;
//!   resuming from a captured cursor continues the stream bit-exactly
//!   (this is what makes pinballs possible; property-tested).
//! * **Phase behaviour** — the schedule interleaves phases with distinct
//!   instruction mixes, working sets and branch behaviour, producing the
//!   long repetitive phases that SimPoint exploits.
//!
//! # Example
//!
//! ```
//! use sampsim_workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};
//!
//! let spec = WorkloadSpec::builder("demo", 42)
//!     .total_insts(50_000)
//!     .phase(PhaseSpec::balanced(1.0))
//!     .phase(PhaseSpec::memory_bound(1.0))
//!     .interleave(InterleaveSpec::default())
//!     .build();
//! let program = spec.build();
//! let mut exec = sampsim_workload::Executor::new(&program);
//! let mut n = 0u64;
//! while let Some(_inst) = exec.next_inst() {
//!     n += 1;
//! }
//! assert_eq!(n, program.total_insts());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod error;
pub mod exec;
pub mod mem;
pub mod phase;
pub mod program;
pub mod schedule;
pub mod spec;

pub use block::{BasicBlock, InstKind, StaticInst};
pub use error::IrError;
pub use exec::{Cursor, Executor, Retired};
pub use mem::{AddressPattern, MemClass, MemRegion, StreamSpec};
pub use phase::Phase;
pub use program::Program;
pub use schedule::{Schedule, Segment};
pub use spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};

//! Memory classes, regions and address-stream generators.
//!
//! Each phase of a program owns a handful of *address streams*; every memory
//! instruction in the phase draws its effective address from one of them. A
//! stream pairs a [`MemRegion`] (the working set it touches) with an
//! [`AddressPattern`] (how it walks that region). Streams carry a small
//! runtime state ([`StreamState`]) that is captured inside checkpoints.

use crate::error::IrError;
use sampsim_util::hash::Fnv64;
use sampsim_util::rng::Xoshiro256StarStar;

/// The four instruction categories reported by the paper's `ldstmix`
/// Pintool (Fig. 7): compute-only, memory-read, memory-write and
/// memory-read-and-write (e.g. x86 `movs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemClass {
    /// No memory operand (`NO_MEM`).
    #[default]
    NoMem,
    /// At least one source operand in memory (`MEM_R`).
    Read,
    /// Destination operand in memory (`MEM_W`).
    Write,
    /// Both source and destination in memory (`MEM_RW`).
    ReadWrite,
}

impl MemClass {
    /// All four categories, in the paper's reporting order.
    pub const ALL: [MemClass; 4] = [
        MemClass::NoMem,
        MemClass::Read,
        MemClass::Write,
        MemClass::ReadWrite,
    ];

    /// Stable index (0..4) used by counters.
    pub fn index(self) -> usize {
        match self {
            MemClass::NoMem => 0,
            MemClass::Read => 1,
            MemClass::Write => 2,
            MemClass::ReadWrite => 3,
        }
    }

    /// Short uppercase label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MemClass::NoMem => "NO_MEM",
            MemClass::Read => "MEM_R",
            MemClass::Write => "MEM_W",
            MemClass::ReadWrite => "MEM_RW",
        }
    }

    /// Whether the instruction reads memory.
    pub fn reads(self) -> bool {
        matches!(self, MemClass::Read | MemClass::ReadWrite)
    }

    /// Whether the instruction writes memory.
    pub fn writes(self) -> bool {
        matches!(self, MemClass::Write | MemClass::ReadWrite)
    }
}

/// A contiguous range of the synthetic address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRegion {
    /// First byte address.
    pub base: u64,
    /// Size in bytes (must be positive).
    pub size: u64,
}

impl MemRegion {
    /// Creates a region.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroSizeRegion`] when `size` is zero.
    pub fn new(base: u64, size: u64) -> Result<Self, IrError> {
        if size == 0 {
            return Err(IrError::ZeroSizeRegion { base });
        }
        Ok(Self { base, size })
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// How a stream walks its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressPattern {
    /// Sequential walk with the given byte stride, wrapping at the region
    /// end. Large regions + unit stride model streaming (compulsory-miss)
    /// behaviour; small regions model cache-resident hot data.
    Stride {
        /// Byte distance between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random accesses over the region.
    Random,
    /// Serialized dependent walk (pointer chasing): the next address is a
    /// pseudo-random function of the current one, modelling linked-data
    /// traversals. Loads from such streams are flagged as dependent, which
    /// the timing model uses to suppress memory-level parallelism.
    PointerChase,
    /// Power-law-skewed random accesses: offset = ⌊size · u^theta⌋ for
    /// uniform `u`, so low addresses are touched far more often — a
    /// Zipf-like hot/cold split inside one stream (hash tables, symbol
    /// tables). `theta_x10 = 10` degenerates to uniform.
    SkewedRandom {
        /// Skew exponent × 10 (e.g. 30 ⇒ θ = 3.0). Kept integral so the
        /// pattern stays `Eq`/hashable.
        theta_x10: u16,
    },
}

/// Static description of one address stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamSpec {
    /// The working set the stream touches.
    pub region: MemRegion,
    /// The walk pattern.
    pub pattern: AddressPattern,
}

impl StreamSpec {
    /// Feeds this spec into a program digest.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_u64(self.region.base);
        h.write_u64(self.region.size);
        match self.pattern {
            AddressPattern::Stride { stride } => {
                h.write_u64(1);
                h.write_u64(stride);
            }
            AddressPattern::Random => h.write_u64(2),
            AddressPattern::PointerChase => h.write_u64(3),
            AddressPattern::SkewedRandom { theta_x10 } => {
                h.write_u64(4);
                h.write_u64(u64::from(theta_x10));
            }
        }
    }

    /// Whether loads from this stream are serialized (pointer chasing).
    pub fn is_dependent(&self) -> bool {
        matches!(self.pattern, AddressPattern::PointerChase)
    }
}

/// Per-stream runtime state. One `u64` per stream, captured verbatim inside
/// execution checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StreamState {
    /// Pattern-specific position (byte offset for strides, current address
    /// offset for pointer chases, unused for random).
    pub pos: u64,
}

impl StreamState {
    /// Produces the next effective address for `spec`, advancing the state.
    ///
    /// `rng` is only consulted by [`AddressPattern::Random`]; stride and
    /// chase streams evolve purely from their own state so that different
    /// patterns do not perturb each other's sequences through the shared
    /// generator more than necessary.
    #[inline]
    pub fn next_addr(&mut self, spec: &StreamSpec, rng: &mut Xoshiro256StarStar) -> u64 {
        let region = spec.region;
        match spec.pattern {
            AddressPattern::Stride { stride } => {
                let addr = region.base + self.pos;
                self.pos += stride;
                if self.pos >= region.size {
                    self.pos %= region.size;
                }
                addr
            }
            AddressPattern::Random => region.base + rng.next_below(region.size),
            AddressPattern::SkewedRandom { theta_x10 } => {
                let theta = f64::from(theta_x10) / 10.0;
                let u = rng.next_f64();
                let offset = (region.size as f64 * u.powf(theta)) as u64;
                region.base + offset.min(region.size - 1)
            }
            AddressPattern::PointerChase => {
                // The full 64-bit state is scrambled SplitMix-style each
                // step (cycle length ~2^64); only the address is reduced to
                // the region, aligned to 8 bytes like a pointer field.
                let addr = region.base + ((self.pos % region.size) & !7);
                let mut z = self.pos.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                self.pos = z ^ (z >> 27);
                addr
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(1)
    }

    #[test]
    fn memclass_indices_are_dense() {
        for (i, c) in MemClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn memclass_read_write_flags() {
        assert!(!MemClass::NoMem.reads() && !MemClass::NoMem.writes());
        assert!(MemClass::Read.reads() && !MemClass::Read.writes());
        assert!(!MemClass::Write.reads() && MemClass::Write.writes());
        assert!(MemClass::ReadWrite.reads() && MemClass::ReadWrite.writes());
    }

    #[test]
    fn stride_wraps_in_region() {
        let spec = StreamSpec {
            region: MemRegion::new(1000, 64).unwrap(),
            pattern: AddressPattern::Stride { stride: 16 },
        };
        let mut st = StreamState::default();
        let mut r = rng();
        let addrs: Vec<u64> = (0..6).map(|_| st.next_addr(&spec, &mut r)).collect();
        assert_eq!(addrs, vec![1000, 1016, 1032, 1048, 1000, 1016]);
    }

    #[test]
    fn random_stays_in_region() {
        let spec = StreamSpec {
            region: MemRegion::new(4096, 1 << 20).unwrap(),
            pattern: AddressPattern::Random,
        };
        let mut st = StreamState::default();
        let mut r = rng();
        for _ in 0..1000 {
            let a = st.next_addr(&spec, &mut r);
            assert!(spec.region.contains(a));
        }
    }

    #[test]
    fn chase_is_deterministic_and_in_region() {
        let spec = StreamSpec {
            region: MemRegion::new(0, 4096).unwrap(),
            pattern: AddressPattern::PointerChase,
        };
        let mut a = StreamState::default();
        let mut b = StreamState::default();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..100 {
            let x = a.next_addr(&spec, &mut r1);
            let y = b.next_addr(&spec, &mut r2);
            assert_eq!(x, y);
            assert!(spec.region.contains(x));
        }
    }

    #[test]
    fn chase_covers_many_addresses() {
        let spec = StreamSpec {
            region: MemRegion::new(0, 1 << 16).unwrap(),
            pattern: AddressPattern::PointerChase,
        };
        let mut st = StreamState::default();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(st.next_addr(&spec, &mut r));
        }
        assert!(
            seen.len() > 400,
            "chase should not cycle early: {}",
            seen.len()
        );
    }

    #[test]
    fn zero_region_rejected() {
        assert_eq!(
            MemRegion::new(0x20, 0).unwrap_err(),
            IrError::ZeroSizeRegion { base: 0x20 }
        );
    }
}

#[cfg(test)]
mod skew_tests {
    use super::*;
    use sampsim_util::rng::Xoshiro256StarStar;

    #[test]
    fn skewed_random_favors_low_addresses() {
        let spec = StreamSpec {
            region: MemRegion::new(0, 1 << 20).unwrap(),
            pattern: AddressPattern::SkewedRandom { theta_x10: 30 },
        };
        let mut st = StreamState::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let n = 20_000;
        let in_first_tenth = (0..n)
            .filter(|_| st.next_addr(&spec, &mut rng) < (1 << 20) / 10)
            .count();
        // With theta=3, P(offset < 0.1*size) = 0.1^(1/3) ≈ 46%.
        let frac = in_first_tenth as f64 / n as f64;
        assert!((0.38..0.55).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn theta_ten_is_uniformish() {
        let spec = StreamSpec {
            region: MemRegion::new(0, 1 << 20).unwrap(),
            pattern: AddressPattern::SkewedRandom { theta_x10: 10 },
        };
        let mut st = StreamState::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let n = 20_000;
        let low = (0..n)
            .filter(|_| st.next_addr(&spec, &mut rng) < (1 << 19))
            .count();
        let frac = low as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "lower-half fraction {frac}");
    }

    #[test]
    fn skewed_stays_in_region() {
        let spec = StreamSpec {
            region: MemRegion::new(4096, 8192).unwrap(),
            pattern: AddressPattern::SkewedRandom { theta_x10: 25 },
        };
        let mut st = StreamState::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(spec.region.contains(st.next_addr(&spec, &mut rng)));
        }
    }
}

//! Workload specifications: the generator that turns a compact description
//! of a benchmark's character into a concrete [`Program`].
//!
//! A [`WorkloadSpec`] says *what the workload is like* — how many phases,
//! each phase's instruction mix, working sets, branch behaviour and share of
//! execution — and [`WorkloadSpec::build`] deterministically expands it into
//! basic blocks, address streams and an interleaved phase schedule. The
//! synthetic SPEC CPU2017 suite (`sampsim-spec2017`) is a set of 30 such
//! specifications.

use crate::block::{BasicBlock, InstKind, StaticInst, CODE_BASE, INST_BYTES};
use crate::mem::{AddressPattern, MemRegion, StreamSpec};
use crate::phase::Phase;
use crate::program::Program;
use crate::schedule::{Schedule, Segment};
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_util::scale::Scale;

/// Base address of the synthetic data segment.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Alignment gap between stream regions.
const REGION_ALIGN: u64 = 1 << 20;

/// Target dynamic instruction-mix fractions for a phase (the remainder,
/// after branches, is compute-only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Fraction of `MEM_R` instructions.
    pub read: f64,
    /// Fraction of `MEM_W` instructions.
    pub write: f64,
    /// Fraction of `MEM_RW` instructions.
    pub read_write: f64,
}

impl Mix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or they sum to ≥ 1.
    pub fn new(read: f64, write: f64, read_write: f64) -> Self {
        assert!(
            read >= 0.0 && write >= 0.0 && read_write >= 0.0,
            "mix fractions must be non-negative"
        );
        assert!(
            read + write + read_write < 1.0,
            "memory fractions must leave room for compute instructions"
        );
        Self {
            read,
            write,
            read_write,
        }
    }

    /// The suite-average mix reported by the paper (§IV-D): 36.7% reads,
    /// 12.9% writes, ~1.3% read-writes.
    pub fn paper_average() -> Self {
        Self::new(0.367, 0.129, 0.013)
    }
}

/// How a generated stream should walk its working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Sequential streaming with the given byte stride.
    Stride {
        /// Byte stride between accesses.
        stride: u64,
    },
    /// Uniform random within the working set.
    Random,
    /// Serialized pointer chase.
    PointerChase,
    /// Power-law-skewed random (Zipf-like hot/cold split); exponent is
    /// `theta_x10 / 10`.
    SkewedRandom {
        /// Skew exponent × 10.
        theta_x10: u16,
    },
}

/// Generator description of one address stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamGen {
    /// Walk pattern.
    pub kind: StreamKind,
    /// Working-set size in bytes.
    pub ws_bytes: u64,
    /// Share of the phase's memory instructions assigned to this stream
    /// (normalized across the phase's streams at build time). Real
    /// workloads concentrate most accesses on hot data, so give the small
    /// working sets the large weights.
    pub weight: f64,
}

impl StreamGen {
    /// Sequential streaming over `ws_bytes` (8-byte elements).
    pub fn streaming(ws_bytes: u64) -> Self {
        Self {
            kind: StreamKind::Stride { stride: 8 },
            ws_bytes,
            weight: 1.0,
        }
    }

    /// Random accesses over `ws_bytes`.
    pub fn random(ws_bytes: u64) -> Self {
        Self {
            kind: StreamKind::Random,
            ws_bytes,
            weight: 1.0,
        }
    }

    /// Pointer chasing over `ws_bytes`.
    pub fn chase(ws_bytes: u64) -> Self {
        Self {
            kind: StreamKind::PointerChase,
            ws_bytes,
            weight: 1.0,
        }
    }

    /// Zipf-like skewed random accesses over `ws_bytes` with exponent
    /// `theta` (clamped to `[1.0, 6.5]`).
    pub fn skewed(ws_bytes: u64, theta: f64) -> Self {
        let theta_x10 = (theta.clamp(1.0, 6.5) * 10.0).round() as u16;
        Self {
            kind: StreamKind::SkewedRandom { theta_x10 },
            ws_bytes,
            weight: 1.0,
        }
    }

    /// Sets the access share (builder-style).
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "stream weight must be positive"
        );
        self.weight = weight;
        self
    }
}

/// Generator description of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Share of total execution attributed to this phase (normalized across
    /// phases at build time).
    pub weight: f64,
    /// Target instruction mix.
    pub mix: Mix,
    /// Number of distinct basic blocks.
    pub n_blocks: usize,
    /// Inclusive range of block lengths (instructions incl. the branch).
    pub block_len: (usize, usize),
    /// Address streams.
    pub streams: Vec<StreamGen>,
    /// Branch entropy in `[0, 1]`: 0 ⇒ highly biased (predictable)
    /// branches, 1 ⇒ 50/50 (unpredictable) branches.
    pub branch_entropy: f64,
    /// Zipf-style skew of the block-selection distribution (0 = uniform).
    pub block_skew: f64,
}

impl PhaseSpec {
    /// A balanced compute/memory phase with a modest working set.
    pub fn balanced(weight: f64) -> Self {
        Self {
            weight,
            mix: Mix::paper_average(),
            n_blocks: 8,
            block_len: (6, 14),
            streams: vec![
                StreamGen::random(16 << 10).with_weight(0.80),
                StreamGen::random(160 << 10).with_weight(0.15),
                StreamGen::chase(96 << 10).with_weight(0.05),
            ],
            branch_entropy: 0.2,
            block_skew: 0.6,
        }
    }

    /// A memory-bound phase: large random working set, many loads.
    pub fn memory_bound(weight: f64) -> Self {
        Self {
            weight,
            mix: Mix::new(0.45, 0.15, 0.02),
            n_blocks: 6,
            block_len: (5, 10),
            streams: vec![
                StreamGen::random(16 << 10).with_weight(0.55),
                StreamGen::streaming(32 << 20).with_weight(0.30),
                StreamGen::random(48 << 20).with_weight(0.15),
            ],
            branch_entropy: 0.15,
            block_skew: 0.4,
        }
    }

    /// A compute-bound phase: small hot working set, few memory ops.
    pub fn compute_bound(weight: f64) -> Self {
        Self {
            weight,
            mix: Mix::new(0.18, 0.06, 0.005),
            n_blocks: 10,
            block_len: (8, 16),
            streams: vec![StreamGen::streaming(32 << 10)],
            branch_entropy: 0.1,
            block_skew: 0.8,
        }
    }

    /// A pointer-chasing phase (graph/tree traversal character).
    pub fn pointer_chasing(weight: f64) -> Self {
        Self {
            weight,
            mix: Mix::new(0.40, 0.10, 0.01),
            n_blocks: 7,
            block_len: (4, 9),
            streams: vec![
                StreamGen::random(16 << 10).with_weight(0.70),
                StreamGen::chase(32 << 20).with_weight(0.12),
                StreamGen::random(192 << 10).with_weight(0.18),
            ],
            branch_entropy: 0.5,
            block_skew: 0.3,
        }
    }
}

/// How phase segments are interleaved in the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterleaveSpec {
    /// Mean segment length in instructions (before jitter).
    pub mean_segment: u64,
    /// Relative jitter in `[0, 1)`: each segment length is drawn uniformly
    /// from `mean * [1-jitter, 1+jitter]`.
    pub jitter: f64,
    /// When non-zero, segment lengths are rounded to a multiple of this
    /// value. The scaled-down workloads over-represent phase transitions
    /// relative to real runs (where phases persist for billions of
    /// instructions); aligning segments to the default analysis-slice grid
    /// compensates (DESIGN.md scaling policy).
    pub align: u64,
}

impl Default for InterleaveSpec {
    /// Segments average 50 k instructions (≈5 default slices) with ±50%
    /// jitter and no alignment.
    fn default() -> Self {
        Self {
            mean_segment: 50_000,
            jitter: 0.5,
            align: 0,
        }
    }
}

/// A complete, buildable workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload (benchmark) name.
    pub name: String,
    /// Master seed; all generated structure and the execution stream derive
    /// from it.
    pub seed: u64,
    /// Total dynamic instructions of a whole run.
    pub total_insts: u64,
    /// Phase descriptions.
    pub phases: Vec<PhaseSpec>,
    /// Schedule interleaving parameters.
    pub interleave: InterleaveSpec,
}

impl WorkloadSpec {
    /// Starts building a spec.
    pub fn builder(name: impl Into<String>, seed: u64) -> WorkloadSpecBuilder {
        WorkloadSpecBuilder {
            spec: WorkloadSpec {
                name: name.into(),
                seed,
                total_insts: 1_000_000,
                phases: Vec::new(),
                interleave: InterleaveSpec::default(),
            },
        }
    }

    /// Returns a copy with instruction counts (total and segment lengths)
    /// multiplied by `scale`, preserving all ratios.
    pub fn scaled(&self, scale: Scale) -> Self {
        let mut out = self.clone();
        out.total_insts = scale.apply(self.total_insts);
        out.interleave.mean_segment = scale.apply(self.interleave.mean_segment);
        if self.interleave.align > 0 {
            out.interleave.align = scale.apply(self.interleave.align);
        }
        out
    }

    /// Deterministically expands the spec into a [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases.
    pub fn build(&self) -> Program {
        assert!(!self.phases.is_empty(), "workload must have phases");
        let mut rng = Xoshiro256StarStar::seed_from_u64(self.seed ^ 0xBAD5_EED0);
        let total_weight: f64 = self.phases.iter().map(|p| p.weight).sum();
        let mut blocks = Vec::new();
        let mut phases = Vec::new();
        let mut next_region_base = DATA_BASE;
        let mut stream_base = 0u32;
        let mut next_pc = CODE_BASE;
        for spec in &self.phases {
            // Allocate stream regions.
            let streams: Vec<StreamSpec> = spec
                .streams
                .iter()
                .map(|g| {
                    let size = g.ws_bytes.max(64);
                    let region = MemRegion::new(next_region_base, size)
                        .expect("generated region has positive size");
                    next_region_base += size.div_ceil(REGION_ALIGN) * REGION_ALIGN + REGION_ALIGN;
                    let pattern = match g.kind {
                        StreamKind::Stride { stride } => AddressPattern::Stride { stride },
                        StreamKind::Random => AddressPattern::Random,
                        StreamKind::PointerChase => AddressPattern::PointerChase,
                        StreamKind::SkewedRandom { theta_x10 } => {
                            AddressPattern::SkewedRandom { theta_x10 }
                        }
                    };
                    StreamSpec { region, pattern }
                })
                .collect();
            // Generate blocks.
            let mut ids = Vec::with_capacity(spec.n_blocks);
            for _ in 0..spec.n_blocks.max(1) {
                let (lo, hi) = spec.block_len;
                assert!(lo >= 2 && hi >= lo, "block_len must be at least (2, lo)");
                let len = lo + rng.next_below((hi - lo + 1) as u64) as usize;
                let mut insts = Vec::with_capacity(len);
                // Compensate mix for the guaranteed trailing branch.
                let adj = len as f64 / (len - 1) as f64;
                let stream_weights: Vec<f64> = spec.streams.iter().map(|g| g.weight).collect();
                for _ in 0..len - 1 {
                    let r = rng.next_f64();
                    let kind = if streams.is_empty() {
                        InstKind::Alu
                    } else {
                        let stream = rng.weighted_index(&stream_weights) as u16;
                        if r < spec.mix.read * adj {
                            InstKind::Load { stream }
                        } else if r < (spec.mix.read + spec.mix.write) * adj {
                            InstKind::Store { stream }
                        } else if r < (spec.mix.read + spec.mix.write + spec.mix.read_write) * adj {
                            InstKind::LoadStore { stream }
                        } else {
                            InstKind::Alu
                        }
                    };
                    insts.push(StaticInst { kind });
                }
                // Branch bias: interpolate between a strongly biased branch
                // and a coin flip according to the phase's entropy.
                let extreme = if rng.chance(0.5) { 0.97 } else { 0.03 };
                let p = spec.branch_entropy * 0.5 + (1.0 - spec.branch_entropy) * extreme;
                let bias = (p * 65536.0).clamp(0.0, 65535.0) as u16;
                insts.push(StaticInst {
                    kind: InstKind::Branch { bias },
                });
                let id = blocks.len() as u32;
                blocks.push(
                    BasicBlock::new(next_pc, insts).expect("generated block ends in a branch"),
                );
                next_pc += len as u64 * INST_BYTES;
                // Pad block starts to 64 B so i-footprint resembles real code.
                next_pc = next_pc.div_ceil(64) * 64;
                ids.push(id);
            }
            // Zipf-ish block weights.
            let weights: Vec<f64> = (0..ids.len())
                .map(|i| 1.0 / ((i + 1) as f64).powf(spec.block_skew))
                .collect();
            // Long-resident phases are extremely self-similar in real code
            // (their inner loops repeat billions of times), so the random
            // fraction of block selection shrinks with the phase's share of
            // execution — this keeps clustering from subdividing dominant
            // phases on sampling noise.
            let share = spec.weight / total_weight;
            let noise = (0.02 / share.max(1e-9)).clamp(0.03, 0.15);
            phases.push(
                Phase::new(ids, weights, streams, stream_base)
                    .and_then(|p| p.with_selection_noise(noise))
                    .expect("generated phase is structurally valid"),
            );
            stream_base += spec.streams.len() as u32;
        }
        let schedule = self.build_schedule(&mut rng);
        Program::new(self.name.clone(), blocks, phases, schedule, self.seed)
            .expect("generated IR is structurally valid")
    }

    fn build_schedule(&self, rng: &mut Xoshiro256StarStar) -> Schedule {
        let total_weight: f64 = self.phases.iter().map(|p| p.weight).sum();
        assert!(
            total_weight > 0.0,
            "phase weights must sum to a positive value"
        );
        let mean = self.interleave.mean_segment.max(1024);
        let jitter = self.interleave.jitter.clamp(0.0, 0.99);
        let mut segments = Vec::new();
        for (idx, phase) in self.phases.iter().enumerate() {
            let mut budget = (self.total_insts as f64 * phase.weight / total_weight).round() as u64;
            // Tiny phases still get one segment so every phase exists.
            budget = budget.max(1);
            while budget > 0 {
                let f = 1.0 + jitter * (2.0 * rng.next_f64() - 1.0);
                let mut len = ((mean as f64 * f) as u64).max(1024);
                if self.interleave.align > 1 {
                    len = (len.div_ceil(self.interleave.align)) * self.interleave.align;
                }
                if len >= budget || budget - len < 1024 {
                    len = budget;
                }
                segments.push(Segment {
                    phase: idx as u32,
                    insts: len,
                });
                budget -= len;
            }
        }
        rng.shuffle(&mut segments);
        Schedule::new(segments).expect("generated segments are non-empty")
    }
}

/// Builder for [`WorkloadSpec`] (see [`WorkloadSpec::builder`]).
#[derive(Debug, Clone)]
pub struct WorkloadSpecBuilder {
    spec: WorkloadSpec,
}

impl WorkloadSpecBuilder {
    /// Sets the whole-run dynamic instruction count.
    pub fn total_insts(mut self, n: u64) -> Self {
        self.spec.total_insts = n;
        self
    }

    /// Adds a phase.
    pub fn phase(mut self, phase: PhaseSpec) -> Self {
        self.spec.phases.push(phase);
        self
    }

    /// Sets the interleaving parameters.
    pub fn interleave(mut self, interleave: InterleaveSpec) -> Self {
        self.spec.interleave = interleave;
        self
    }

    /// Finishes the spec.
    ///
    /// # Panics
    ///
    /// Panics if no phase was added.
    pub fn build(self) -> WorkloadSpec {
        assert!(!self.spec.phases.is_empty(), "workload must have phases");
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::mem::MemClass;

    fn two_phase_spec() -> WorkloadSpec {
        WorkloadSpec::builder("spec-test", 11)
            .total_insts(300_000)
            .phase(PhaseSpec::balanced(2.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .interleave(InterleaveSpec {
                mean_segment: 10_000,
                jitter: 0.4,
                align: 0,
            })
            .build()
    }

    #[test]
    fn build_is_deterministic() {
        let spec = two_phase_spec();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = two_phase_spec();
        let a = spec.build();
        spec.seed = 12;
        let b = spec.build();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn total_insts_respected_approximately() {
        let spec = two_phase_spec();
        let p = spec.build();
        let total = p.total_insts();
        // Rounding may shift totals by a few instructions per phase.
        assert!(
            (total as i64 - 300_000i64).abs() < 10,
            "total {total} too far from 300000"
        );
    }

    #[test]
    fn phase_shares_respected() {
        let spec = two_phase_spec();
        let p = spec.build();
        let p0 = p.schedule().phase_insts(0) as f64;
        let p1 = p.schedule().phase_insts(1) as f64;
        let share = p0 / (p0 + p1);
        assert!((share - 2.0 / 3.0).abs() < 0.02, "share {share}");
    }

    #[test]
    fn realized_mix_close_to_target() {
        let spec = WorkloadSpec::builder("mix-test", 3)
            .total_insts(400_000)
            .phase(PhaseSpec::balanced(1.0))
            .build();
        let p = spec.build();
        let mut exec = Executor::new(&p);
        let mut counts = [0u64; 4];
        while let Some(i) = exec.next_inst() {
            counts[i.mem.index()] += 1;
        }
        let total: u64 = counts.iter().sum();
        let read = counts[MemClass::Read.index()] as f64 / total as f64;
        let write = counts[MemClass::Write.index()] as f64 / total as f64;
        assert!((read - 0.367).abs() < 0.06, "read share {read}");
        assert!((write - 0.129).abs() < 0.04, "write share {write}");
    }

    #[test]
    fn scaled_preserves_structure() {
        let spec = two_phase_spec();
        let scaled = spec.scaled(Scale::new(0.1));
        assert_eq!(scaled.total_insts, 30_000);
        assert_eq!(scaled.phases.len(), spec.phases.len());
        let p = scaled.build();
        assert!(p.total_insts() >= 25_000 && p.total_insts() <= 35_000);
    }

    #[test]
    fn segments_interleave_phases() {
        let spec = two_phase_spec();
        let p = spec.build();
        let segs = p.schedule().segments();
        assert!(
            segs.len() > 10,
            "expected many segments, got {}",
            segs.len()
        );
        // Both phases appear, and not as one contiguous run each.
        let first_phase = segs[0].phase;
        assert!(
            segs.iter().any(|s| s.phase != first_phase),
            "phases never alternate"
        );
    }

    #[test]
    fn regions_do_not_overlap() {
        let spec = two_phase_spec();
        let p = spec.build();
        let mut regions: Vec<(u64, u64)> = p
            .phases()
            .iter()
            .flat_map(|ph| ph.streams.iter().map(|s| (s.region.base, s.region.size)))
            .collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "regions overlap: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "workload must have phases")]
    fn empty_builder_panics() {
        let _ = WorkloadSpec::builder("x", 0).build();
    }
}

//! Pinballs: portable, user-level execution checkpoints.
//!
//! In the paper's methodology (PinPlay; Patil & Carlson, REPRODUCE 2014), a
//! *pinball* captures enough state to deterministically re-execute a
//! program or a region of it. For `sampsim`'s deterministic synthetic
//! programs that state is exactly a [`Cursor`](sampsim_workload::Cursor)
//! plus provenance (program name + content digest), which keeps checkpoints
//! small while preserving the essential property: **replaying a pinball
//! reproduces the original instruction stream bit-for-bit** (property-tested
//! in this crate and in the integration suite).
//!
//! Two checkpoint kinds mirror the paper:
//!
//! * [`WholePinball`] — the complete execution ("Whole Run"),
//! * [`RegionalPinball`] — one simulation point: a slice-aligned region
//!   with its SimPoint weight, and optionally a *warmup* predecessor cursor
//!   so caches can be primed before measurement ("Warmup Regional Run").
//!
//! The [`store`] module persists pinballs in a versioned binary format.
//!
//! # Example
//!
//! ```
//! use sampsim_pinball::{Logger, RegionalPinball};
//! use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
//!
//! let program = WorkloadSpec::builder("demo", 9)
//!     .total_insts(20_000)
//!     .phase(PhaseSpec::balanced(1.0))
//!     .build()
//!     .build();
//!
//! // Capture a checkpoint of slice 3 (slices of 1000 instructions).
//! let starts = Logger::new(&program).slice_starts(1_000);
//! let pb = RegionalPinball::new(&program, 3, starts[3].clone(), 1_000, 0.25, 0);
//!
//! // Replaying it resumes execution exactly at instruction 3000.
//! let mut exec = pb.attach(&program).unwrap();
//! assert_eq!(exec.retired(), 3_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pinball;
pub mod store;

pub use pinball::{Logger, PinballError, RegionalPinball, WarmupRecord, WholePinball};
